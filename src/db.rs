//! The top-level handle: one builder configures any structure in the
//! workspace over any storage backend, optionally range-partitioned
//! across shards.
//!
//! The per-crate constructors (`GCola::new`, `BTree::new(FilePages::…)`,
//! …) remain available for code that needs a concrete type, but examples,
//! tests, and benchmarks go through [`DbBuilder`] so switching structure
//! or backend is a one-line change:
//!
//! ```
//! use cosbt::{Backend, DbBuilder, Structure};
//!
//! let mut db = DbBuilder::new()
//!     .structure(Structure::GCola { g: 4 })
//!     .backend(Backend::Mem)
//!     .build()
//!     .unwrap();
//! db.insert(1, 10);
//! assert_eq!(db.get(1), Some(10));
//! ```
//!
//! Adding `.shards(n)` splits the keyspace across `n` independent
//! instances of the configured structure behind the same interface, and
//! `.parallel_ingest(true)` applies batches on worker threads (see
//! [`crate::shard`]).

use std::io;
use std::path::{Path, PathBuf};

use cosbt_brt::Brt;
use cosbt_btree::BTree;
use cosbt_core::entry::Cell;
use cosbt_core::persist::{
    peek_tag, tag_name, TAG_BASIC_COLA, TAG_BRT, TAG_BTREE, TAG_DEAMORT, TAG_DEAMORT_BASIC,
    TAG_GCOLA,
};
use cosbt_core::{
    BasicCola, Cursor, DeamortBasicCola, DeamortCola, Dictionary, EpochStats, GCola, MetaError,
    UpdateBatch, WorkerPool,
};
use cosbt_dam::format::{fnv1a, sibling_path, DEFAULT_SLOT_BYTES, KIND_PAGES};
use cosbt_dam::{
    ArcFileMem, ArcFilePages, DirectFile, FileMem, FilePages, IoStats, DEFAULT_PAGE_SIZE,
};
use cosbt_shuttle::ShuttleTree;

use crate::shard::{even_splitters, Shard, ShardRouter};
use crate::snapshot::{DbReader, DbSnapshot, MvccState};

/// Which data structure a [`DbBuilder`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Structure {
    /// Section 3's basic COLA (no lookahead pointers).
    BasicCola,
    /// Section 4's lookahead array with growth factor `g` (the paper's
    /// experimental structure; `g = 2` is the COLA of Lemma 20).
    GCola {
        /// Growth factor, at least 2.
        g: usize,
    },
    /// The baseline B+-tree (4 KiB pages).
    BTree,
    /// The buffered repository tree.
    Brt,
    /// The shuttle tree with fanout parameter `c`.
    Shuttle {
        /// Fanout parameter, at least 2.
        c: usize,
    },
}

/// Where a [`DbBuilder`] puts the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Backend {
    /// Plain heap memory (no instrumentation overhead).
    Mem,
    /// A file at the given path behind a bounded user-space page cache
    /// (see [`DbBuilder::cache_bytes`]); the out-of-core regime of the
    /// paper's experiments. The file is created (truncated) at build.
    /// With [`DbBuilder::shards`] > 1, shard `i` stores its partition in
    /// `<path>.shard<i>` and the cache budget is divided evenly.
    ///
    /// Construct with [`Backend::file`] / [`Backend::file_direct`].
    File {
        /// Path of the backing file (the shard base path when sharded).
        path: PathBuf,
        /// Route aligned page traffic through `O_DIRECT`, bypassing the
        /// kernel page cache so counted transfers are real device
        /// transfers. Falls back to buffered I/O (with a one-time
        /// warning) on filesystems or platforms that refuse it; see
        /// [`cosbt_dam::DirectFile`].
        direct: bool,
    },
}

impl Backend {
    /// A buffered file backend at `path` — the default file mode, and
    /// exactly the pre-`direct` behavior.
    pub fn file(path: impl Into<PathBuf>) -> Backend {
        Backend::File {
            path: path.into(),
            direct: false,
        }
    }

    /// A file backend at `path` that requests `O_DIRECT` for aligned
    /// page I/O (buffered fallback where unsupported).
    pub fn file_direct(path: impl Into<PathBuf>) -> Backend {
        Backend::File {
            path: path.into(),
            direct: true,
        }
    }

    /// The backing path and direct-I/O flag of a file backend.
    fn file_params(&self) -> Option<(&Path, bool)> {
        match self {
            Backend::Mem => None,
            Backend::File { path, direct } => Some((path, *direct)),
        }
    }
}

/// A serializable summary of a database configuration: everything a
/// [`DbBuilder`] knows, as plain data. [`Db::config`] reports the
/// configuration a live database was built or opened with, and
/// [`DbBuilder::from_config`] reconstructs an equivalent builder — the
/// round trip `DbBuilder::from_config(&b.config())` preserves every
/// knob. The benchmark harness uses [`DbConfig::identity`] as the
/// stable cell identity in its JSON artifacts (instead of ad-hoc label
/// strings), so two runs compare as the same cell exactly when their
/// configurations agree.
#[derive(Debug, Clone, PartialEq)]
pub struct DbConfig {
    /// The data structure.
    pub structure: Structure,
    /// Worst-case-bounded (deamortized) variant requested.
    pub deamortized: bool,
    /// Lookahead-pointer density (g-COLA only; retained for others).
    pub pointer_density: f64,
    /// Fractional-cascading read accelerators enabled.
    pub cascade: bool,
    /// vEB-packed static search layouts with branchless probes enabled.
    pub veb_layout: bool,
    /// Shard count (1 = unsharded).
    pub shards: usize,
    /// Explicit shard boundaries, if any were configured or recovered.
    pub splitters: Option<Vec<u64>>,
    /// Batches applied on worker threads.
    pub parallel_ingest: bool,
    /// Background snapshot-compaction workers (0 = inline).
    pub background_merge: usize,
    /// Page-cache budget in bytes (file backends).
    pub cache_bytes: usize,
    /// Metadata commit-slot capacity in bytes (file backends).
    pub meta_slot_bytes: usize,
    /// Storage backend, including the direct-I/O flag.
    pub backend: Backend,
}

impl DbConfig {
    /// Display label of the structure configuration ("4-COLA ×4
    /// shards", …), matching [`Db::label`].
    pub fn label(&self) -> String {
        DbBuilder::from_config(self).label()
    }

    /// Short backend tag: `mem`, `file`, or `file-direct`.
    pub fn backend_kind(&self) -> &'static str {
        match &self.backend {
            Backend::Mem => "mem",
            Backend::File { direct: false, .. } => "file",
            Backend::File { direct: true, .. } => "file-direct",
        }
    }

    /// Whether the backend requests direct I/O.
    pub fn direct(&self) -> bool {
        matches!(self.backend, Backend::File { direct: true, .. })
    }

    /// A canonical, path-independent identity string for this
    /// configuration. Two cells with equal identities are performance-
    /// comparable: the string covers structure, modifiers, backend kind
    /// (including direct I/O), sharding, and the cache budget — but not
    /// the data file's location, which is scratch-dependent.
    pub fn identity(&self) -> String {
        format!(
            "{}|{}|shards={}|cache={}|parallel={}|cascade={}|density={}|veb={}",
            self.label(),
            self.backend_kind(),
            self.shards,
            match self.backend {
                Backend::Mem => 0,
                Backend::File { .. } => self.cache_bytes,
            },
            self.parallel_ingest,
            self.cascade,
            self.pointer_density,
            self.veb_layout,
        )
    }
}

/// The supported structure × modifier × backend matrix, enumerated in
/// every [`BuildError::Unsupported`] message so a failed build names the
/// valid alternatives, not just the invalid request.
pub const VALID_COMBINATIONS: &str = "\
  BasicCola          × Mem | File  (deamortized: yes)
  GCola { g ≥ 2 }    × Mem | File  (deamortized: only g = 2; pointer_density in [0, 1))
  BTree              × Mem | File  (no deamortized variant)
  Brt                × Mem | File  (no deamortized variant)
  Shuttle { c ≥ 2 }  × Mem only    (no deamortized variant)
  modifiers: shards(n ≥ 1) with strictly increasing shard_splitters (n − 1 of them), \
parallel_ingest";

/// Why a [`DbBuilder::build`] call failed.
#[derive(Debug)]
pub enum BuildError {
    /// The requested structure/modifier/backend combination does not
    /// exist (e.g. a deamortized B-tree, or a file-backed shuttle tree).
    /// The message enumerates the valid combinations.
    Unsupported(String),
    /// Creating the backing file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Unsupported(what) => write!(
                f,
                "unsupported configuration: {what}; valid combinations are:\n{VALID_COMBINATIONS}"
            ),
            BuildError::Io(e) => write!(f, "backend I/O error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<std::io::Error> for BuildError {
    fn from(e: std::io::Error) -> Self {
        BuildError::Io(e)
    }
}

/// Why a [`DbBuilder::open`] call failed. Every variant is diagnosable
/// without reading the file yourself, and **no open path ever modifies
/// or unlinks an existing file** — a failed open leaves the store
/// byte-identical.
#[derive(Debug)]
pub enum OpenError {
    /// A required file (data file, shard file, or shard manifest) does
    /// not exist. [`DbBuilder::open_or_create`] falls back to creation on
    /// this variant and only this variant.
    Missing(PathBuf),
    /// The storage layer rejected the file: wrong magic, unsupported
    /// on-disk format version, payload-kind mismatch, checksum failure,
    /// or a store that was created but never synced.
    Store {
        /// The offending file.
        path: PathBuf,
        /// The storage-layer diagnosis.
        source: cosbt_dam::OpenError,
    },
    /// The file was written with a different page size than this build
    /// uses.
    PageSizeMismatch {
        /// The offending file.
        path: PathBuf,
        /// Page size recorded in the file's superblock.
        found: usize,
        /// Page size the builder expected.
        expected: usize,
    },
    /// The file holds a different structure (or structure parameters)
    /// than the builder was configured for.
    StructureMismatch {
        /// The offending file.
        path: PathBuf,
        /// Human label of what the file holds.
        found: String,
        /// Human label of what the builder asked for.
        expected: String,
    },
    /// The shard manifest records a different shard count than the
    /// builder was configured for.
    ShardCountMismatch {
        /// Shard count recorded in the manifest.
        found: usize,
        /// Shard count the builder asked for.
        expected: usize,
    },
    /// The builder supplied explicit splitters that disagree with the
    /// manifest (omit [`DbBuilder::shard_splitters`] to adopt the
    /// persisted routing).
    SplitterMismatch {
        /// Splitters recorded in the manifest.
        found: Vec<u64>,
        /// Splitters the builder supplied.
        expected: Vec<u64>,
    },
    /// The shard manifest exists but fails validation.
    ManifestCorrupt {
        /// The manifest file.
        path: PathBuf,
        /// What failed.
        why: String,
    },
    /// The store opened cleanly but the structure's control state did not
    /// decode.
    Meta {
        /// The offending file.
        path: PathBuf,
        /// The structure-layer diagnosis.
        source: MetaError,
    },
    /// The builder configuration itself is invalid (or names the memory
    /// backend, which has nothing to open).
    Unsupported(BuildError),
    /// An I/O error outside superblock validation.
    Io(io::Error),
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Missing(p) => write!(f, "no store at {}", p.display()),
            OpenError::Store { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            OpenError::PageSizeMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: page size mismatch (file {found}, expected {expected})",
                path.display()
            ),
            OpenError::StructureMismatch {
                path,
                found,
                expected,
            } => write!(
                f,
                "{}: structure mismatch (file holds {found}, builder asked for {expected})",
                path.display()
            ),
            OpenError::ShardCountMismatch { found, expected } => write!(
                f,
                "shard count mismatch (manifest records {found}, builder asked for {expected})"
            ),
            OpenError::SplitterMismatch { found, expected } => write!(
                f,
                "splitter mismatch (manifest {found:?}, builder {expected:?})"
            ),
            OpenError::ManifestCorrupt { path, why } => {
                write!(f, "{}: corrupt shard manifest: {why}", path.display())
            }
            OpenError::Meta { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            OpenError::Unsupported(e) => write!(f, "{e}"),
            OpenError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for OpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpenError::Store { source, .. } => Some(source),
            OpenError::Meta { source, .. } => Some(source),
            OpenError::Unsupported(e) => Some(e),
            OpenError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for OpenError {
    fn from(e: BuildError) -> Self {
        match e {
            BuildError::Io(io) => OpenError::Io(io),
            other => OpenError::Unsupported(other),
        }
    }
}

/// Maps a storage-layer open failure on `path` to the facade error,
/// folding "file not found" into [`OpenError::Missing`].
fn store_error(path: &Path, e: cosbt_dam::OpenError) -> OpenError {
    if e.is_missing() {
        OpenError::Missing(path.to_path_buf())
    } else {
        OpenError::Store {
            path: path.to_path_buf(),
            source: e,
        }
    }
}

/// Magic of the shard manifest file (`<base>.manifest`).
const MANIFEST_MAGIC: [u8; 8] = *b"COSBTMAN";
/// Manifest format version.
const MANIFEST_VERSION: u32 = 1;

/// The routing configuration a sharded file-backed database persists at
/// creation, so a reopened database routes identically. Written once,
/// atomically (temp file + rename); never rewritten, so it needs no
/// shadow commit.
#[derive(Debug, Clone, PartialEq)]
struct Manifest {
    shards: u32,
    structure_tag: u8,
    /// Structure parameter (growth factor / fanout; 0 if none).
    param: u64,
    splitters: Vec<u64>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.shards.to_le_bytes());
        out.push(self.structure_tag);
        out.extend_from_slice(&self.param.to_le_bytes());
        out.extend_from_slice(&(self.splitters.len() as u32).to_le_bytes());
        for &s in &self.splitters {
            out.extend_from_slice(&s.to_le_bytes());
        }
        let ck = fnv1a(&out);
        out.extend_from_slice(&ck.to_le_bytes());
        out
    }

    fn decode(buf: &[u8]) -> Result<Manifest, String> {
        if buf.len() < 8 || buf[0..8] != MANIFEST_MAGIC {
            return Err("bad manifest magic".into());
        }
        if buf.len() < 33 {
            return Err("truncated manifest".into());
        }
        let ck = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
        if ck != fnv1a(&buf[..buf.len() - 8]) {
            return Err("manifest checksum mismatch".into());
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != MANIFEST_VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        let shards = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        let structure_tag = buf[16];
        let param = u64::from_le_bytes(buf[17..25].try_into().unwrap());
        let count = u32::from_le_bytes(buf[25..29].try_into().unwrap()) as usize;
        if buf.len() != 29 + 8 * count + 8 {
            return Err("manifest length disagrees with splitter count".into());
        }
        let splitters = (0..count)
            .map(|i| u64::from_le_bytes(buf[29 + 8 * i..37 + 8 * i].try_into().unwrap()))
            .collect();
        Ok(Manifest {
            shards,
            structure_tag,
            param,
            splitters,
        })
    }

    fn write_atomic(&self, path: &Path) -> io::Result<()> {
        write_file_atomic(path, &self.encode())
    }
}

/// Writes `bytes` to `path` atomically: temp file, contents fsynced,
/// rename. (The parent-directory fsync is omitted; on the platforms we
/// target a rename reaching the directory after a crash without its
/// contents is not a failure mode the tests model.)
fn write_file_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let tmp = sibling_path(path, ".tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)
}

/// Magic of the cross-shard commit record (`<base>.commit`).
const COMMIT_MAGIC: [u8; 8] = *b"COSBTCPT";

/// The atomic commit point of a **sharded** file-backed database.
///
/// Each shard's store commit is individually crash-atomic, but a crash
/// between two shards' commits would otherwise recover a whole-database
/// state that never existed (half a batch applied). `Db::sync` therefore
/// commits every shard first and only then renames this record — one
/// epoch per shard — into place; `DbBuilder::open` rolls every shard
/// back to its recorded epoch (the double-buffered metadata region still
/// holds it). The rename is the cross-shard commit point.
fn encode_commit_record(epochs: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + 8 * epochs.len());
    out.extend_from_slice(&COMMIT_MAGIC);
    out.extend_from_slice(&(epochs.len() as u32).to_le_bytes());
    for &e in epochs {
        out.extend_from_slice(&e.to_le_bytes());
    }
    let ck = fnv1a(&out);
    out.extend_from_slice(&ck.to_le_bytes());
    out
}

fn decode_commit_record(buf: &[u8]) -> Result<Vec<u64>, String> {
    if buf.len() < 8 || buf[0..8] != COMMIT_MAGIC {
        return Err("bad commit-record magic".into());
    }
    if buf.len() < 20 {
        return Err("truncated commit record".into());
    }
    let ck = u64::from_le_bytes(buf[buf.len() - 8..].try_into().unwrap());
    if ck != fnv1a(&buf[..buf.len() - 8]) {
        return Err("commit-record checksum mismatch".into());
    }
    let count = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    if buf.len() != 12 + 8 * count + 8 {
        return Err("commit-record length disagrees with shard count".into());
    }
    Ok((0..count)
        .map(|i| u64::from_le_bytes(buf[12 + 8 * i..20 + 8 * i].try_into().unwrap()))
        .collect())
}

/// Builder for a [`Db`]; see the module docs for a walkthrough.
#[derive(Debug, Clone)]
pub struct DbBuilder {
    structure: Structure,
    backend: Backend,
    cache_bytes: usize,
    meta_slot_bytes: usize,
    deamortized: bool,
    pointer_density: f64,
    shards: usize,
    splitters: Option<Vec<u64>>,
    parallel_ingest: bool,
    background_merge: usize,
    cascade: bool,
    veb_layout: bool,
}

impl Default for DbBuilder {
    fn default() -> Self {
        DbBuilder {
            structure: Structure::GCola { g: 4 },
            backend: Backend::Mem,
            cache_bytes: 16 * 1024 * 1024,
            meta_slot_bytes: DEFAULT_SLOT_BYTES,
            deamortized: false,
            pointer_density: 0.1,
            shards: 1,
            splitters: None,
            parallel_ingest: false,
            background_merge: 0,
            cascade: true,
            veb_layout: false,
        }
    }
}

impl DbBuilder {
    /// A builder with the paper's defaults: an in-memory 4-COLA with
    /// pointer density 0.1, a single shard, and (for file backends) a
    /// 16 MiB cache budget.
    pub fn new() -> DbBuilder {
        DbBuilder::default()
    }

    /// Selects the data structure.
    pub fn structure(mut self, s: Structure) -> DbBuilder {
        self.structure = s;
        self
    }

    /// Selects the storage backend.
    pub fn backend(mut self, b: Backend) -> DbBuilder {
        self.backend = b;
        self
    }

    /// Memory budget of the user-space page cache for file backends
    /// (ignored by [`Backend::Mem`]). With multiple shards the budget is
    /// divided evenly across the per-shard caches; every cache is floored
    /// at 2 pages, and a sharded build fails if the budget cannot cover
    /// that floor (silently exceeding the budget would corrupt the
    /// transfer counts the out-of-core experiments measure).
    pub fn cache_bytes(mut self, bytes: usize) -> DbBuilder {
        self.cache_bytes = bytes;
        self
    }

    /// Capacity of each shard file's metadata commit slot (default
    /// 256 KiB; file backends only, fixed at creation). The slot holds
    /// the committed page table (4 bytes per page) plus the structure's
    /// control state, so it caps a shard at roughly
    /// `bytes / 4 × page_size` of data — 256 KiB ⇒ ~256 MiB per shard at
    /// 4 KiB pages. Past the cap, `sync` fails with `InvalidInput` on
    /// every call (loudly — the store itself keeps working, but commits
    /// no longer fit). Size this for the data a store must grow to; it
    /// is ignored by [`DbBuilder::open`], which reads the capacity from
    /// the superblock.
    pub fn meta_slot_bytes(mut self, bytes: usize) -> DbBuilder {
        self.meta_slot_bytes = bytes;
        self
    }

    /// Requests the worst-case-bounded variant: [`Structure::BasicCola`]
    /// becomes the two-array deamortization of Theorem 22 and
    /// [`Structure::GCola`] the three-array shadow/visible deamortization
    /// of Theorem 24 (which fixes growth factor 2). Tree structures have
    /// no deamortized variant and fail at build.
    pub fn deamortized(mut self) -> DbBuilder {
        self.deamortized = true;
        self
    }

    /// Lookahead-pointer density for [`Structure::GCola`] (default 0.1,
    /// as in the paper's experiments; 0 disables the pointers).
    pub fn pointer_density(mut self, p: f64) -> DbBuilder {
        self.pointer_density = p;
        self
    }

    /// Range-partitions the keyspace across `n` independent instances of
    /// the configured structure (default 1 = unsharded). The keyspace is
    /// split evenly unless [`DbBuilder::shard_splitters`] overrides the
    /// boundaries; reads, writes, and cursors behave exactly as with one
    /// shard.
    ///
    /// ```
    /// use cosbt::{DbBuilder, Structure};
    ///
    /// let mut db = DbBuilder::new()
    ///     .structure(Structure::GCola { g: 4 })
    ///     .shards(4)
    ///     .parallel_ingest(true)
    ///     .build()
    ///     .unwrap();
    /// // Keys land in different quadrants of the u64 space → different
    /// // shards, but the view is one dictionary.
    /// db.insert_batch(&[(1, 10), (1 << 62, 20), (u64::MAX, 30)]);
    /// assert_eq!(db.range(0, u64::MAX).len(), 3);
    /// ```
    pub fn shards(mut self, n: usize) -> DbBuilder {
        self.shards = n;
        self
    }

    /// Custom shard boundaries: strictly increasing, exactly
    /// `shards − 1` of them; shard `i` owns keys in
    /// `[splitters[i-1], splitters[i])`. Use when the key distribution is
    /// skewed and even splitting would leave shards idle.
    pub fn shard_splitters(mut self, splitters: Vec<u64>) -> DbBuilder {
        self.splitters = Some(splitters);
        self
    }

    /// Applies `apply`/`insert_batch` sub-batches on a scoped pool of
    /// worker threads, one shard per job (default off). A no-op with a
    /// single shard; point operations are always routed directly.
    pub fn parallel_ingest(mut self, on: bool) -> DbBuilder {
        self.parallel_ingest = on;
        self
    }

    /// Enables or disables the fractional-cascading read accelerators
    /// of the COLA family — per-level fence keys, Bloom-style filters,
    /// and ghost-pointer search windows (default on). A runtime knob: it
    /// changes the search path, never on-disk state, and tree structures
    /// ignore it. Kept primarily so differential tests can compare the
    /// cascaded search against the plain per-level binary search.
    pub fn cascade(mut self, on: bool) -> DbBuilder {
        self.cascade = on;
        self
    }

    /// Enables or disables vEB-packed static search layouts with
    /// branchless probes (default off). For COLA structures the sealed
    /// runs' ghost-sample arrays get a van Emde Boas-ordered DRAM mirror;
    /// for the B-tree the branch separators are flattened into a vEB
    /// leaf directory that routes point lookups in one leaf fetch. Like
    /// [`DbBuilder::cascade`], a runtime knob: it changes the search
    /// path, never on-disk state, so it can flip freely across reopens.
    pub fn veb_layout(mut self, on: bool) -> DbBuilder {
        self.veb_layout = on;
        self
    }

    /// Runs snapshot-overlay compactions (the deamortized merge work
    /// behind [`Db::snapshot`]) on `n_workers` background threads
    /// instead of inline on the writer's thread (default 0 = inline).
    /// The pool is drained by [`Db::sync`] and joined — with a bounded
    /// timeout — when the database drops. A runtime knob: it changes
    /// scheduling, never on-disk state.
    pub fn background_merge(mut self, n_workers: usize) -> DbBuilder {
        self.background_merge = n_workers;
        self
    }

    /// Validates the configuration (structure parameters, modifiers,
    /// shard layout) without touching any backend. Shared by
    /// [`DbBuilder::build`] and [`DbBuilder::open`].
    fn validate(&self) -> Result<(), BuildError> {
        let label = self.label();
        let unsupported = |what: &str| BuildError::Unsupported(format!("{what} ({label})"));

        if self.deamortized
            && !matches!(
                self.structure,
                Structure::BasicCola | Structure::GCola { .. }
            )
        {
            return Err(unsupported(
                "deamortization exists only for the COLA family",
            ));
        }
        if let Structure::GCola { g } = self.structure {
            if g < 2 {
                return Err(unsupported("growth factor must be at least 2"));
            }
            if self.deamortized && g != 2 {
                return Err(unsupported("the deamortized COLA fixes growth factor 2"));
            }
            if !(0.0..1.0).contains(&self.pointer_density) {
                return Err(unsupported("pointer density must be in [0, 1)"));
            }
        }
        if let Structure::Shuttle { c } = self.structure {
            if c < 2 {
                return Err(unsupported("fanout parameter must be at least 2"));
            }
        }
        if self.shards == 0 {
            return Err(unsupported("shard count must be at least 1"));
        }
        if self.meta_slot_bytes < 4096 {
            return Err(unsupported("metadata slot capacity must be at least 4 KiB"));
        }
        if let Some(splitters) = &self.splitters {
            if splitters.len() != self.shards - 1 {
                return Err(unsupported(
                    "shard_splitters must supply exactly shards − 1 boundaries",
                ));
            }
            if !splitters.windows(2).all(|w| w[0] < w[1]) {
                return Err(unsupported("shard_splitters must be strictly increasing"));
            }
        }
        if self.shards > 1
            && matches!(self.backend, Backend::File { .. })
            && self.cache_bytes / self.shards < 2 * DEFAULT_PAGE_SIZE
        {
            // Each shard's cache is floored at 2 pages; flooring past the
            // configured budget would silently enlarge the effective
            // cache and distort measured transfer counts.
            return Err(unsupported(
                "cache budget too small: each shard's page cache needs at least 2 pages",
            ));
        }
        Ok(())
    }

    /// Instantiates the configured dictionary, creating (truncating) the
    /// backing files for file backends. A freshly built file-backed
    /// database is committed immediately, so it can be reopened with
    /// [`DbBuilder::open`] even before the first explicit
    /// [`Db::sync`].
    pub fn build(self) -> Result<Db, BuildError> {
        self.validate()?;
        let label = self.label();
        let unsupported = |what: &str| BuildError::Unsupported(format!("{what} ({label})"));
        let mut dicts: Vec<Shard> = Vec::with_capacity(self.shards);
        let mut ios: Vec<StoreHandle> = Vec::new();
        for i in 0..self.shards {
            match self.build_shard(i, &unsupported) {
                Ok((dict, io)) => {
                    dicts.push(dict);
                    ios.extend(io);
                }
                Err(e) => {
                    // A partial multi-shard file build must not leave the
                    // freshly created (truncated) shard files behind:
                    // release the stores built so far, then unlink the
                    // files this call created — earlier shards always,
                    // shard `i` only if its file creation was attempted
                    // (an I/O error). An Unsupported error fails before
                    // touching the filesystem, and unlinking then would
                    // delete a pre-existing user file at the path.
                    if let Backend::File { path: base, .. } = &self.backend {
                        drop(dicts);
                        drop(ios);
                        let created = if matches!(e, BuildError::Io(_)) {
                            i + 1
                        } else {
                            i
                        };
                        for j in 0..created {
                            // Best-effort cleanup of partially-created shards.
                            let _ = std::fs::remove_file(self.shard_file_path(base, j));
                        }
                    }
                    return Err(e);
                }
            }
        }
        let dict: DbDict = if self.shards == 1 {
            DbDict::Single(dicts.pop().expect("one shard was built"))
        } else {
            let splitters = self
                .splitters
                .clone()
                .unwrap_or_else(|| even_splitters(self.shards));
            DbDict::Sharded(ShardRouter::new(dicts, splitters, self.parallel_ingest))
        };
        let commit_path = match (&self.backend, self.shards) {
            (Backend::File { path: base, .. }, n) if n > 1 => Some(self.commit_record_path(base)),
            _ => None,
        };
        let mut db = Db {
            dict,
            ios,
            label,
            dirty: false,
            commit_path,
            mvcc: self.mvcc_state(),
            config: self.config(),
        };
        db.install_reclaim_gates();
        if let Backend::File { path: base, .. } = &self.backend {
            // Make the fresh (empty) database immediately reopenable:
            // write the shard manifest (sharded configs) and commit the
            // initial metadata epoch. A failure here unwinds like a
            // failed shard build — no partial files left behind.
            let init = (|| -> io::Result<()> {
                if self.shards > 1 {
                    self.manifest().write_atomic(&self.manifest_path(base))?;
                }
                db.sync()
            })();
            if let Err(e) = init {
                drop(db);
                for p in self.data_paths() {
                    // Best-effort cleanup of a failed build.
                    let _ = std::fs::remove_file(p);
                }
                return Err(BuildError::Io(e));
            }
        }
        Ok(db)
    }

    /// Opens an existing file-backed database previously created (and
    /// synced) with this configuration. The builder must be configured
    /// with the same structure and shard layout the file holds — every
    /// mismatch is a distinct typed [`OpenError`] — and the open path
    /// **never modifies or unlinks** the files it inspects. The
    /// lookahead-pointer density of a g-COLA is restored from the file;
    /// cache budget and parallel-ingest are runtime knobs and may differ
    /// per open.
    ///
    /// ```no_run
    /// use cosbt::{Backend, DbBuilder, Structure};
    ///
    /// let builder = DbBuilder::new()
    ///     .structure(Structure::GCola { g: 4 })
    ///     .backend(Backend::file("index.db"));
    /// let mut db = builder.clone().build().unwrap();
    /// db.insert(7, 70);
    /// db.sync().unwrap();
    /// drop(db);
    /// let mut db = builder.open().unwrap();
    /// assert_eq!(db.get(7), Some(70));
    /// ```
    pub fn open(self) -> Result<Db, OpenError> {
        self.validate().map_err(OpenError::from)?;
        let label = self.label();
        let Backend::File { path: base, .. } = &self.backend else {
            return Err(OpenError::Unsupported(BuildError::Unsupported(format!(
                "nothing to open for the memory backend ({label})"
            ))));
        };
        // Sharded: recover the persisted routing first and require the
        // builder to agree with it.
        let splitters = if self.shards > 1 {
            let mpath = self.manifest_path(base);
            let bytes = std::fs::read(&mpath).map_err(|e| {
                if e.kind() == io::ErrorKind::NotFound {
                    OpenError::Missing(mpath.clone())
                } else {
                    OpenError::Io(e)
                }
            })?;
            let manifest = Manifest::decode(&bytes).map_err(|why| OpenError::ManifestCorrupt {
                path: mpath.clone(),
                why,
            })?;
            if manifest.shards as usize != self.shards {
                return Err(OpenError::ShardCountMismatch {
                    found: manifest.shards as usize,
                    expected: self.shards,
                });
            }
            let expected = self.manifest();
            if manifest.structure_tag != expected.structure_tag || manifest.param != expected.param
            {
                return Err(OpenError::StructureMismatch {
                    path: mpath,
                    found: tag_name(manifest.structure_tag).to_string(),
                    expected: tag_name(expected.structure_tag).to_string(),
                });
            }
            if let Some(requested) = &self.splitters {
                if *requested != manifest.splitters {
                    return Err(OpenError::SplitterMismatch {
                        found: manifest.splitters.clone(),
                        expected: requested.clone(),
                    });
                }
            }
            Some(manifest.splitters)
        } else {
            None
        };
        // Sharded: the cross-shard commit record pins the epoch every
        // shard must be rolled back to, so a crash between two shards'
        // commits cannot surface a mixed whole-database state.
        let epochs: Option<Vec<u64>> = if self.shards > 1 {
            let cpath = self.commit_record_path(base);
            let bytes = std::fs::read(&cpath).map_err(|e| {
                if e.kind() == io::ErrorKind::NotFound {
                    OpenError::Store {
                        path: cpath.clone(),
                        source: cosbt_dam::OpenError::NeverCommitted,
                    }
                } else {
                    OpenError::Io(e)
                }
            })?;
            let epochs =
                decode_commit_record(&bytes).map_err(|why| OpenError::ManifestCorrupt {
                    path: cpath.clone(),
                    why,
                })?;
            if epochs.len() != self.shards {
                return Err(OpenError::ManifestCorrupt {
                    path: cpath,
                    why: format!(
                        "commit record holds {} epochs for {} shards",
                        epochs.len(),
                        self.shards
                    ),
                });
            }
            Some(epochs)
        } else {
            None
        };
        let mut dicts: Vec<Shard> = Vec::with_capacity(self.shards);
        let mut ios: Vec<StoreHandle> = Vec::with_capacity(self.shards);
        for i in 0..self.shards {
            let max_epoch = epochs.as_ref().map(|e| e[i]);
            let (dict, io) = self.open_shard(i, base, max_epoch)?;
            dicts.push(dict);
            ios.push(io);
        }
        let manifest_splitters = splitters.clone();
        let dict = if self.shards == 1 {
            DbDict::Single(dicts.pop().expect("one shard was opened"))
        } else {
            DbDict::Sharded(ShardRouter::new(
                dicts,
                splitters.expect("sharded opens recovered splitters"),
                self.parallel_ingest,
            ))
        };
        let mut db = Db {
            dict,
            ios,
            label,
            dirty: false,
            commit_path: if self.shards > 1 {
                Some(self.commit_record_path(base))
            } else {
                None
            },
            mvcc: self.mvcc_state(),
            config: {
                // The persisted routing is authoritative: record it so
                // `Db::config()` round-trips even when the builder
                // omitted explicit splitters.
                let mut cfg = self.config();
                cfg.splitters = manifest_splitters.or(cfg.splitters);
                cfg
            },
        };
        db.install_reclaim_gates();
        Ok(db)
    }

    /// [`DbBuilder::open`] if the store exists, [`DbBuilder::build`]
    /// otherwise. Only a genuinely missing store — **no** backing file
    /// of this configuration present at all — falls back to creation; a
    /// present-but-invalid store, and equally a *partially* missing one
    /// (a lost manifest next to intact shard files), surfaces its open
    /// error untouched. `build` truncates every backing file, so
    /// re-creating over remnants would destroy data an operator may
    /// want to inspect or repair.
    pub fn open_or_create(self) -> Result<Db, OpenError> {
        match self.clone().open() {
            Err(err @ OpenError::Missing(_)) => {
                if self.data_paths().iter().any(|p| p.exists()) {
                    return Err(err);
                }
                self.build().map_err(OpenError::from)
            }
            other => other,
        }
    }

    /// Fresh MVCC state for a database this builder constructs: the
    /// epoch manager plus, when requested, the background merge pool.
    fn mvcc_state(&self) -> MvccState {
        let pool = if self.background_merge > 0 {
            Some(WorkerPool::new(self.background_merge))
        } else {
            None
        };
        MvccState::new(pool)
    }

    /// The structure-metadata tag this configuration produces (what
    /// [`cosbt_core::Persist::save_meta`] will emit) plus its parameter.
    fn structure_identity(&self) -> (u8, u64) {
        match (self.structure, self.deamortized) {
            (Structure::BasicCola, false) => (TAG_BASIC_COLA, 0),
            (Structure::BasicCola, true) => (TAG_DEAMORT_BASIC, 0),
            (Structure::GCola { g }, false) => (TAG_GCOLA, g as u64),
            (Structure::GCola { .. }, true) => (TAG_DEAMORT, 2),
            (Structure::BTree, _) => (TAG_BTREE, 0),
            (Structure::Brt, _) => (TAG_BRT, 0),
            (Structure::Shuttle { c }, _) => (cosbt_core::persist::TAG_SHUTTLE, c as u64),
        }
    }

    fn manifest(&self) -> Manifest {
        let (structure_tag, param) = self.structure_identity();
        Manifest {
            shards: self.shards as u32,
            structure_tag,
            param,
            splitters: self
                .splitters
                .clone()
                .unwrap_or_else(|| even_splitters(self.shards)),
        }
    }

    /// Path of the shard manifest: `<base>.manifest`.
    fn manifest_path(&self, base: &Path) -> PathBuf {
        sibling_path(base, ".manifest")
    }

    /// Path of the cross-shard commit record: `<base>.commit`.
    fn commit_record_path(&self, base: &Path) -> PathBuf {
        sibling_path(base, ".commit")
    }

    /// Opens shard `idx`'s store file and reconstructs its structure from
    /// the committed metadata.
    fn open_shard(
        &self,
        idx: usize,
        base: &Path,
        max_epoch: Option<u64>,
    ) -> Result<(Shard, StoreHandle), OpenError> {
        let path = self.shard_file_path(base, idx);
        let direct = self.backend.file_params().map(|(_, d)| d).unwrap_or(false);
        let cache_pages = (self.cache_bytes / self.shards / DEFAULT_PAGE_SIZE).max(2);
        let (expected_tag, _) = self.structure_identity();
        let meta_err = |source: MetaError| OpenError::Meta {
            path: path.clone(),
            source,
        };
        let check = |found_meta: &[u8]| -> Result<(), OpenError> {
            match peek_tag(found_meta) {
                Some(tag) if tag == expected_tag => Ok(()),
                Some(tag) => Err(OpenError::StructureMismatch {
                    path: path.clone(),
                    found: tag_name(tag).to_string(),
                    expected: self.label(),
                }),
                None => Err(meta_err(MetaError::Truncated)),
            }
        };
        match self.structure {
            Structure::Shuttle { .. } => Err(OpenError::Unsupported(BuildError::Unsupported(
                format!("the shuttle tree is in-memory only ({})", self.label()),
            ))),
            Structure::BTree | Structure::Brt => {
                let dev = DirectFile::open(&path, direct)
                    .map_err(|e| store_error(&path, cosbt_dam::OpenError::Io(e)))?;
                let (store, meta) =
                    FilePages::open_bounded(dev, cache_pages, (KIND_PAGES, 0), max_epoch)
                        .map_err(|e| store_error(&path, e))?;
                self.check_page_size(&path, cosbt_dam::PageStore::page_size(&store))?;
                check(&meta)?;
                let store = ArcFilePages::new(store);
                let dict: Shard = match self.structure {
                    Structure::BTree => {
                        let mut t = BTree::from_parts(store.clone(), &meta).map_err(meta_err)?;
                        t.set_veb_layout(self.veb_layout);
                        Box::new(t)
                    }
                    _ => Box::new(Brt::from_parts(store.clone(), &meta).map_err(meta_err)?),
                };
                Ok((dict, StoreHandle::Pages(store)))
            }
            Structure::BasicCola | Structure::GCola { .. } => {
                let dev = DirectFile::open(&path, direct)
                    .map_err(|e| store_error(&path, cosbt_dam::OpenError::Io(e)))?;
                let (store, meta) =
                    FileMem::<Cell, DirectFile>::open_bounded(dev, cache_pages, 32, max_epoch)
                        .map_err(|e| store_error(&path, e))?;
                self.check_page_size(&path, store.page_size())?;
                check(&meta)?;
                let mem = ArcFileMem::new(store);
                let dict: Shard = match (self.structure, self.deamortized) {
                    (Structure::BasicCola, false) => {
                        let mut c = BasicCola::from_parts(mem.clone(), &meta).map_err(meta_err)?;
                        c.set_cascade(self.cascade);
                        c.set_veb_layout(self.veb_layout);
                        Box::new(c)
                    }
                    (Structure::BasicCola, true) => {
                        let mut c =
                            DeamortBasicCola::from_parts(mem.clone(), &meta).map_err(meta_err)?;
                        c.set_cascade(self.cascade);
                        c.set_veb_layout(self.veb_layout);
                        Box::new(c)
                    }
                    (Structure::GCola { g }, false) => {
                        let mut cola = GCola::from_parts(mem.clone(), &meta).map_err(meta_err)?;
                        if cola.growth() != g {
                            return Err(OpenError::StructureMismatch {
                                path,
                                found: format!("{}-COLA", cola.growth()),
                                expected: format!("{g}-COLA"),
                            });
                        }
                        cola.set_cascade(self.cascade);
                        cola.set_veb_layout(self.veb_layout);
                        Box::new(cola)
                    }
                    (Structure::GCola { .. }, true) => {
                        let mut c =
                            DeamortCola::from_parts(mem.clone(), &meta).map_err(meta_err)?;
                        c.set_cascade(self.cascade);
                        c.set_veb_layout(self.veb_layout);
                        Box::new(c)
                    }
                    _ => unreachable!(),
                };
                Ok((dict, StoreHandle::Mem(mem)))
            }
        }
    }

    fn check_page_size(&self, path: &Path, found: usize) -> Result<(), OpenError> {
        if found != DEFAULT_PAGE_SIZE {
            return Err(OpenError::PageSizeMismatch {
                path: path.to_path_buf(),
                found,
                expected: DEFAULT_PAGE_SIZE,
            });
        }
        Ok(())
    }

    /// The backing-file paths this configuration stores data in: the
    /// configured path itself when unsharded, `<path>.shard<i>` per shard
    /// plus the `<path>.manifest` routing manifest otherwise; empty for
    /// the memory backend. This is the one source of the file naming
    /// convention — harnesses that own the files' lifecycle (e.g. the
    /// bench CLI's delete-after-run) should unlink exactly this list
    /// rather than re-deriving names.
    pub fn data_paths(&self) -> Vec<PathBuf> {
        match &self.backend {
            Backend::Mem => Vec::new(),
            Backend::File { path: base, .. } => {
                let mut paths: Vec<PathBuf> = (0..self.shards)
                    .map(|i| self.shard_file_path(base, i))
                    .collect();
                if self.shards > 1 {
                    paths.push(self.manifest_path(base));
                    paths.push(self.commit_record_path(base));
                }
                paths
            }
        }
    }

    /// Data-file path of shard `idx`: the configured path itself when
    /// unsharded, `<path>.shard<idx>` otherwise.
    fn shard_file_path(&self, base: &std::path::Path, idx: usize) -> PathBuf {
        if self.shards == 1 {
            base.to_path_buf()
        } else {
            let mut os = base.as_os_str().to_os_string();
            os.push(format!(".shard{idx}"));
            PathBuf::from(os)
        }
    }

    /// Builds shard `idx` of [`DbBuilder::shards`] (the whole dictionary
    /// when unsharded): one structure instance plus, for file backends,
    /// the I/O handle of its backing store.
    fn build_shard(
        &self,
        idx: usize,
        unsupported: &dyn Fn(&str) -> BuildError,
    ) -> Result<(Shard, Option<StoreHandle>), BuildError> {
        // Each shard gets an even share of the cache budget.
        let cache_pages = (self.cache_bytes / self.shards / DEFAULT_PAGE_SIZE).max(2);
        match (&self.backend, self.structure) {
            (Backend::Mem, Structure::BasicCola) if self.deamortized => {
                let mut c = DeamortBasicCola::new_plain();
                c.set_cascade(self.cascade);
                c.set_veb_layout(self.veb_layout);
                Ok((Box::new(c), None))
            }
            (Backend::Mem, Structure::BasicCola) => {
                let mut c = BasicCola::new_plain();
                c.set_cascade(self.cascade);
                c.set_veb_layout(self.veb_layout);
                Ok((Box::new(c), None))
            }
            (Backend::Mem, Structure::GCola { .. }) if self.deamortized => {
                let mut c = DeamortCola::new_plain();
                c.set_cascade(self.cascade);
                c.set_veb_layout(self.veb_layout);
                Ok((Box::new(c), None))
            }
            (Backend::Mem, Structure::GCola { g }) => {
                let mut c = GCola::new(cosbt_dam::PlainMem::new(), g, self.pointer_density);
                c.set_cascade(self.cascade);
                c.set_veb_layout(self.veb_layout);
                Ok((Box::new(c), None))
            }
            (Backend::Mem, Structure::BTree) => {
                let mut t = BTree::new_plain();
                t.set_veb_layout(self.veb_layout);
                Ok((Box::new(t), None))
            }
            (Backend::Mem, Structure::Brt) => Ok((Box::new(Brt::new_plain()), None)),
            (Backend::Mem, Structure::Shuttle { c }) => Ok((Box::new(ShuttleTree::new(c)), None)),
            (Backend::File { path: base, direct }, structure) => {
                let path = self.shard_file_path(base, idx);
                match structure {
                    Structure::Shuttle { .. } => Err(unsupported(
                        "the shuttle tree is in-memory only (its file layout is measured \
                         through LayoutImage, not served from disk)",
                    )),
                    Structure::BTree | Structure::Brt => {
                        let dev = DirectFile::create(&path, *direct)?;
                        let store = ArcFilePages::new(FilePages::create_on_sized(
                            dev,
                            DEFAULT_PAGE_SIZE,
                            cache_pages,
                            self.meta_slot_bytes,
                        )?);
                        let dict: Shard = match structure {
                            Structure::BTree => {
                                let mut t = BTree::new(store.clone());
                                t.set_veb_layout(self.veb_layout);
                                Box::new(t)
                            }
                            _ => Box::new(Brt::new(store.clone())),
                        };
                        Ok((dict, Some(StoreHandle::Pages(store))))
                    }
                    Structure::BasicCola | Structure::GCola { .. } => {
                        // 32-byte modeled elements, as in the paper.
                        let dev = DirectFile::create(&path, *direct)?;
                        let mem = ArcFileMem::new(FileMem::<Cell, DirectFile>::create_on_sized(
                            dev,
                            DEFAULT_PAGE_SIZE,
                            cache_pages,
                            32,
                            self.meta_slot_bytes,
                        )?);
                        let dict: Shard = match (structure, self.deamortized) {
                            (Structure::BasicCola, false) => {
                                let mut c = BasicCola::new(mem.clone());
                                c.set_cascade(self.cascade);
                                c.set_veb_layout(self.veb_layout);
                                Box::new(c)
                            }
                            (Structure::BasicCola, true) => {
                                let mut c = DeamortBasicCola::new(mem.clone());
                                c.set_cascade(self.cascade);
                                c.set_veb_layout(self.veb_layout);
                                Box::new(c)
                            }
                            (Structure::GCola { g }, false) => {
                                let mut c = GCola::new(mem.clone(), g, self.pointer_density);
                                c.set_cascade(self.cascade);
                                c.set_veb_layout(self.veb_layout);
                                Box::new(c)
                            }
                            (Structure::GCola { .. }, true) => {
                                let mut c = DeamortCola::new(mem.clone());
                                c.set_cascade(self.cascade);
                                c.set_veb_layout(self.veb_layout);
                                Box::new(c)
                            }
                            _ => unreachable!(),
                        };
                        Ok((dict, Some(StoreHandle::Mem(mem))))
                    }
                }
            }
        }
    }

    /// Enumerates every supported structure × modifier cell of the
    /// configuration matrix (see [`VALID_COMBINATIONS`]) over the memory
    /// backend, crossed with the given shard counts. This is the **one**
    /// list of valid configurations shared by the conformance battery and
    /// the benchmark harness, so a structure added to the builder is
    /// automatically tested and benchmarkable; callers that want the
    /// out-of-core regime override the backend per cell (the shuttle tree
    /// is memory-only and must be skipped or left on [`Backend::Mem`]).
    ///
    /// Every returned builder is valid: `build()` succeeds.
    ///
    /// ```
    /// use cosbt::DbBuilder;
    ///
    /// for b in DbBuilder::matrix(&[1, 4]) {
    ///     b.build().expect("every matrix cell builds");
    /// }
    /// ```
    pub fn matrix(shard_counts: &[usize]) -> Vec<DbBuilder> {
        let structures = [
            (Structure::BasicCola, false),
            (Structure::BasicCola, true),
            (Structure::GCola { g: 2 }, false),
            (Structure::GCola { g: 2 }, true),
            (Structure::GCola { g: 4 }, false),
            (Structure::GCola { g: 8 }, false),
            (Structure::BTree, false),
            (Structure::Brt, false),
            (Structure::Shuttle { c: 4 }, false),
        ];
        let mut out = Vec::new();
        for &(structure, deamortized) in &structures {
            for &shards in shard_counts {
                if shards == 0 {
                    continue;
                }
                let mut b = DbBuilder::new().structure(structure).shards(shards);
                if deamortized {
                    b = b.deamortized();
                }
                out.push(b);
            }
        }
        out
    }

    /// The builder's configuration as plain serializable data; the
    /// round-trip companion of [`DbBuilder::from_config`].
    pub fn config(&self) -> DbConfig {
        DbConfig {
            structure: self.structure,
            deamortized: self.deamortized,
            pointer_density: self.pointer_density,
            cascade: self.cascade,
            veb_layout: self.veb_layout,
            shards: self.shards,
            splitters: self.splitters.clone(),
            parallel_ingest: self.parallel_ingest,
            background_merge: self.background_merge,
            cache_bytes: self.cache_bytes,
            meta_slot_bytes: self.meta_slot_bytes,
            backend: self.backend.clone(),
        }
    }

    /// A builder reproducing `cfg` exactly:
    /// `DbBuilder::from_config(&b.config())` configures an equivalent
    /// database (same structure, backend, modifiers, and budgets).
    ///
    /// ```
    /// use cosbt::{DbBuilder, Structure};
    ///
    /// let b = DbBuilder::new().structure(Structure::GCola { g: 8 }).shards(2);
    /// let cfg = b.config();
    /// assert_eq!(DbBuilder::from_config(&cfg).config(), cfg);
    /// ```
    pub fn from_config(cfg: &DbConfig) -> DbBuilder {
        let mut b = DbBuilder::new()
            .structure(cfg.structure)
            .backend(cfg.backend.clone())
            .cache_bytes(cfg.cache_bytes)
            .meta_slot_bytes(cfg.meta_slot_bytes)
            .pointer_density(cfg.pointer_density)
            .shards(cfg.shards)
            .parallel_ingest(cfg.parallel_ingest)
            .background_merge(cfg.background_merge)
            .cascade(cfg.cascade)
            .veb_layout(cfg.veb_layout);
        if let Some(s) = &cfg.splitters {
            b = b.shard_splitters(s.clone());
        }
        if cfg.deamortized {
            b = b.deamortized();
        }
        b
    }

    /// Display label of the configured structure ("4-COLA", "B-tree",
    /// "4-COLA ×4 shards", …).
    pub fn label(&self) -> String {
        let base = match self.structure {
            Structure::BasicCola => "basic-COLA".to_string(),
            Structure::GCola { g } => format!("{g}-COLA"),
            Structure::BTree => "B-tree".to_string(),
            Structure::Brt => "BRT".to_string(),
            Structure::Shuttle { c } => format!("shuttle({c})"),
        };
        let base = if self.deamortized {
            format!("deamortized-{base}")
        } else {
            base
        };
        if self.shards > 1 {
            format!("{base} ×{} shards", self.shards)
        } else {
            base
        }
    }
}

/// Shared I/O-counter handle of one file-backed shard.
#[derive(Clone)]
enum StoreHandle {
    Mem(ArcFileMem<Cell, DirectFile>),
    Pages(ArcFilePages<DirectFile>),
}

impl StoreHandle {
    fn stats(&self) -> IoStats {
        match self {
            StoreHandle::Mem(m) => m.stats(),
            StoreHandle::Pages(p) => p.stats(),
        }
    }

    fn reset_stats(&self) {
        match self {
            StoreHandle::Mem(m) => m.reset_stats(),
            StoreHandle::Pages(p) => p.reset_stats(),
        }
    }

    fn take_stats(&self) -> IoStats {
        match self {
            StoreHandle::Mem(m) => m.take_stats(),
            StoreHandle::Pages(p) => p.take_stats(),
        }
    }

    fn drop_cache(&self) -> io::Result<()> {
        match self {
            StoreHandle::Mem(m) => m.drop_cache(),
            StoreHandle::Pages(p) => p.drop_cache(),
        }
    }

    fn commit_meta(&self, structure_meta: &[u8]) -> io::Result<()> {
        match self {
            StoreHandle::Mem(m) => m.commit_meta(structure_meta),
            StoreHandle::Pages(p) => p.commit_meta(structure_meta),
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            StoreHandle::Mem(m) => m.epoch(),
            StoreHandle::Pages(p) => p.epoch(),
        }
    }

    fn set_reclaim_gate(&self, gate: std::sync::Arc<dyn cosbt_dam::ReclaimGate>) {
        match self {
            StoreHandle::Mem(m) => m.set_reclaim_gate(gate),
            StoreHandle::Pages(p) => p.set_reclaim_gate(gate),
        }
    }
}

/// The one I/O-statistics surface of a [`Db`]: a cheap, cloneable
/// handle over every shard's counters, obtained from [`Db::io`].
///
/// Counters aggregate (sum fieldwise) across shards. The handle reads
/// lock-free atomics, so it is usable from any thread while the
/// database itself is mutably borrowed — a probe racing a concurrent
/// writer can neither drop nor double-count a transfer, and cannot be
/// starved by a writer mid-merge. For memory backends the handle is
/// empty: every counter reads zero and
/// [`is_instrumented`](IoHandle::is_instrumented) returns false.
#[derive(Clone)]
pub struct IoHandle {
    handles: Vec<StoreHandle>,
}

impl IoHandle {
    /// Current counters, summed across shards.
    pub fn snapshot(&self) -> IoStats {
        self.handles.iter().map(|h| h.stats()).sum()
    }

    /// Returns the counters accumulated so far (summed across shards)
    /// and resets them — one call closes a measurement phase and opens
    /// the next. Each shard's swap is atomic, so no access is lost at
    /// the boundary even while worker threads are mid-batch.
    pub fn take(&self) -> IoStats {
        self.handles.iter().map(|h| h.take_stats()).sum()
    }

    /// Resets the counters of every shard (lock-free).
    pub fn reset(&self) {
        for h in &self.handles {
            h.reset_stats();
        }
    }

    /// Cumulative block transfers (fetches + writebacks).
    pub fn transfers(&self) -> u64 {
        self.snapshot().transfers()
    }

    /// Whether any instrumented (file-backed) store is attached; false
    /// for memory backends, whose counters always read zero.
    pub fn is_instrumented(&self) -> bool {
        !self.handles.is_empty()
    }
}

impl std::fmt::Debug for IoHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoHandle")
            .field("shards", &self.handles.len())
            .field("stats", &self.snapshot())
            .finish()
    }
}

/// The dictionary a [`Db`] drives: one structure, or a [`ShardRouter`]
/// over several. Kept as an enum (not a boxed trait object) so the
/// facade can reach each shard individually — [`Db::sync`] must pair
/// every shard's serialized control state with *its own* store's
/// metadata commit.
enum DbDict {
    Single(Shard),
    Sharded(ShardRouter),
}

impl DbDict {
    fn as_dyn(&mut self) -> &mut dyn Dictionary {
        match self {
            DbDict::Single(s) => s.as_mut(),
            DbDict::Sharded(r) => r,
        }
    }
}

impl Dictionary for DbDict {
    fn insert(&mut self, key: u64, val: u64) {
        self.as_dyn().insert(key, val)
    }

    fn delete(&mut self, key: u64) {
        self.as_dyn().delete(key)
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        self.as_dyn().get(key)
    }

    fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
        self.as_dyn().cursor(lo, hi)
    }

    fn apply(&mut self, batch: &mut UpdateBatch) {
        self.as_dyn().apply(batch)
    }

    fn insert_batch(&mut self, sorted: &[(u64, u64)]) {
        self.as_dyn().insert_batch(sorted)
    }

    fn physical_len(&self) -> usize {
        match self {
            DbDict::Single(s) => s.physical_len(),
            DbDict::Sharded(r) => r.physical_len(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            DbDict::Single(s) => s.name(),
            DbDict::Sharded(r) => r.name(),
        }
    }
}

/// A dictionary built by [`DbBuilder`]: any of the six structures behind
/// the one [`Dictionary`] interface — optionally range-partitioned across
/// shards — with uniform access to the backing stores' I/O counters and
/// cache control when file-backed.
///
/// `Db` is [`Send`], so a whole database (sharded or not) can move to a
/// worker thread.
///
/// File-backed databases are **durable**: [`Db::sync`] commits the
/// current state crash-safely (see `cosbt_dam::file`), dropping the
/// handle syncs best-effort, and [`DbBuilder::open`] reconstructs the
/// database from the files later.
///
/// ```
/// use cosbt::{DbBuilder, Structure};
///
/// let mut db = DbBuilder::new()
///     .structure(Structure::BTree)
///     .build()
///     .unwrap();
/// db.insert(7, 70);
/// assert_eq!(db.get(7), Some(70));
/// assert_eq!(db.label(), "B-tree");
/// ```
pub struct Db {
    dict: DbDict,
    /// One handle per file-backed shard, in shard order; empty for
    /// memory backends.
    ios: Vec<StoreHandle>,
    label: String,
    /// Whether the dictionary may have changed since the last commit;
    /// gates the best-effort sync-on-drop so a read-only session never
    /// rewrites metadata.
    dirty: bool,
    /// Path of the cross-shard commit record (`Some` only for sharded
    /// file-backed databases).
    commit_path: Option<PathBuf>,
    /// Epoch/snapshot machinery (see [`crate::snapshot`]). Lazy: until
    /// the first [`Db::snapshot`] call it mirrors nothing and costs one
    /// branch per write.
    mvcc: MvccState,
    /// The configuration this database was built/opened with (see
    /// [`Db::config`]).
    config: DbConfig,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("label", &self.label)
            .field("file_backed", &!self.ios.is_empty())
            .finish()
    }
}

impl Db {
    /// Starts a builder (same as [`DbBuilder::new`]).
    pub fn builder() -> DbBuilder {
        DbBuilder::new()
    }

    /// Display label of the structure configuration ("4-COLA", …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Inserts or overwrites `key`.
    pub fn insert(&mut self, key: u64, val: u64) {
        self.dirty = true;
        self.mvcc.record(key, Some(val));
        self.dict.insert(key, val)
    }

    /// Deletes `key`.
    pub fn delete(&mut self, key: u64) {
        self.dirty = true;
        self.mvcc.record(key, None);
        self.dict.delete(key)
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        self.dict.get(key)
    }

    /// A streaming cursor over live entries in `[lo, hi]`.
    pub fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
        self.dict.cursor(lo, hi)
    }

    /// All live entries in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.dict.range(lo, hi)
    }

    /// Applies and drains a batch of updates.
    pub fn apply(&mut self, batch: &mut UpdateBatch) {
        self.dirty = true;
        // Record before `apply` drains the batch.
        self.mvcc.record_ops(batch.ops());
        self.dict.apply(batch)
    }

    /// Inserts a key-sorted run of pairs in one batched pass.
    pub fn insert_batch(&mut self, sorted: &[(u64, u64)]) {
        self.dirty = true;
        self.mvcc.record_inserts(sorted);
        self.dict.insert_batch(sorted)
    }

    /// Number of physically stored entries (shadowed versions and
    /// tombstones included for the log-structured structures), summed
    /// across shards.
    pub fn physical_len(&self) -> usize {
        self.dict.physical_len()
    }

    /// The inner dictionary, for interfaces that want the trait object.
    /// Conservatively marks the database dirty (the borrow can mutate
    /// without going through the tracked methods).
    pub fn dict_mut(&mut self) -> &mut dyn Dictionary {
        self.dirty = true;
        // Mutations through the raw trait object bypass the mirror; the
        // next snapshot() reseeds from a full scan instead of trusting it.
        self.mvcc.invalidate();
        self.dict.as_dyn()
    }

    /// Commits the current state durably (a no-op returning `Ok` for
    /// memory backends). For every file-backed shard this serializes the
    /// structure's control state ([`cosbt_core::Persist`]) and runs the
    /// store's shadow commit: data pages, then metadata, each behind a
    /// durability barrier — a crash at any point leaves either the
    /// previous or the new committed state of that store, never a
    /// mixture. A **sharded** database additionally makes the commit
    /// atomic across shards: every shard commits first, then the
    /// cross-shard commit record (`<base>.commit`, one epoch per shard)
    /// is renamed into place; on reopen each shard is rolled back to its
    /// recorded epoch, so a crash between two shards' commits still
    /// recovers the previous whole-database state. I/O errors propagate;
    /// nothing is swallowed — and if writing the commit record itself
    /// fails repeatedly while shard commits keep advancing, the record
    /// can fall more than one epoch behind and the next open reports it
    /// stale (`Corrupt`) instead of guessing.
    ///
    /// Dropping a file-backed `Db` syncs best-effort (errors reported
    /// to stderr but not propagated, skipped entirely if nothing changed
    /// since the last commit); call `sync` explicitly where durability
    /// failures must be handled.
    pub fn sync(&mut self) -> io::Result<()> {
        // Quiesce background merges first: a worker publishing a
        // compacted epoch mid-commit is harmless for correctness (it
        // only touches the in-memory overlay), but draining here gives
        // `sync` a simple contract — after it returns, no background
        // work is in flight.
        self.mvcc.drain();
        if self.ios.is_empty() {
            return Ok(());
        }
        match &mut self.dict {
            DbDict::Single(s) => {
                let meta = s.save_meta();
                self.ios[0].commit_meta(&meta)?;
            }
            DbDict::Sharded(r) => {
                let shards = r.shards_mut();
                debug_assert_eq!(shards.len(), self.ios.len());
                for (shard, io) in shards.iter_mut().zip(&self.ios) {
                    let meta = shard.save_meta();
                    io.commit_meta(&meta)?;
                }
                // Cross-shard commit point: rename the epoch vector into
                // place only after every shard's own commit is durable.
                if let Some(cp) = &self.commit_path {
                    let epochs: Vec<u64> = self.ios.iter().map(StoreHandle::epoch).collect();
                    write_file_atomic(cp, &encode_commit_record(&epochs))?;
                }
            }
        }
        self.dirty = false;
        Ok(())
    }

    /// The single entry point to the backing stores' I/O counters: a
    /// cheap, cloneable [`IoHandle`] with
    /// [`snapshot`](IoHandle::snapshot) / [`take`](IoHandle::take) /
    /// [`reset`](IoHandle::reset). Counters aggregate (sum fieldwise)
    /// across shards; for memory backends the handle is empty and every
    /// counter reads zero ([`IoHandle::is_instrumented`] distinguishes
    /// the two). The handle stays valid while the database is mutably
    /// borrowed or driven from another thread.
    pub fn io(&self) -> IoHandle {
        IoHandle {
            handles: self.ios.clone(),
        }
    }

    /// Declares the in-memory state disposable: suppresses the
    /// best-effort sync-on-drop until the next mutation. For throwaway
    /// stores — benchmark scratch cells whose files are unlinked right
    /// after — where the final commit (which quiesces deamortized
    /// structures and fsyncs metadata) would be pure wasted I/O.
    /// Explicit [`Db::sync`] still works afterwards.
    pub fn discard_on_drop(&mut self) {
        self.dirty = false;
    }

    /// Empties every shard's user-space page cache — the paper's
    /// "remount" — so the next operations run cold (no-op for memory
    /// backends). Dirty pages are written back first, so I/O errors
    /// propagate.
    pub fn drop_cache(&self) -> io::Result<()> {
        for h in &self.ios {
            h.drop_cache()?;
        }
        Ok(())
    }

    /// An immutable, shareable snapshot of the current contents.
    ///
    /// The returned [`DbSnapshot`] is `Send + Sync + Clone`: hand clones
    /// to reader threads and they serve `get`/`range`/`cursor` against
    /// the pinned version without any lock, while this `Db` keeps
    /// writing and publishing newer epochs. Pinned versions also hold
    /// back on-disk page reclamation for file-backed stores, so a
    /// long-lived snapshot keeps its bytes addressable.
    ///
    /// The first call activates the overlay with a full scan (`O(N)`);
    /// subsequent calls publish only the writes since the previous
    /// snapshot. A database that never calls `snapshot()` pays nothing —
    /// single-threaded transfer counts are byte-identical to builds
    /// without this subsystem.
    pub fn snapshot(&mut self) -> DbSnapshot {
        let store_epochs: std::sync::Arc<[u64]> = self.ios.iter().map(StoreHandle::epoch).collect();
        if self.mvcc.needs_seed() {
            let base = self.dict.range(0, u64::MAX);
            self.mvcc.seed(base, store_epochs);
        } else {
            self.mvcc.publish_pending(store_epochs);
        }
        self.mvcc.maybe_compact();
        DbSnapshot::new(self.mvcc.mgr.pin())
    }

    /// A concurrent read handle: a [`DbReader`] that serves
    /// `get`/`range`/`cursor` lock-free against the newest *published*
    /// epoch, auto-refreshing within a configurable staleness bound
    /// (see [`DbReader::with_staleness`]). This is the documented read
    /// path for "many readers, one writer" deployments: hand one
    /// reader to each thread, keep writing through the `Db`, and call
    /// [`Db::snapshot`] (or `reader()` again) to publish batches of
    /// writes to the readers.
    ///
    /// Like [`Db::snapshot`], the call publishes all pending writes
    /// first (the first ever call seeds the overlay with a full scan).
    pub fn reader(&mut self) -> DbReader {
        let snap = self.snapshot();
        DbReader::new(self.mvcc.mgr.clone(), snap)
    }

    /// Counters of the epoch/snapshot subsystem (epochs published, runs
    /// retired/reclaimed, currently pinned snapshots).
    pub fn snapshot_stats(&self) -> EpochStats {
        self.mvcc.mgr.stats()
    }

    /// The configuration this database was built or opened with, as a
    /// serializable [`DbConfig`] — the round-trip companion of
    /// [`DbBuilder::from_config`].
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Points every store's page reclamation at the epoch manager so
    /// retired pages are recycled only once no pinned snapshot can
    /// still need them.
    fn install_reclaim_gates(&mut self) {
        for (i, io) in self.ios.iter().enumerate() {
            io.set_reclaim_gate(self.mvcc.mgr.shard_gate(i));
        }
    }
}

impl Drop for Db {
    /// Best-effort sync-on-drop for file-backed databases, so a scope
    /// exit never silently loses a committed-state opportunity. A
    /// failure is reported to stderr (Drop cannot propagate) — call
    /// [`Db::sync`] explicitly where errors must be handled.
    fn drop(&mut self) {
        // Stop background merge workers before anything else. Bounded:
        // a wedged worker is detached and reported rather than hanging
        // the drop forever. Jobs only touch the in-memory overlay, so
        // abandoning one never corrupts durable state.
        if let Some(pool) = self.mvcc.pool.take() {
            // Queued-but-unstarted compactions become no-ops from here
            // on; shutdown's timeout path additionally clears the
            // queue, so a detached worker can never start a job that
            // races this teardown.
            self.mvcc.close();
            if let Err(n) = pool.shutdown(cosbt_core::worker::DROP_SHUTDOWN_TIMEOUT) {
                eprintln!(
                    "cosbt: drop of '{}' abandoned {n} background merge worker(s) \
                     still running after {:?}",
                    self.label,
                    cosbt_core::worker::DROP_SHUTDOWN_TIMEOUT
                );
            }
        }
        // Never commit during a panic unwind: the panic may have left a
        // merge or split half-applied, and serializing that bookkeeping
        // would durably overwrite the last *good* epoch (quiescing an
        // inconsistent structure could also double-panic into an abort).
        if std::thread::panicking() {
            return;
        }
        if self.dirty && !self.ios.is_empty() {
            if let Err(e) = self.sync() {
                // Drop cannot propagate; a durability failure must still
                // be visible somewhere. Callers that need the error call
                // sync() themselves.
                eprintln!("cosbt: sync-on-drop of '{}' failed: {e}", self.label);
            }
        }
    }
}

impl Dictionary for Db {
    // Forward through the inherent methods so trait-dispatched writes
    // hit the dirty flag and the snapshot mirror exactly like direct
    // calls do.
    fn insert(&mut self, key: u64, val: u64) {
        Db::insert(self, key, val)
    }

    fn delete(&mut self, key: u64) {
        Db::delete(self, key)
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        Db::get(self, key)
    }

    fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
        Db::cursor(self, lo, hi)
    }

    fn apply(&mut self, batch: &mut UpdateBatch) {
        Db::apply(self, batch)
    }

    fn insert_batch(&mut self, sorted: &[(u64, u64)]) {
        Db::insert_batch(self, sorted)
    }

    fn physical_len(&self) -> usize {
        self.dict.physical_len()
    }

    fn name(&self) -> &'static str {
        self.dict.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cosbt-db-{}-{name}.dat", std::process::id()));
        p
    }

    /// The shared matrix plus a few splitter variants with boundaries
    /// placed inside the small key range the tests exercise.
    fn all_mem_configs() -> Vec<DbBuilder> {
        let mut configs = DbBuilder::matrix(&[1]);
        configs.extend([
            DbBuilder::new()
                .structure(Structure::GCola { g: 4 })
                .shards(4)
                .shard_splitters(vec![100, 600, 1200]),
            DbBuilder::new()
                .structure(Structure::BTree)
                .shards(2)
                .shard_splitters(vec![500])
                .parallel_ingest(true),
            DbBuilder::new()
                .structure(Structure::Shuttle { c: 4 })
                .shards(3)
                .shard_splitters(vec![300, 900]),
        ]);
        configs
    }

    #[test]
    fn every_mem_config_builds_and_roundtrips() {
        for b in all_mem_configs() {
            let label = b.label();
            let mut db = b.build().unwrap();
            for k in 0..500u64 {
                db.insert(k * 3, k);
            }
            db.delete(0);
            assert_eq!(db.get(3), Some(1), "{label}");
            assert_eq!(db.get(0), None, "{label}");
            assert_eq!(db.range(3, 9).len(), 3, "{label}");
            let mut c = db.cursor(3, 9);
            assert_eq!(c.next(), Some((3, 1)), "{label}");
            assert_eq!(c.prev(), Some((3, 1)), "{label}");
        }
    }

    #[test]
    fn batches_through_the_facade() {
        for b in all_mem_configs() {
            let label = b.label();
            let mut db = b.build().unwrap();
            let mut batch = UpdateBatch::new();
            for k in 0..100u64 {
                batch.put(k, k + 1);
            }
            batch.delete(50);
            db.apply(&mut batch);
            assert!(batch.is_empty(), "{label}");
            assert_eq!(db.get(10), Some(11), "{label}");
            assert_eq!(db.get(50), None, "{label}");
            db.insert_batch(&[(200, 1), (201, 2), (202, 3)]);
            assert_eq!(db.get(201), Some(2), "{label}");
        }
    }

    #[test]
    fn file_backend_survives_cache_drop() {
        for s in [
            Structure::GCola { g: 4 },
            Structure::BasicCola,
            Structure::BTree,
            Structure::Brt,
        ] {
            let path = tmp(&format!("{s:?}").replace([' ', '{', '}', ':'], ""));
            let mut db = DbBuilder::new()
                .structure(s)
                .backend(Backend::file(path.clone()))
                .cache_bytes(64 * 1024)
                .build()
                .unwrap();
            for k in 0..2000u64 {
                db.insert(k, k + 7);
            }
            db.drop_cache().unwrap();
            assert_eq!(db.get(1500), Some(1507), "{}", db.label());
            assert!(db.io().snapshot().accesses > 0, "{}", db.label());
            drop(db);
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn sharded_file_backend_aggregates_io() {
        let base = tmp("sharded");
        let mut db = DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .backend(Backend::file(base.clone()))
            .cache_bytes(256 * 1024)
            .shards(4)
            .shard_splitters(vec![500, 1000, 1500])
            .parallel_ingest(true)
            .build()
            .unwrap();
        let run: Vec<(u64, u64)> = (0..2000u64).map(|k| (k, k + 7)).collect();
        db.insert_batch(&run);
        db.drop_cache().unwrap();
        let probe = db.io();
        let before = probe.snapshot();
        // One get per shard's partition → every shard's store is touched.
        for k in [100u64, 700, 1200, 1800] {
            assert_eq!(db.get(k), Some(k + 7));
        }
        let after = probe.snapshot();
        assert!(after.accesses > before.accesses);
        assert!(after.fetches > 0, "cold reads fetch from every shard");
        probe.reset();
        assert_eq!(db.io().snapshot().accesses, 0);
        drop(db);
        for i in 0..4 {
            let mut os = base.clone().into_os_string();
            os.push(format!(".shard{i}"));
            let shard_path = PathBuf::from(os);
            assert!(shard_path.exists(), "shard {i} has its own file");
            std::fs::remove_file(shard_path).ok();
        }
    }

    #[test]
    fn failed_sharded_build_removes_partial_files() {
        let base = tmp("cleanup");
        // A directory squatting on shard 1's path makes its creation fail
        // after shard 0's file was already created and truncated.
        let mut os = base.clone().into_os_string();
        os.push(".shard1");
        let blocker = PathBuf::from(os);
        std::fs::create_dir_all(&blocker).unwrap();
        let err = DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .backend(Backend::file(base.clone()))
            .shards(2)
            .build();
        assert!(matches!(err, Err(BuildError::Io(_))));
        let mut os = base.clone().into_os_string();
        os.push(".shard0");
        assert!(
            !PathBuf::from(os).exists(),
            "a failed build must not leave partial shard files behind"
        );
        std::fs::remove_dir(&blocker).ok();
    }

    #[test]
    fn unsupported_file_build_preserves_preexisting_data() {
        // A misconfiguration error (shuttle × file) fails before the
        // backing file is ever opened — it must not delete a user's
        // pre-existing file at that path.
        let path = tmp("preexisting");
        std::fs::write(&path, b"precious bytes").unwrap();
        let err = DbBuilder::new()
            .structure(Structure::Shuttle { c: 4 })
            .backend(Backend::file(path.clone()))
            .build();
        assert!(matches!(err, Err(BuildError::Unsupported(_))));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"precious bytes",
            "an Unsupported build error must not unlink pre-existing data"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn data_paths_name_every_backing_file() {
        assert!(DbBuilder::new().data_paths().is_empty(), "mem: no files");
        let base = tmp("datapaths");
        let b = DbBuilder::new().backend(Backend::file(base.clone()));
        assert_eq!(b.data_paths(), vec![base.clone()], "unsharded: the path");
        let b = b.shards(3);
        let paths = b.data_paths();
        assert_eq!(
            paths.len(),
            5,
            "3 shard files plus the routing manifest and the commit record"
        );
        for (i, p) in paths[..3].iter().enumerate() {
            assert!(
                p.to_string_lossy().ends_with(&format!(".shard{i}")),
                "{p:?}"
            );
        }
        assert!(
            paths[3].to_string_lossy().ends_with(".manifest"),
            "{:?}",
            paths[3]
        );
        assert!(
            paths[4].to_string_lossy().ends_with(".commit"),
            "{:?}",
            paths[4]
        );
        // The advertised contract: building then unlinking data_paths
        // leaves nothing behind.
        let db = b.clone().build().unwrap();
        drop(db);
        for p in b.data_paths() {
            assert!(p.exists(), "{p:?} was created by build");
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn matrix_cells_all_build_and_cover_every_structure() {
        let cells = DbBuilder::matrix(&[1, 2, 4]);
        assert_eq!(cells.len(), 9 * 3);
        let labels: Vec<String> = cells.iter().map(|b| b.label()).collect();
        for b in cells {
            b.build().expect("every matrix cell must build");
        }
        for needle in [
            "basic-COLA",
            "deamortized-basic-COLA",
            "2-COLA",
            "deamortized-2-COLA",
            "4-COLA",
            "8-COLA",
            "B-tree",
            "BRT",
            "shuttle(4)",
            "4-COLA ×4 shards",
        ] {
            assert!(
                labels.iter().any(|l| l == needle),
                "matrix misses {needle}: {labels:?}"
            );
        }
    }

    #[test]
    fn take_io_stats_closes_a_phase() {
        let path = tmp("takeio");
        let mut db = DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .backend(Backend::file(path.clone()))
            .cache_bytes(64 * 1024)
            .build()
            .unwrap();
        for k in 0..2000u64 {
            db.insert(k, k);
        }
        let prefill = db.io().take();
        assert!(prefill.accesses > 0);
        assert_eq!(db.io().snapshot(), IoStats::default());
        db.drop_cache().unwrap();
        let _ = db.io().take();
        for k in (0..2000u64).step_by(101) {
            assert_eq!(db.get(k), Some(k));
        }
        let run = db.io().take();
        assert!(run.fetches > 0, "cold search phase fetched");
        drop(db);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn invalid_combinations_fail_clearly() {
        assert!(DbBuilder::new()
            .structure(Structure::BTree)
            .deamortized()
            .build()
            .is_err());
        assert!(DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .deamortized()
            .build()
            .is_err());
        assert!(DbBuilder::new()
            .structure(Structure::GCola { g: 1 })
            .build()
            .is_err());
        assert!(DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .pointer_density(1.0)
            .build()
            .is_err());
        assert!(DbBuilder::new()
            .structure(Structure::Shuttle { c: 4 })
            .backend(Backend::file(tmp("shuttle")))
            .build()
            .is_err());
        assert!(DbBuilder::new().shards(0).build().is_err());
        assert!(DbBuilder::new()
            .shards(3)
            .shard_splitters(vec![10]) // needs 2 boundaries
            .build()
            .is_err());
        assert!(DbBuilder::new()
            .shards(3)
            .shard_splitters(vec![20, 10]) // not increasing
            .build()
            .is_err());
        // A sharded file backend whose budget cannot cover every shard's
        // 2-page cache floor must fail instead of silently exceeding it.
        assert!(DbBuilder::new()
            .backend(Backend::file(tmp("tinycache")))
            .shards(8)
            .cache_bytes(4 * 4096)
            .build()
            .is_err());
    }

    #[test]
    fn errors_enumerate_the_valid_matrix() {
        let err = DbBuilder::new()
            .structure(Structure::BTree)
            .deamortized()
            .build()
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("valid combinations are:"),
            "error should enumerate alternatives, got: {msg}"
        );
        // Every structure appears in the enumeration.
        for name in ["BasicCola", "GCola", "BTree", "Brt", "Shuttle"] {
            assert!(msg.contains(name), "matrix should mention {name}: {msg}");
        }
        assert!(msg.contains("shards"), "matrix should mention sharding");
    }

    #[test]
    fn labels() {
        assert_eq!(
            DbBuilder::new()
                .structure(Structure::GCola { g: 2 })
                .label(),
            "2-COLA"
        );
        assert_eq!(
            DbBuilder::new()
                .structure(Structure::BasicCola)
                .deamortized()
                .label(),
            "deamortized-basic-COLA"
        );
        assert_eq!(
            DbBuilder::new().structure(Structure::BTree).label(),
            "B-tree"
        );
        assert_eq!(
            DbBuilder::new()
                .structure(Structure::GCola { g: 4 })
                .shards(4)
                .label(),
            "4-COLA ×4 shards"
        );
    }

    #[test]
    fn config_round_trips_through_builder() {
        let b = DbBuilder::new()
            .structure(Structure::GCola { g: 8 })
            .deamortized()
            .pointer_density(0.25)
            .cascade(false)
            .shards(3)
            .shard_splitters(vec![100, 200])
            .parallel_ingest(true)
            .cache_bytes(1 << 20)
            .backend(Backend::file_direct("scratch.db"));
        let cfg = b.config();
        assert_eq!(DbBuilder::from_config(&cfg).config(), cfg);
        assert_eq!(DbBuilder::from_config(&cfg).label(), b.label());
        assert_eq!(cfg.backend_kind(), "file-direct");
        assert!(cfg.direct());
        assert_eq!(
            cfg.identity(),
            DbBuilder::from_config(&cfg).config().identity()
        );

        let mem = DbBuilder::new().config();
        assert_eq!(mem.backend_kind(), "mem");
        assert!(!mem.direct());
        assert_ne!(mem.identity(), cfg.identity());
    }

    #[test]
    fn db_config_reflects_build_and_reopen() {
        let path = tmp("config-reflect");
        let builder = DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .backend(Backend::file(path.clone()))
            .cache_bytes(128 * 1024)
            .shards(2)
            .shard_splitters(vec![1000]);
        let mut db = builder.clone().build().unwrap();
        db.insert(1, 10);
        db.insert(2000, 20);
        let built_cfg = db.config().clone();
        assert_eq!(built_cfg, builder.config());
        db.sync().unwrap();
        drop(db);

        // Reopening without splitters recovers them from the manifest,
        // so the recorded config reproduces the layout exactly.
        let db = DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .backend(Backend::file(path.clone()))
            .cache_bytes(128 * 1024)
            .shards(2)
            .open()
            .unwrap();
        assert_eq!(db.config().splitters, Some(vec![1000]));
        assert_eq!(db.config().identity(), built_cfg.identity());
        drop(db);
        for p in data_paths_for(&path) {
            std::fs::remove_file(p).ok();
        }
    }

    fn data_paths_for(base: &Path) -> Vec<PathBuf> {
        let mut out = vec![base.to_path_buf()];
        for i in 0..8 {
            let mut os = base.to_path_buf().into_os_string();
            os.push(format!(".shard{i}"));
            out.push(PathBuf::from(os));
        }
        out
    }

    #[test]
    fn db_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Db>();
        assert_send::<IoHandle>();
    }
}
