//! The top-level handle: one builder configures any structure in the
//! workspace over any storage backend.
//!
//! The per-crate constructors (`GCola::new`, `BTree::new(FilePages::…)`,
//! …) remain available for code that needs a concrete type, but examples,
//! tests, and benchmarks go through [`DbBuilder`] so switching structure
//! or backend is a one-line change:
//!
//! ```
//! use cosbt::{Backend, DbBuilder, Structure};
//!
//! let mut db = DbBuilder::new()
//!     .structure(Structure::GCola { g: 4 })
//!     .backend(Backend::Mem)
//!     .build()
//!     .unwrap();
//! db.insert(1, 10);
//! assert_eq!(db.get(1), Some(10));
//! ```

use std::path::PathBuf;

use cosbt_brt::Brt;
use cosbt_btree::BTree;
use cosbt_core::entry::Cell;
use cosbt_core::{
    BasicCola, Cursor, DeamortBasicCola, DeamortCola, Dictionary, GCola, UpdateBatch,
};
use cosbt_dam::{FileMem, FilePages, IoStats, RcFileMem, RcFilePages, DEFAULT_PAGE_SIZE};
use cosbt_shuttle::ShuttleTree;

/// Which data structure a [`DbBuilder`] instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Structure {
    /// Section 3's basic COLA (no lookahead pointers).
    BasicCola,
    /// Section 4's lookahead array with growth factor `g` (the paper's
    /// experimental structure; `g = 2` is the COLA of Lemma 20).
    GCola {
        /// Growth factor, at least 2.
        g: usize,
    },
    /// The baseline B+-tree (4 KiB pages).
    BTree,
    /// The buffered repository tree.
    Brt,
    /// The shuttle tree with fanout parameter `c`.
    Shuttle {
        /// Fanout parameter, at least 2.
        c: usize,
    },
}

/// Where a [`DbBuilder`] puts the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Backend {
    /// Plain heap memory (no instrumentation overhead).
    Mem,
    /// A file at the given path behind a bounded user-space page cache
    /// (see [`DbBuilder::cache_bytes`]); the out-of-core regime of the
    /// paper's experiments. The file is created (truncated) at build.
    File(PathBuf),
}

/// Why a [`DbBuilder::build`] call failed.
#[derive(Debug)]
pub enum BuildError {
    /// The requested structure/modifier/backend combination does not
    /// exist (e.g. a deamortized B-tree, or a file-backed shuttle tree).
    Unsupported(String),
    /// Creating the backing file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Unsupported(what) => write!(f, "unsupported configuration: {what}"),
            BuildError::Io(e) => write!(f, "backend I/O error: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<std::io::Error> for BuildError {
    fn from(e: std::io::Error) -> Self {
        BuildError::Io(e)
    }
}

/// Builder for a [`Db`]; see the module docs for a walkthrough.
#[derive(Debug, Clone)]
pub struct DbBuilder {
    structure: Structure,
    backend: Backend,
    cache_bytes: usize,
    deamortized: bool,
    pointer_density: f64,
}

impl Default for DbBuilder {
    fn default() -> Self {
        DbBuilder {
            structure: Structure::GCola { g: 4 },
            backend: Backend::Mem,
            cache_bytes: 16 * 1024 * 1024,
            deamortized: false,
            pointer_density: 0.1,
        }
    }
}

impl DbBuilder {
    /// A builder with the paper's defaults: an in-memory 4-COLA with
    /// pointer density 0.1 and (for file backends) a 16 MiB cache budget.
    pub fn new() -> DbBuilder {
        DbBuilder::default()
    }

    /// Selects the data structure.
    pub fn structure(mut self, s: Structure) -> DbBuilder {
        self.structure = s;
        self
    }

    /// Selects the storage backend.
    pub fn backend(mut self, b: Backend) -> DbBuilder {
        self.backend = b;
        self
    }

    /// Memory budget of the user-space page cache for file backends
    /// (ignored by [`Backend::Mem`]).
    pub fn cache_bytes(mut self, bytes: usize) -> DbBuilder {
        self.cache_bytes = bytes;
        self
    }

    /// Requests the worst-case-bounded variant: [`Structure::BasicCola`]
    /// becomes the two-array deamortization of Theorem 22 and
    /// [`Structure::GCola`] the three-array shadow/visible deamortization
    /// of Theorem 24 (which fixes growth factor 2). Tree structures have
    /// no deamortized variant and fail at build.
    pub fn deamortized(mut self) -> DbBuilder {
        self.deamortized = true;
        self
    }

    /// Lookahead-pointer density for [`Structure::GCola`] (default 0.1,
    /// as in the paper's experiments; 0 disables the pointers).
    pub fn pointer_density(mut self, p: f64) -> DbBuilder {
        self.pointer_density = p;
        self
    }

    /// Instantiates the configured dictionary.
    pub fn build(self) -> Result<Db, BuildError> {
        let label = self.label();
        let cache_pages = (self.cache_bytes / DEFAULT_PAGE_SIZE).max(2);
        let unsupported = |what: &str| BuildError::Unsupported(format!("{what} ({label})"));

        if self.deamortized
            && !matches!(
                self.structure,
                Structure::BasicCola | Structure::GCola { .. }
            )
        {
            return Err(unsupported(
                "deamortization exists only for the COLA family",
            ));
        }
        if let Structure::GCola { g } = self.structure {
            if g < 2 {
                return Err(unsupported("growth factor must be at least 2"));
            }
            if self.deamortized && g != 2 {
                return Err(unsupported("the deamortized COLA fixes growth factor 2"));
            }
            if !(0.0..1.0).contains(&self.pointer_density) {
                return Err(unsupported("pointer density must be in [0, 1)"));
            }
        }
        if let Structure::Shuttle { c } = self.structure {
            if c < 2 {
                return Err(unsupported("fanout parameter must be at least 2"));
            }
        }

        let (dict, io): (Box<dyn Dictionary>, Option<IoHandle>) =
            match (&self.backend, self.structure) {
                (Backend::Mem, Structure::BasicCola) if self.deamortized => {
                    (Box::new(DeamortBasicCola::new_plain()), None)
                }
                (Backend::Mem, Structure::BasicCola) => (Box::new(BasicCola::new_plain()), None),
                (Backend::Mem, Structure::GCola { .. }) if self.deamortized => {
                    (Box::new(DeamortCola::new_plain()), None)
                }
                (Backend::Mem, Structure::GCola { g }) => (
                    Box::new(GCola::new(
                        cosbt_dam::PlainMem::new(),
                        g,
                        self.pointer_density,
                    )),
                    None,
                ),
                (Backend::Mem, Structure::BTree) => (Box::new(BTree::new_plain()), None),
                (Backend::Mem, Structure::Brt) => (Box::new(Brt::new_plain()), None),
                (Backend::Mem, Structure::Shuttle { c }) => (Box::new(ShuttleTree::new(c)), None),
                (Backend::File(path), structure) => {
                    match structure {
                        Structure::Shuttle { .. } => {
                            return Err(unsupported(
                                "the shuttle tree is in-memory only (its file layout is measured \
                             through LayoutImage, not served from disk)",
                            ))
                        }
                        Structure::BTree | Structure::Brt => {
                            let store = RcFilePages::new(FilePages::create(
                                path,
                                DEFAULT_PAGE_SIZE,
                                cache_pages,
                            )?);
                            let dict: Box<dyn Dictionary> = match structure {
                                Structure::BTree => Box::new(BTree::new(store.clone())),
                                _ => Box::new(Brt::new(store.clone())),
                            };
                            (dict, Some(IoHandle::Pages(store)))
                        }
                        Structure::BasicCola | Structure::GCola { .. } => {
                            // 32-byte modeled elements, as in the paper.
                            let mem = RcFileMem::new(FileMem::<Cell>::create(
                                path,
                                DEFAULT_PAGE_SIZE,
                                cache_pages,
                                32,
                            )?);
                            let dict: Box<dyn Dictionary> = match (structure, self.deamortized) {
                                (Structure::BasicCola, false) => {
                                    Box::new(BasicCola::new(mem.clone()))
                                }
                                (Structure::BasicCola, true) => {
                                    Box::new(DeamortBasicCola::new(mem.clone()))
                                }
                                (Structure::GCola { g }, false) => {
                                    Box::new(GCola::new(mem.clone(), g, self.pointer_density))
                                }
                                (Structure::GCola { .. }, true) => {
                                    Box::new(DeamortCola::new(mem.clone()))
                                }
                                _ => unreachable!(),
                            };
                            (dict, Some(IoHandle::Mem(mem)))
                        }
                    }
                }
            };
        Ok(Db { dict, io, label })
    }

    /// Display label of the configured structure ("4-COLA", "B-tree", …).
    pub fn label(&self) -> String {
        let base = match self.structure {
            Structure::BasicCola => "basic-COLA".to_string(),
            Structure::GCola { g } => format!("{g}-COLA"),
            Structure::BTree => "B-tree".to_string(),
            Structure::Brt => "BRT".to_string(),
            Structure::Shuttle { c } => format!("shuttle({c})"),
        };
        if self.deamortized {
            format!("deamortized-{base}")
        } else {
            base
        }
    }
}

/// Shared I/O-counter handle of a file-backed [`Db`].
#[derive(Clone)]
enum IoHandle {
    Mem(RcFileMem<Cell>),
    Pages(RcFilePages),
}

/// A cheap cloneable reader of a file-backed [`Db`]'s I/O counters,
/// usable while the dictionary itself is mutably borrowed.
#[derive(Clone)]
pub struct IoProbe {
    inner: IoHandle,
}

impl IoProbe {
    /// Current counters.
    pub fn stats(&self) -> IoStats {
        match &self.inner {
            IoHandle::Mem(m) => m.stats(),
            IoHandle::Pages(p) => p.stats(),
        }
    }

    /// Cumulative block transfers (fetches + writebacks).
    pub fn transfers(&self) -> u64 {
        self.stats().transfers()
    }
}

/// A dictionary built by [`DbBuilder`]: any of the six structures behind
/// the one [`Dictionary`] interface, with uniform access to the backing
/// store's I/O counters and cache control when file-backed.
pub struct Db {
    dict: Box<dyn Dictionary>,
    io: Option<IoHandle>,
    label: String,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("label", &self.label)
            .field("file_backed", &self.io.is_some())
            .finish()
    }
}

impl Db {
    /// Starts a builder (same as [`DbBuilder::new`]).
    pub fn builder() -> DbBuilder {
        DbBuilder::new()
    }

    /// Display label of the structure configuration ("4-COLA", …).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Inserts or overwrites `key`.
    pub fn insert(&mut self, key: u64, val: u64) {
        self.dict.insert(key, val)
    }

    /// Deletes `key`.
    pub fn delete(&mut self, key: u64) {
        self.dict.delete(key)
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        self.dict.get(key)
    }

    /// A streaming cursor over live entries in `[lo, hi]`.
    pub fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
        self.dict.cursor(lo, hi)
    }

    /// All live entries in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.dict.range(lo, hi)
    }

    /// Applies and drains a batch of updates.
    pub fn apply(&mut self, batch: &mut UpdateBatch) {
        self.dict.apply(batch)
    }

    /// Inserts a key-sorted run of pairs in one batched pass.
    pub fn insert_batch(&mut self, sorted: &[(u64, u64)]) {
        self.dict.insert_batch(sorted)
    }

    /// Number of physically stored entries (shadowed versions and
    /// tombstones included for the log-structured structures).
    pub fn physical_len(&self) -> usize {
        self.dict.physical_len()
    }

    /// The inner dictionary, for interfaces that want the trait object.
    pub fn dict_mut(&mut self) -> &mut dyn Dictionary {
        self.dict.as_mut()
    }

    /// I/O-counter probe; `None` for memory backends.
    pub fn io_probe(&self) -> Option<IoProbe> {
        self.io.clone().map(|inner| IoProbe { inner })
    }

    /// Real-I/O counters; zeros for memory backends.
    pub fn io_stats(&self) -> IoStats {
        self.io_probe().map(|p| p.stats()).unwrap_or_default()
    }

    /// Resets the I/O counters (no-op for memory backends).
    pub fn reset_io_stats(&self) {
        match &self.io {
            Some(IoHandle::Mem(m)) => m.reset_stats(),
            Some(IoHandle::Pages(p)) => p.reset_stats(),
            None => {}
        }
    }

    /// Empties the user-space page cache — the paper's "remount" — so the
    /// next operations run cold (no-op for memory backends).
    pub fn drop_cache(&self) {
        match &self.io {
            Some(IoHandle::Mem(m)) => m.drop_cache(),
            Some(IoHandle::Pages(p)) => p.drop_cache(),
            None => {}
        }
    }
}

impl Dictionary for Db {
    fn insert(&mut self, key: u64, val: u64) {
        self.dict.insert(key, val)
    }

    fn delete(&mut self, key: u64) {
        self.dict.delete(key)
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        self.dict.get(key)
    }

    fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
        self.dict.cursor(lo, hi)
    }

    fn apply(&mut self, batch: &mut UpdateBatch) {
        self.dict.apply(batch)
    }

    fn insert_batch(&mut self, sorted: &[(u64, u64)]) {
        self.dict.insert_batch(sorted)
    }

    fn physical_len(&self) -> usize {
        self.dict.physical_len()
    }

    fn name(&self) -> &'static str {
        self.dict.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cosbt-db-{}-{name}.dat", std::process::id()));
        p
    }

    fn all_mem_configs() -> Vec<DbBuilder> {
        vec![
            DbBuilder::new().structure(Structure::BasicCola),
            DbBuilder::new()
                .structure(Structure::BasicCola)
                .deamortized(),
            DbBuilder::new().structure(Structure::GCola { g: 2 }),
            DbBuilder::new().structure(Structure::GCola { g: 4 }),
            DbBuilder::new()
                .structure(Structure::GCola { g: 2 })
                .deamortized(),
            DbBuilder::new().structure(Structure::BTree),
            DbBuilder::new().structure(Structure::Brt),
            DbBuilder::new().structure(Structure::Shuttle { c: 4 }),
        ]
    }

    #[test]
    fn every_mem_config_builds_and_roundtrips() {
        for b in all_mem_configs() {
            let label = b.label();
            let mut db = b.build().unwrap();
            for k in 0..500u64 {
                db.insert(k * 3, k);
            }
            db.delete(0);
            assert_eq!(db.get(3), Some(1), "{label}");
            assert_eq!(db.get(0), None, "{label}");
            assert_eq!(db.range(3, 9).len(), 3, "{label}");
            let mut c = db.cursor(3, 9);
            assert_eq!(c.next(), Some((3, 1)), "{label}");
            assert_eq!(c.prev(), Some((3, 1)), "{label}");
        }
    }

    #[test]
    fn batches_through_the_facade() {
        for b in all_mem_configs() {
            let label = b.label();
            let mut db = b.build().unwrap();
            let mut batch = UpdateBatch::new();
            for k in 0..100u64 {
                batch.put(k, k + 1);
            }
            batch.delete(50);
            db.apply(&mut batch);
            assert!(batch.is_empty(), "{label}");
            assert_eq!(db.get(10), Some(11), "{label}");
            assert_eq!(db.get(50), None, "{label}");
            db.insert_batch(&[(200, 1), (201, 2), (202, 3)]);
            assert_eq!(db.get(201), Some(2), "{label}");
        }
    }

    #[test]
    fn file_backend_survives_cache_drop() {
        for s in [
            Structure::GCola { g: 4 },
            Structure::BasicCola,
            Structure::BTree,
            Structure::Brt,
        ] {
            let path = tmp(&format!("{s:?}").replace([' ', '{', '}', ':'], ""));
            let mut db = DbBuilder::new()
                .structure(s)
                .backend(Backend::File(path.clone()))
                .cache_bytes(64 * 1024)
                .build()
                .unwrap();
            for k in 0..2000u64 {
                db.insert(k, k + 7);
            }
            db.drop_cache();
            assert_eq!(db.get(1500), Some(1507), "{}", db.label());
            assert!(db.io_stats().accesses > 0, "{}", db.label());
            drop(db);
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn invalid_combinations_fail_clearly() {
        assert!(DbBuilder::new()
            .structure(Structure::BTree)
            .deamortized()
            .build()
            .is_err());
        assert!(DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .deamortized()
            .build()
            .is_err());
        assert!(DbBuilder::new()
            .structure(Structure::GCola { g: 1 })
            .build()
            .is_err());
        assert!(DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .pointer_density(1.0)
            .build()
            .is_err());
        assert!(DbBuilder::new()
            .structure(Structure::Shuttle { c: 4 })
            .backend(Backend::File(tmp("shuttle")))
            .build()
            .is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(
            DbBuilder::new()
                .structure(Structure::GCola { g: 2 })
                .label(),
            "2-COLA"
        );
        assert_eq!(
            DbBuilder::new()
                .structure(Structure::BasicCola)
                .deamortized()
                .label(),
            "deamortized-basic-COLA"
        );
        assert_eq!(
            DbBuilder::new().structure(Structure::BTree).label(),
            "B-tree"
        );
    }
}
