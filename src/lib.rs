//! # cosbt — Cache-Oblivious Streaming B-trees
//!
//! A from-scratch Rust reproduction of *Cache-Oblivious Streaming B-trees*
//! (Bender, Farach-Colton, Fineman, Fogel, Kuszmaul, Nelson — SPAA 2007):
//! the cache-oblivious lookahead array (COLA) family, the shuttle tree,
//! their substrates (DAM-model simulator, packed-memory array), and the
//! baselines the paper compares against (B-tree, buffered repository tree).
//!
//! This facade crate re-exports every sub-crate under one roof; see the
//! workspace `README.md` for a tour and `DESIGN.md` for the system map.
//!
//! ## Quick start
//!
//! ```
//! use cosbt::cola::{Dictionary, GCola};
//!
//! // The paper's experimental structure: a 4-COLA (growth factor 4).
//! let mut map = GCola::new_plain(4);
//! for k in 0..10_000u64 {
//!     map.insert(k * 2654435761 % 1_000_003, k);
//! }
//! assert_eq!(map.get(2654435761 % 1_000_003), Some(1));
//! ```

#![forbid(unsafe_code)]

/// DAM-model simulator and storage substrates.
pub use cosbt_dam as dam;

/// Packed-memory array.
pub use cosbt_pma as pma;

/// The COLA family (the paper's Section 3 and 4).
pub use cosbt_core as cola;

/// Baseline B+-tree (the comparator of Figures 2–4).
pub use cosbt_btree as btree;

/// Buffered repository tree baseline.
pub use cosbt_brt as brt;

/// The shuttle tree (the paper's Section 2).
pub use cosbt_shuttle as shuttle;
