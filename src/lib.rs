//! # cosbt — Cache-Oblivious Streaming B-trees
//!
//! A from-scratch Rust reproduction of *Cache-Oblivious Streaming B-trees*
//! (Bender, Farach-Colton, Fineman, Fogel, Kuszmaul, Nelson — SPAA 2007):
//! the cache-oblivious lookahead array (COLA) family, the shuttle tree,
//! their substrates (DAM-model simulator, packed-memory array), and the
//! baselines the paper compares against (B-tree, buffered repository tree).
//!
//! This facade crate re-exports every sub-crate under one roof and adds
//! the [`Db`]/[`DbBuilder`] handle that configures any structure over any
//! backend; see the workspace `README.md` for a tour and `DESIGN.md` for
//! the system map.
//!
//! ## Quick start
//!
//! ```
//! use cosbt::{Backend, DbBuilder, Structure, UpdateBatch};
//!
//! // The paper's experimental structure: a 4-COLA (growth factor 4),
//! // in memory. Swap one line for `.structure(Structure::BTree)` or
//! // `.backend(Backend::file(path)).cache_bytes(1 << 20)` to change
//! // structure or storage.
//! let mut db = DbBuilder::new()
//!     .structure(Structure::GCola { g: 4 })
//!     .backend(Backend::Mem)
//!     .build()
//!     .unwrap();
//!
//! // Point writes, or whole batches in one merge pass:
//! for k in 0..10_000u64 {
//!     db.insert(k * 2654435761 % 1_000_003, k);
//! }
//! let mut batch = UpdateBatch::new();
//! batch.put(7, 70).put(9, 90).delete(7);
//! db.apply(&mut batch);
//!
//! assert_eq!(db.get(2654435761 % 1_000_003), Some(1));
//! assert_eq!(db.get(9), Some(90));
//! assert_eq!(db.get(7), None);
//!
//! // Streaming range scans: a cursor walks entries without materializing.
//! let mut cur = db.cursor(0, 100);
//! let first = cur.next();
//! assert!(first.is_some());
//! assert_eq!(cur.prev(), first, "cursors are bidirectional");
//! ```
//!
//! ## Scaling across cores
//!
//! `.shards(n)` range-partitions the keyspace across `n` independent
//! instances of the configured structure, and `.parallel_ingest(true)`
//! applies batches on a scoped pool of worker threads — one coherent
//! dictionary view, `n` merge machines (see [`shard`]):
//!
//! ```
//! use cosbt::{DbBuilder, Structure, UpdateBatch};
//!
//! let mut db = DbBuilder::new()
//!     .structure(Structure::GCola { g: 4 })
//!     .shards(4)
//!     .parallel_ingest(true)
//!     .build()
//!     .unwrap();
//! let mut batch = UpdateBatch::new();
//! for k in 0..10_000u64 {
//!     batch.put(k.wrapping_mul(0x9E3779B97F4A7C15), k); // spread over u64
//! }
//! db.apply(&mut batch); // split by shard, applied in parallel
//! assert_eq!(db.range(0, u64::MAX).len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod db;
pub mod shard;
pub mod snapshot;

pub use db::{
    Backend, BuildError, Db, DbBuilder, DbConfig, IoHandle, OpenError, Structure,
    VALID_COMBINATIONS,
};
pub use shard::ShardRouter;
pub use snapshot::{DbReader, DbSnapshot, SnapshotCursor};

/// The shared dictionary API: trait, batches, cursors.
pub use cosbt_core::{BatchOp, Cursor, CursorOps, Dictionary, UpdateBatch, VecCursor};

/// DAM-model simulator and storage substrates.
pub use cosbt_dam as dam;

/// Packed-memory array.
pub use cosbt_pma as pma;

/// The COLA family (the paper's Section 3 and 4).
pub use cosbt_core as cola;

/// Baseline B+-tree (the comparator of Figures 2–4).
pub use cosbt_btree as btree;

/// Buffered repository tree baseline.
pub use cosbt_brt as brt;

/// The shuttle tree (the paper's Section 2).
pub use cosbt_shuttle as shuttle;

/// Deterministic randomized-testing helpers (offline `rand` stand-in).
pub use cosbt_testkit as testkit;
