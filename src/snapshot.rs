//! MVCC snapshots of a [`Db`](crate::Db): lock-free readers over pinned
//! epochs, one writer, background run compaction.
//!
//! [`Db::snapshot`](crate::Db::snapshot) publishes the database's current
//! logical contents as an immutable epoch — a newest-first stack of
//! sorted runs managed by [`cosbt_core::EpochManager`] — and returns a
//! [`DbSnapshot`] pinning it. Snapshots are `Send + Sync + Clone` and
//! `'static`: any number of reader threads can run gets, ranges, and
//! bidirectional cursors against their pinned epochs while the single
//! writer keeps mutating the underlying structures and publishing newer
//! epochs. Reads never touch the writer's structures, caches, or locks.
//!
//! The overlay is **lazy**: until the first `snapshot()` call a `Db`
//! carries no mirror and its single-threaded behaviour (including
//! block-transfer counts) is bit-for-bit unchanged. The first call seeds
//! a base run with a full scan; afterwards every write through the `Db`
//! facade is also appended to a pending delta, and each `snapshot()`
//! publishes the delta as a new run. When the run stack grows past a
//! threshold it is compacted — inline, or on the
//! [`background_merge`](crate::DbBuilder::background_merge) worker pool
//! so a long merge never stalls the writer or the readers.

use cosbt_testkit::sync::atomic::{AtomicBool, Ordering};
use cosbt_testkit::sync::Arc;

use cosbt_core::epoch::{merge_runs, Run};
use cosbt_core::{BatchOp, Cursor, CursorOps, EpochManager, PinnedEpoch, WorkerPool};

/// Compact when an epoch's run stack exceeds this many runs. Small
/// enough to keep point reads cheap (one binary search per run), large
/// enough that compaction is batched COLA-style work, not per-publish.
pub(crate) const MAX_SNAPSHOT_RUNS: usize = 8;

/// Per-`Db` MVCC state: the epoch manager, the mirror of writes not yet
/// published, and the optional background worker pool.
pub(crate) struct MvccState {
    pub(crate) mgr: Arc<EpochManager>,
    /// Writes since the last published epoch, in arrival order. Only
    /// mirrored while `active`.
    pending: Vec<BatchOp>,
    /// Background pool for compactions (`None` = compact inline).
    pub(crate) pool: Option<WorkerPool>,
    /// Single-flight latch: at most one background compaction in the
    /// queue at a time.
    merging: Arc<AtomicBool>,
    /// Teardown latch: set when the owning `Db` starts dropping, so a
    /// background compaction that has not yet begun its merge refuses
    /// to run instead of racing the teardown (the pool's shutdown
    /// clears queued jobs, but a job already *started* when the
    /// timeout fired checks this before touching the epoch manager).
    closed: Arc<AtomicBool>,
    /// Whether the overlay has been seeded and is mirroring writes.
    active: bool,
    /// Set when `dict_mut` hands out raw access the mirror cannot see;
    /// forces a reseed (full rescan) at the next snapshot.
    stale: bool,
}

impl MvccState {
    pub(crate) fn new(pool: Option<WorkerPool>) -> MvccState {
        MvccState {
            mgr: EpochManager::new(),
            pending: Vec::new(),
            pool,
            merging: Arc::new(AtomicBool::new(false)),
            closed: Arc::new(AtomicBool::new(false)),
            active: false,
            stale: false,
        }
    }

    /// Mirrors one write (no-op until the overlay is active).
    #[inline]
    pub(crate) fn record(&mut self, key: u64, op: Option<u64>) {
        if self.active {
            self.pending.push((key, op));
        }
    }

    /// Mirrors a batch of writes in arrival order.
    #[inline]
    pub(crate) fn record_ops(&mut self, ops: &[BatchOp]) {
        if self.active {
            self.pending.extend_from_slice(ops);
        }
    }

    /// Mirrors a sorted insert run.
    #[inline]
    pub(crate) fn record_inserts(&mut self, sorted: &[(u64, u64)]) {
        if self.active {
            self.pending
                .extend(sorted.iter().map(|&(k, v)| (k, Some(v))));
        }
    }

    /// Marks the mirror unreliable (raw dictionary access escaped).
    pub(crate) fn invalidate(&mut self) {
        if self.active {
            self.stale = true;
            self.pending.clear();
        }
    }

    /// Whether the next snapshot must reseed with a full scan.
    pub(crate) fn needs_seed(&self) -> bool {
        !self.active || self.stale
    }

    /// Publishes `base` (the full logical contents) as a fresh
    /// single-run epoch and arms the mirror.
    pub(crate) fn seed(&mut self, base: Vec<(u64, u64)>, store_epochs: Arc<[u64]>) {
        self.pending.clear();
        self.active = true;
        self.stale = false;
        let run = Run::from_sorted(base.into_iter().map(|(k, v)| (k, Some(v))).collect());
        self.mgr
            .publish_with(|_| Some((vec![run], store_epochs)))
            .expect("unconditional publish");
    }

    /// Publishes the pending delta (if any) as a new run on top of the
    /// current epoch.
    pub(crate) fn publish_pending(&mut self, store_epochs: Arc<[u64]>) {
        if self.pending.is_empty() {
            return;
        }
        let run = Run::from_ops(std::mem::take(&mut self.pending));
        self.mgr
            .publish_with(|cur| {
                let mut runs = Vec::with_capacity(cur.runs().len() + 1);
                runs.push(run);
                runs.extend_from_slice(cur.runs());
                Some((runs, store_epochs))
            })
            .expect("unconditional publish");
    }

    /// Compacts the run stack if it outgrew the threshold: on the
    /// worker pool when configured (single-flight), else inline.
    pub(crate) fn maybe_compact(&self) {
        if self.mgr.current().runs().len() <= MAX_SNAPSHOT_RUNS {
            return;
        }
        match &self.pool {
            Some(pool) => {
                // ordering: AcqRel — the winning swap acquires the
                // previous job's Release of `merging`, ordering its
                // published epoch before this job's reads; losers just
                // back off.
                if self.merging.swap(true, Ordering::AcqRel) {
                    return; // one compaction in flight already
                }
                let mgr = self.mgr.clone();
                let merging = self.merging.clone();
                let closed = self.closed.clone();
                pool.submit(move || {
                    // ordering: Acquire pairs with the Release store in
                    // `close()`: once observed, the job must not touch
                    // the epoch manager the teardown is about to drop.
                    if !closed.load(Ordering::Acquire) {
                        compact_once(&mgr);
                    }
                    // ordering: Release publishes this job's epoch
                    // updates to the next compaction's AcqRel swap.
                    merging.store(false, Ordering::Release);
                });
            }
            None => compact_once(&self.mgr),
        }
    }

    /// Flags teardown: background compactions submitted but not yet
    /// running become no-ops. Called by the `Db` drop path before the
    /// pool's bounded-timeout shutdown.
    pub(crate) fn close(&self) {
        // ordering: Release pairs with the Acquire load at the start of
        // each queued compaction job.
        self.closed.store(true, Ordering::Release);
    }

    /// Waits for queued background compactions to finish.
    pub(crate) fn drain(&self) {
        if let Some(pool) = &self.pool {
            pool.drain();
        }
    }
}

/// Merges the oldest half of the current epoch's run stack into one
/// run and publishes the result. The merge itself runs without the
/// manager's lock (this is the long part — it may run on a worker
/// thread); the publish closure then verifies the merged suffix is
/// still the epoch's suffix and aborts otherwise (the writer only
/// prepends runs, so the only way it changed is a reseed).
fn compact_once(mgr: &Arc<EpochManager>) {
    let cur = mgr.current();
    let n = cur.runs().len();
    if n <= MAX_SNAPSHOT_RUNS {
        return;
    }
    // Keep the newest half intact; fold the oldest half (which always
    // includes the base run, so tombstones can be dropped).
    let keep = n / 2;
    let suffix: Vec<Run> = cur.runs()[keep..].to_vec();
    let merged = merge_runs(&suffix, true);
    mgr.publish_with(|latest| {
        let lr = latest.runs();
        if lr.len() < suffix.len() {
            return None;
        }
        let tail = &lr[lr.len() - suffix.len()..];
        if !tail.iter().zip(&suffix).all(|(a, b)| a.ptr_eq(b)) {
            return None;
        }
        let mut runs = lr[..lr.len() - suffix.len()].to_vec();
        runs.push(merged);
        Some((runs, latest.store_epochs_arc()))
    });
}

/// A read-only, point-in-time view of a [`Db`](crate::Db), pinned to
/// one published epoch.
///
/// Obtained from [`Db::snapshot`](crate::Db::snapshot). `Clone` is
/// cheap (re-pins the same epoch); the handle is `Send + Sync` and
/// `'static`, so it can be handed to any number of reader threads.
/// Reads are lock-free — binary searches over immutable `Arc`-shared
/// runs — and are never affected by later writes, merges, or syncs on
/// the originating database. While any clone (or cursor) is alive, the
/// epoch's runs are retained and the backing stores will not recycle
/// pages its committed store epochs reference.
///
/// ```
/// use cosbt::DbBuilder;
///
/// let mut db = DbBuilder::new().build().unwrap();
/// db.insert(1, 10);
/// let snap = db.snapshot();
/// db.insert(1, 99); // later write, invisible to `snap`
/// db.delete(1);
/// assert_eq!(snap.get(1), Some(10));
/// assert_eq!(db.get(1), None);
/// ```
#[derive(Clone)]
pub struct DbSnapshot {
    pinned: PinnedEpoch,
}

impl std::fmt::Debug for DbSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbSnapshot")
            .field("epoch", &self.pinned.seq())
            .field("runs", &self.pinned.runs().len())
            .finish()
    }
}

impl DbSnapshot {
    pub(crate) fn new(pinned: PinnedEpoch) -> DbSnapshot {
        DbSnapshot { pinned }
    }

    /// The pinned epoch's sequence number (monotone per database).
    pub fn epoch(&self) -> u64 {
        self.pinned.seq()
    }

    /// Per-shard committed store epochs this snapshot corresponds to
    /// (the cross-shard epoch vector; empty for memory backends).
    pub fn store_epochs(&self) -> &[u64] {
        self.pinned.store_epochs()
    }

    /// Number of runs in the pinned epoch (diagnostics; bounded by
    /// compaction).
    pub fn run_count(&self) -> usize {
        self.pinned.runs().len()
    }

    /// Looks up `key` in the pinned epoch. Lock-free.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.pinned.get(key)
    }

    /// All live entries with `lo <= key <= hi` in the pinned epoch.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut cur = self.cursor(lo, hi);
        let mut out = Vec::new();
        while let Some(e) = cur.next() {
            out.push(e);
        }
        out
    }

    /// A bidirectional streaming cursor over live entries in
    /// `[lo, hi]`, with the same gap semantics as
    /// [`Dictionary::cursor`](cosbt_core::Dictionary::cursor). The
    /// cursor owns a pin on the epoch, so it may outlive the snapshot
    /// handle it came from.
    pub fn cursor(&self, lo: u64, hi: u64) -> SnapshotCursor {
        SnapshotCursor::new(self.pinned.clone(), lo, hi)
    }

    /// Like [`DbSnapshot::cursor`], boxed into the facade's generic
    /// [`Cursor`] type.
    pub fn cursor_dyn(&self, lo: u64, hi: u64) -> Cursor<'static> {
        Cursor::new(self.cursor(lo, hi))
    }
}

/// A concurrent read handle over a [`Db`](crate::Db): a
/// [`DbSnapshot`] that automatically re-pins the newest *published*
/// epoch when its own view falls more than a configurable number of
/// epochs behind.
///
/// Obtained from [`Db::reader`](crate::Db::reader); this is the
/// documented read path for "many readers, one writer" deployments.
/// Reads are lock-free and never block the writer; the handle is
/// [`Send`], so each reader thread owns one. The read methods take
/// `&mut self` only to perform the cheap staleness check — they never
/// mutate the database.
///
/// Freshness is bounded by publication: a reader observes writes only
/// once the writer publishes them with
/// [`Db::snapshot`](crate::Db::snapshot) (or another
/// [`Db::reader`](crate::Db::reader) call). With the default staleness
/// bound of 0 a refreshed reader always sees the newest published
/// epoch; [`DbReader::with_staleness`] trades freshness for fewer
/// re-pins.
///
/// ```
/// use cosbt::DbBuilder;
///
/// let mut db = DbBuilder::new().build().unwrap();
/// db.insert(1, 10);
/// let mut reader = db.reader();
/// assert_eq!(reader.get(1), Some(10));
/// db.insert(1, 20);
/// db.snapshot(); // publish
/// assert_eq!(reader.get(1), Some(20), "auto-refreshed");
/// ```
pub struct DbReader {
    mgr: Arc<EpochManager>,
    local: DbSnapshot,
    /// Allowed lag, in epochs, behind the newest published epoch
    /// before a read re-pins.
    staleness: u64,
}

impl std::fmt::Debug for DbReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbReader")
            .field("epoch", &self.local.epoch())
            .field("staleness", &self.staleness)
            .finish()
    }
}

impl DbReader {
    pub(crate) fn new(mgr: Arc<EpochManager>, local: DbSnapshot) -> DbReader {
        DbReader {
            mgr,
            local,
            staleness: 0,
        }
    }

    /// Sets the staleness bound: reads tolerate a view up to `epochs`
    /// published epochs old before re-pinning (0 = always refresh to
    /// the newest published epoch).
    pub fn with_staleness(mut self, epochs: u64) -> DbReader {
        self.staleness = epochs;
        self
    }

    /// The configured staleness bound, in epochs.
    pub fn staleness(&self) -> u64 {
        self.staleness
    }

    /// The epoch of the currently pinned view.
    pub fn epoch(&self) -> u64 {
        self.local.epoch()
    }

    /// Unconditionally re-pins the newest published epoch.
    pub fn refresh(&mut self) {
        self.local = DbSnapshot::new(self.mgr.pin());
    }

    /// Re-pins if the local view lags more than the staleness bound.
    #[inline]
    fn maybe_refresh(&mut self) {
        let newest = self.mgr.current().seq();
        if newest > self.local.epoch().saturating_add(self.staleness) {
            self.refresh();
        }
    }

    /// Looks up `key` in the (refreshed-if-stale) pinned view.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        self.maybe_refresh();
        self.local.get(key)
    }

    /// All live entries with `lo <= key <= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.maybe_refresh();
        self.local.range(lo, hi)
    }

    /// A bidirectional cursor over `[lo, hi]` of the current view. The
    /// cursor pins its epoch independently, so it stays consistent even
    /// if the reader refreshes afterwards.
    pub fn cursor(&mut self, lo: u64, hi: u64) -> SnapshotCursor {
        self.maybe_refresh();
        self.local.cursor(lo, hi)
    }

    /// A pinned [`DbSnapshot`] of the current view, for code that wants
    /// explicit (non-refreshing) snapshot semantics.
    pub fn pin(&mut self) -> DbSnapshot {
        self.maybe_refresh();
        self.local.clone()
    }
}

/// One run restricted to the cursor's key window.
struct RunWindow {
    run: Run,
    /// First entry index inside the window.
    lo: usize,
    /// One past the last entry index inside the window.
    hi: usize,
    /// Gap position in `[lo, hi]`.
    pos: usize,
}

impl RunWindow {
    fn at(&self, i: usize) -> BatchOp {
        self.run.entries()[i]
    }
}

/// A bidirectional cursor over a pinned epoch (see
/// [`DbSnapshot::cursor`]): a k-way walk of the epoch's runs, newest
/// run winning on key ties, tombstones skipped. Owns its pin, so the
/// epoch stays alive for the cursor's lifetime; implements
/// [`CursorOps`] with the dictionary-wide gap semantics (`next` then
/// `prev` revisits the same entry).
pub struct SnapshotCursor {
    /// Newest-first, like the epoch's run stack.
    windows: Vec<RunWindow>,
    _pin: PinnedEpoch,
}

impl std::fmt::Debug for SnapshotCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotCursor")
            .field("runs", &self.windows.len())
            .finish()
    }
}

impl SnapshotCursor {
    fn new(pin: PinnedEpoch, lo: u64, hi: u64) -> SnapshotCursor {
        let windows = pin
            .runs()
            .iter()
            .map(|run| {
                let entries = run.entries();
                let start = entries.partition_point(|&(k, _)| k < lo);
                let end = if lo > hi {
                    start
                } else {
                    entries.partition_point(|&(k, _)| k <= hi)
                };
                RunWindow {
                    run: run.clone(),
                    lo: start,
                    hi: end.max(start),
                    pos: start,
                }
            })
            .collect();
        SnapshotCursor { windows, _pin: pin }
    }
}

impl CursorOps for SnapshotCursor {
    fn seek(&mut self, key: u64) {
        for w in &mut self.windows {
            let entries = w.run.entries();
            let p = entries[w.lo..w.hi].partition_point(|&(k, _)| k < key);
            w.pos = w.lo + p;
        }
    }

    fn next(&mut self) -> Option<(u64, u64)> {
        loop {
            // Smallest key just after the gap; on ties the newest run
            // (lowest index) wins.
            let mut best: Option<(u64, usize)> = None;
            for (i, w) in self.windows.iter().enumerate() {
                if w.pos < w.hi {
                    let k = w.at(w.pos).0;
                    if best.is_none_or(|(bk, _)| k < bk) {
                        best = Some((k, i));
                    }
                }
            }
            let (key, winner) = best?;
            let op = {
                let w = &self.windows[winner];
                w.at(w.pos).1
            };
            // Move the gap past `key` in every run.
            for w in &mut self.windows {
                if w.pos < w.hi && w.at(w.pos).0 == key {
                    w.pos += 1;
                }
            }
            if let Some(v) = op {
                return Some((key, v));
            }
            // Tombstone: the key is dead at this epoch; keep walking.
        }
    }

    fn prev(&mut self) -> Option<(u64, u64)> {
        loop {
            // Largest key just before the gap; ties → newest run wins.
            let mut best: Option<(u64, usize)> = None;
            for (i, w) in self.windows.iter().enumerate() {
                if w.pos > w.lo {
                    let k = w.at(w.pos - 1).0;
                    if best.is_none_or(|(bk, _)| k > bk) {
                        best = Some((k, i));
                    }
                }
            }
            let (key, winner) = best?;
            let op = {
                let w = &self.windows[winner];
                w.at(w.pos - 1).1
            };
            for w in &mut self.windows {
                if w.pos > w.lo && w.at(w.pos - 1).0 == key {
                    w.pos -= 1;
                }
            }
            if let Some(v) = op {
                return Some((key, v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DbBuilder;

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut db = DbBuilder::new().build().unwrap();
        for k in 0..100u64 {
            db.insert(k, k * 10);
        }
        let snap = db.snapshot();
        for k in 0..100u64 {
            db.insert(k, 1);
        }
        db.delete(5);
        let snap2 = db.snapshot();
        for k in 0..100u64 {
            assert_eq!(snap.get(k), Some(k * 10));
        }
        assert_eq!(snap2.get(5), None);
        assert_eq!(snap2.get(6), Some(1));
        assert!(snap2.epoch() > snap.epoch());
    }

    #[test]
    fn snapshot_cursor_merges_runs_with_gap_semantics() {
        let mut db = DbBuilder::new().build().unwrap();
        db.insert_batch(&[(10, 1), (20, 2), (30, 3), (40, 4)]);
        let _e1 = db.snapshot(); // base epoch
        db.insert(20, 22); // shadowed in a newer run
        db.delete(30); // tombstone in a newer run
        db.insert(35, 5);
        let snap = db.snapshot();
        assert_eq!(
            snap.range(0, u64::MAX),
            vec![(10, 1), (20, 22), (35, 5), (40, 4)]
        );
        let mut cur = snap.cursor(15, 40);
        assert_eq!(cur.next(), Some((20, 22)));
        assert_eq!(cur.prev(), Some((20, 22)), "next then prev revisits");
        assert_eq!(cur.prev(), None);
        cur.seek(30);
        assert_eq!(cur.next(), Some((35, 5)), "tombstoned 30 is skipped");
        assert_eq!(cur.next(), Some((40, 4)));
        assert_eq!(cur.next(), None);
        assert_eq!(cur.prev(), Some((40, 4)));
    }

    #[test]
    fn compaction_bounds_run_count_and_preserves_contents() {
        let mut db = DbBuilder::new().build().unwrap();
        let mut last = None;
        for round in 0..40u64 {
            db.insert(round, round);
            db.delete(round / 2 + 1000); // tombstones for absent keys too
            last = Some(db.snapshot());
        }
        let snap = last.unwrap();
        assert!(
            snap.run_count() <= MAX_SNAPSHOT_RUNS + 1,
            "compaction keeps the stack bounded (got {})",
            snap.run_count()
        );
        let expect: Vec<(u64, u64)> = (0..40).map(|k| (k, k)).collect();
        assert_eq!(snap.range(0, 999), expect);
    }

    #[test]
    fn dict_mut_invalidates_and_reseeds() {
        let mut db = DbBuilder::new().build().unwrap();
        db.insert(1, 10);
        let s1 = db.snapshot();
        // Raw access the mirror cannot see.
        db.dict_mut().insert(2, 20);
        let s2 = db.snapshot();
        assert_eq!(s1.get(2), None);
        assert_eq!(s2.get(2), Some(20), "reseed picked up the raw write");
        assert_eq!(s2.get(1), Some(10));
    }

    #[test]
    fn reader_auto_refreshes_on_publish() {
        let mut db = DbBuilder::new().build().unwrap();
        db.insert(1, 10);
        let mut r = db.reader();
        assert_eq!(r.get(1), Some(10));
        let e0 = r.epoch();
        // Unpublished writes stay invisible.
        db.insert(1, 20);
        assert_eq!(r.get(1), Some(10), "publication bounds freshness");
        db.snapshot();
        assert_eq!(r.get(1), Some(20), "refreshes past published epochs");
        assert!(r.epoch() > e0);
    }

    #[test]
    fn reader_staleness_bound_tolerates_lag() {
        let mut db = DbBuilder::new().build().unwrap();
        db.insert(1, 10);
        let mut lazy = db.reader().with_staleness(u64::MAX);
        let mut eager = db.reader();
        assert_eq!(lazy.staleness(), u64::MAX);
        db.insert(1, 30);
        db.snapshot();
        assert_eq!(lazy.get(1), Some(10), "within staleness budget: no re-pin");
        assert_eq!(eager.get(1), Some(30));
        lazy.refresh();
        assert_eq!(lazy.get(1), Some(30), "explicit refresh still works");
    }

    #[test]
    fn reader_is_send_and_cursor_outlives_refresh() {
        fn assert_send<T: Send>() {}
        assert_send::<DbReader>();
        let mut db = DbBuilder::new().build().unwrap();
        db.insert_batch(&[(1, 1), (2, 2), (3, 3)]);
        let mut r = db.reader();
        let mut cur = r.cursor(0, u64::MAX);
        db.delete(2);
        db.snapshot();
        assert_eq!(r.get(2), None, "reader sees the delete");
        // The cursor pinned the older epoch and is unaffected.
        assert_eq!(cur.next(), Some((1, 1)));
        assert_eq!(cur.next(), Some((2, 2)));
        assert_eq!(cur.next(), Some((3, 3)));
    }

    #[test]
    fn empty_db_snapshot_works() {
        let mut db = DbBuilder::new().build().unwrap();
        let snap = db.snapshot();
        assert_eq!(snap.get(7), None);
        assert_eq!(snap.range(0, u64::MAX), Vec::new());
        assert_eq!(snap.cursor(0, u64::MAX).next(), None);
    }
}
