//! Range-partitioned sharding: one coherent dictionary view over `S`
//! independent structure instances, with optional parallel batch ingest.
//!
//! The paper's structures win by turning point updates into batched,
//! cache-friendly merges; this layer scales that across cores. The
//! keyspace is split at `S − 1` *splitters* into contiguous ranges, each
//! owned by one shard — any structure over any backend, built by
//! [`crate::DbBuilder`] with [`crate::DbBuilder::shards`]. Batches are
//! split into per-shard sub-batches (arrival order preserved per key,
//! since every operation on a key lands in the same shard) and applied on
//! a scoped pool of worker threads when
//! [`crate::DbBuilder::parallel_ingest`] is on; each shard then runs its
//! own single-threaded merge machinery unchanged. Reads route point
//! lookups to the owning shard and splice range scans back together with
//! the k-way [`MergeCursor`], so the [`Dictionary`] trait is exposed
//! unchanged.
//!
//! Range partitioning (rather than hashing) keeps each shard a contiguous
//! key interval: scans touch only the shards overlapping the query window
//! and the cross-shard merge never interleaves more than one live source
//! at a time. The trade-off — skewed key distributions load shards
//! unevenly — is what custom splitters are for.

use cosbt_core::{Cursor, Dictionary, MergeCursor, Persist, UpdateBatch};

/// The trait bundle a shard must satisfy: the dictionary operations, the
/// persistence boundary (so a file-backed shard can serialize its control
/// state into its store's metadata commit), and `Send + Sync` (so
/// sub-batches can be applied on worker threads, and a `&Db` — e.g. an
/// I/O probe racing a writer — can be shared across threads). Every
/// structure in the workspace is `Sync`: shared mutable state lives
/// behind `Arc<Mutex<…>>` in the file backends and plain owned memory
/// elsewhere. Blanket-implemented; user code never implements it
/// directly.
pub trait ShardDict: Dictionary + Persist + Send + Sync {}

impl<T: Dictionary + Persist + Send + Sync> ShardDict for T {}

/// A dictionary shard: any structure over any backend.
pub type Shard = Box<dyn ShardDict>;

/// Below this many operations a batch is applied sequentially even with
/// parallel ingest on: scoped worker threads are spawned per batch, and
/// for small batches the spawn/join overhead (tens of microseconds)
/// exceeds the per-shard merge work it would hide.
pub const PARALLEL_MIN_OPS: usize = 1024;

/// Splits the `u64` keyspace evenly into `n` contiguous ranges, returning
/// the `n − 1` boundaries (shard `i` owns keys in
/// `[splitters[i-1], splitters[i])`).
pub fn even_splitters(n: usize) -> Vec<u64> {
    assert!(n >= 1, "shard count must be at least 1");
    let width = (u64::MAX as u128 + 1) / n as u128;
    (1..n).map(|i| (i as u128 * width) as u64).collect()
}

/// Range-partitions the keyspace across independent [`Dictionary`]
/// instances and exposes the same trait over the whole set.
///
/// Built by [`crate::DbBuilder::shards`]; constructible directly for code
/// that wants to mix structures per shard (each shard is just a boxed
/// [`Dictionary`]):
///
/// ```
/// use cosbt::shard::ShardRouter;
/// use cosbt::{cola::GCola, btree::BTree, Dictionary};
///
/// // A hot low-key shard on a B-tree, everything else on a 4-COLA.
/// let mut db = ShardRouter::new(
///     vec![Box::new(BTree::new_plain()), Box::new(GCola::new_plain(4))],
///     vec![1 << 32],
///     false,
/// );
/// db.insert(7, 70); // routed to the B-tree shard
/// db.insert(u64::MAX, 1); // routed to the COLA shard
/// assert_eq!(db.range(0, u64::MAX), vec![(7, 70), (u64::MAX, 1)]);
/// ```
pub struct ShardRouter {
    shards: Vec<Shard>,
    /// `shards.len() - 1` strictly increasing boundaries; shard `i` owns
    /// `[splitters[i-1], splitters[i])` (unbounded at the two ends).
    splitters: Vec<u64>,
    parallel: bool,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards.len())
            .field("splitters", &self.splitters)
            .field("parallel", &self.parallel)
            .finish()
    }
}

impl ShardRouter {
    /// A router over `shards` split at `splitters` (strictly increasing,
    /// one fewer than the shard count). `parallel` applies per-shard
    /// sub-batches on a scoped thread pool; point operations are always
    /// routed directly.
    ///
    /// # Panics
    ///
    /// If `shards` is empty or `splitters` is not a strictly increasing
    /// list of length `shards.len() - 1`. ([`crate::DbBuilder`] validates
    /// the same conditions and returns an error instead.)
    pub fn new(shards: Vec<Shard>, splitters: Vec<u64>, parallel: bool) -> ShardRouter {
        assert!(!shards.is_empty(), "need at least one shard");
        assert_eq!(
            splitters.len(),
            shards.len() - 1,
            "need exactly one splitter between adjacent shards"
        );
        assert!(
            splitters.windows(2).all(|w| w[0] < w[1]),
            "splitters must be strictly increasing"
        );
        ShardRouter {
            shards,
            splitters,
            parallel,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Mutable access to the shards in routing order, for per-shard
    /// maintenance the router cannot express itself — [`crate::Db::sync`]
    /// pairs each shard's [`Persist::save_meta`] with its own backing
    /// store's metadata commit.
    pub fn shards_mut(&mut self) -> &mut [Shard] {
        &mut self.shards
    }

    /// The shard boundaries.
    pub fn splitters(&self) -> &[u64] {
        &self.splitters
    }

    /// Whether batches are applied on worker threads.
    pub fn parallel(&self) -> bool {
        self.parallel
    }

    /// Index of the shard owning `key`.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        self.splitters.partition_point(|&s| s <= key)
    }

    /// Runs `(shard, payload)` jobs, on a scoped pool of at most
    /// `available_parallelism` worker threads when parallel ingest is on
    /// and more than one shard has work.
    fn run_jobs<J: Send>(
        parallel: bool,
        jobs: Vec<(&mut Shard, J)>,
        run: impl Fn(&mut Shard, J) + Send + Sync + Copy,
    ) {
        if !parallel || jobs.len() <= 1 {
            for (shard, payload) in jobs {
                run(shard, payload);
            }
            return;
        }
        let workers = std::thread::available_parallelism()
            .map_or(1, |n| n.get())
            .min(jobs.len());
        let mut groups: Vec<Vec<(&mut Shard, J)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            groups[i % workers].push(job);
        }
        std::thread::scope(|scope| {
            for group in groups {
                scope.spawn(move || {
                    for (shard, payload) in group {
                        run(shard, payload);
                    }
                });
            }
        });
    }
}

impl Dictionary for ShardRouter {
    fn insert(&mut self, key: u64, val: u64) {
        let s = self.shard_of(key);
        self.shards[s].insert(key, val)
    }

    fn delete(&mut self, key: u64) {
        let s = self.shard_of(key);
        self.shards[s].delete(key)
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        let s = self.shard_of(key);
        self.shards[s].get(key)
    }

    fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
        if lo > hi {
            return Cursor::new(MergeCursor::<Cursor<'_>>::new(Vec::new()));
        }
        // Only the shards whose range intersects [lo, hi] contribute;
        // snapshot-style shard cursors (BRT, shuttle) then materialize
        // only the overlapping partitions.
        let (first, last) = (self.shard_of(lo), self.shard_of(hi));
        let subs: Vec<Cursor<'_>> = self.shards[first..=last]
            .iter_mut()
            .map(|s| s.cursor(lo, hi))
            .collect();
        Cursor::new(MergeCursor::new(subs))
    }

    fn apply(&mut self, batch: &mut UpdateBatch) {
        if self.shards.len() == 1 {
            return self.shards[0].apply(batch);
        }
        // Split in arrival order: all operations on one key go to one
        // shard in their original relative order, so per-key last-wins
        // semantics are preserved exactly.
        let mut subs: Vec<UpdateBatch> = self
            .shards
            .iter()
            .map(|_| UpdateBatch::with_capacity(batch.len() / self.shards.len() + 1))
            .collect();
        for &(key, op) in batch.ops() {
            let s = self.shard_of(key);
            match op {
                Some(val) => subs[s].put(key, val),
                None => subs[s].delete(key),
            };
        }
        let parallel = self.parallel && batch.len() >= PARALLEL_MIN_OPS;
        batch.clear();
        let jobs: Vec<(&mut Shard, UpdateBatch)> = self
            .shards
            .iter_mut()
            .zip(subs)
            .filter(|(_, sub)| !sub.is_empty())
            .collect();
        Self::run_jobs(parallel, jobs, |shard, mut sub| shard.apply(&mut sub));
    }

    fn insert_batch(&mut self, sorted: &[(u64, u64)]) {
        if self.shards.len() == 1 {
            return self.shards[0].insert_batch(sorted);
        }
        // The run is sorted, so each shard's share is one contiguous
        // sub-slice, found by binary search at each splitter.
        let mut pieces: Vec<&[(u64, u64)]> = Vec::with_capacity(self.shards.len());
        let mut rest = sorted;
        for &sp in &self.splitters {
            let cut = rest.partition_point(|&(k, _)| k < sp);
            let (head, tail) = rest.split_at(cut);
            pieces.push(head);
            rest = tail;
        }
        pieces.push(rest);
        let parallel = self.parallel && sorted.len() >= PARALLEL_MIN_OPS;
        let jobs: Vec<(&mut Shard, &[(u64, u64)])> = self
            .shards
            .iter_mut()
            .zip(pieces)
            .filter(|(_, piece)| !piece.is_empty())
            .collect();
        Self::run_jobs(parallel, jobs, |shard, piece| shard.insert_batch(piece));
    }

    fn physical_len(&self) -> usize {
        self.shards.iter().map(|s| s.physical_len()).sum()
    }

    fn name(&self) -> &'static str {
        "sharded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosbt_core::{BasicCola, GCola};

    fn router(n: usize, parallel: bool) -> ShardRouter {
        let shards: Vec<Shard> = (0..n)
            .map(|_| Box::new(GCola::new_plain(4)) as Shard)
            .collect();
        ShardRouter::new(shards, even_splitters(n), parallel)
    }

    #[test]
    fn even_splitters_partition_the_keyspace() {
        assert_eq!(even_splitters(1), vec![]);
        assert_eq!(even_splitters(2), vec![1 << 63]);
        assert_eq!(even_splitters(4), vec![1 << 62, 1 << 63, 3 << 62]);
        let r = router(4, false);
        assert_eq!(r.shard_of(0), 0);
        assert_eq!(r.shard_of((1 << 62) - 1), 0);
        assert_eq!(r.shard_of(1 << 62), 1);
        assert_eq!(r.shard_of(u64::MAX), 3);
    }

    #[test]
    fn routes_point_ops_and_scans_across_shards() {
        let mut r = router(4, false);
        // One key per quadrant plus boundary keys.
        let keys = [0u64, 1 << 62, (1 << 63) | 5, u64::MAX, (1 << 62) - 1];
        for (i, &k) in keys.iter().enumerate() {
            r.insert(k, i as u64);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(r.get(k), Some(i as u64));
        }
        let mut sorted: Vec<(u64, u64)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u64))
            .collect();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(r.range(0, u64::MAX), sorted);
        r.delete(1 << 62);
        assert_eq!(r.get(1 << 62), None);
        assert_eq!(r.range(0, u64::MAX).len(), 4);
    }

    #[test]
    fn batches_split_and_preserve_per_key_order() {
        for parallel in [false, true] {
            let mut r = router(4, parallel);
            let mut batch = UpdateBatch::new();
            let k_hi = (1 << 63) + 7;
            batch
                .put(5, 1)
                .put(k_hi, 2)
                .delete(5)
                .put(5, 3)
                .put(k_hi, 4);
            r.apply(&mut batch);
            assert!(batch.is_empty());
            assert_eq!(r.get(5), Some(3), "parallel={parallel}");
            assert_eq!(r.get(k_hi), Some(4), "parallel={parallel}");
        }
    }

    #[test]
    fn sorted_runs_split_at_splitter_boundaries() {
        for parallel in [false, true] {
            let mut r = router(4, parallel);
            let run: Vec<(u64, u64)> = (0..64u64).map(|i| (i << 58, i)).collect();
            r.insert_batch(&run);
            assert_eq!(r.range(0, u64::MAX), run, "parallel={parallel}");
            assert_eq!(r.physical_len(), 64);
        }
    }

    #[test]
    fn large_batches_take_the_threaded_path() {
        // Above PARALLEL_MIN_OPS the scoped workers actually spawn; the
        // result must be indistinguishable from the sequential path.
        let mut par = router(4, true);
        let mut seq = router(4, false);
        let mut batch_par = UpdateBatch::new();
        let mut batch_seq = UpdateBatch::new();
        for i in 0..2 * PARALLEL_MIN_OPS as u64 {
            let k = i.wrapping_mul(0x9E3779B97F4A7C15);
            batch_par.put(k, i);
            batch_seq.put(k, i);
        }
        par.apply(&mut batch_par);
        seq.apply(&mut batch_seq);
        assert_eq!(par.range(0, u64::MAX), seq.range(0, u64::MAX));

        let mut run: Vec<(u64, u64)> = (0..2 * PARALLEL_MIN_OPS as u64)
            .map(|i| (i.wrapping_mul(0x2545F4914F6CDD1D), i))
            .collect();
        run.sort_unstable_by_key(|&(k, _)| k);
        par.insert_batch(&run);
        seq.insert_batch(&run);
        assert_eq!(par.range(0, u64::MAX), seq.range(0, u64::MAX));
    }

    #[test]
    fn mixed_structures_per_shard() {
        let shards: Vec<Shard> = vec![
            Box::new(BasicCola::new_plain()),
            Box::new(GCola::new_plain(2)),
        ];
        let mut r = ShardRouter::new(shards, vec![100], false);
        r.insert_batch(&[(1, 10), (99, 20), (100, 30), (5000, 40)]);
        assert_eq!(
            r.range(0, u64::MAX),
            vec![(1, 10), (99, 20), (100, 30), (5000, 40)]
        );
        let mut c = r.cursor(50, 200);
        assert_eq!(c.next(), Some((99, 20)));
        assert_eq!(c.next(), Some((100, 30)), "crosses the shard boundary");
        assert_eq!(c.prev(), Some((100, 30)));
        assert_eq!(c.prev(), Some((99, 20)), "and back across it");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_splitters_panic() {
        let shards: Vec<Shard> = (0..3)
            .map(|_| Box::new(GCola::new_plain(4)) as Shard)
            .collect();
        ShardRouter::new(shards, vec![10, 10], false);
    }
}
