//! `cosbt-check`: the repo's hand-rolled lint pass.
//!
//! Four rules, all substring/line-based (no syn, no regex — the rules
//! are deliberately simple enough to audit by eye):
//!
//! 1. **no-std-sync** — the shimmed crates (`src/`, `crates/core`,
//!    `crates/dam`) must not use `std::sync` locks or atomics directly;
//!    they go through `cosbt_testkit::sync` so the model checker can
//!    intercept them. `Arc` is exempt (the shim re-exports the std type
//!    unchanged in both configurations).
//! 2. **ordering-comment** — every atomic `Ordering::{Relaxed, Acquire,
//!    Release, AcqRel, SeqCst}` use in library code must carry a
//!    `// ordering:` justification on the same line or within the
//!    preceding 12 lines.
//! 3. **no-unwrap** — no `.unwrap()` / `.expect()` in non-test library
//!    code outside the ratcheted allowlist.
//! 4. **no-swallowed-result** — no `.ok();` statements (a discarded
//!    `Result` should be `let _ = ...;` with a comment, or handled).
//!
//! `#[cfg(test)]` modules are excluded by brace tracking, and the
//! testkit's `model.rs`/`sync.rs` are exempt from rules 1–2 (they *are*
//! the shim). Existing findings live in `tools/check-allowlist.txt` as
//! `(rule, file) -> count` entries: the count may only shrink
//! (ratchet). Run with `--update-allowlist` after removing findings to
//! tighten the file; adding findings always fails the build.
//!
//! The checker scans itself; its own pattern literals are assembled
//! with `concat!` so they do not self-flag.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Repo-relative path of the ratchet file.
const ALLOWLIST_PATH: &str = "tools/check-allowlist.txt";

/// Files that implement the sync shim / model checker: exempt from the
/// std-sync and ordering rules (they are the layer those rules police).
const SHIM_FILES: &[&str] = &["crates/testkit/src/model.rs", "crates/testkit/src/sync.rs"];

/// Directory prefixes whose crates are migrated onto the sync shim
/// (rule 1 applies only here).
const SHIMMED_PREFIXES: &[&str] = &["src/", "crates/core/src/", "crates/dam/src/"];

/// How many lines above an `Ordering::` use a `// ordering:` comment
/// may sit and still count as covering it.
const ORDERING_COMMENT_WINDOW: usize = 12;

// Pattern literals, split so this file does not flag itself.
fn pat_std_sync() -> &'static str {
    concat!("std::", "sync")
}
fn pat_ordering() -> &'static str {
    concat!("Ordering", "::")
}
fn pat_ordering_comment() -> &'static str {
    concat!("// ", "ordering:")
}
fn pat_unwrap() -> &'static str {
    concat!(".unw", "rap(")
}
fn pat_expect() -> &'static str {
    concat!(".exp", "ect(")
}
fn pat_ok_discard() -> &'static str {
    concat!(".ok(", ");")
}
fn pat_cfg_test() -> &'static str {
    concat!("#[cfg(", "test)]")
}

/// `std::sync` items rule 1 forbids (substring match on the same line
/// as the `std::sync` path). `Once` also covers `OnceLock`.
const SYNC_FORBIDDEN: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "atomic", "Barrier", "Once", "mpsc",
];

/// Atomic ordering variants (to distinguish from `std::cmp::Ordering`).
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Finding {
    rule: &'static str,
    /// Repo-relative path, forward slashes.
    file: String,
    /// 1-based.
    line: usize,
    msg: String,
}

/// Strips `//` line comments (string-literal-naive, which is fine for
/// this codebase: the rules target code tokens that do not appear in
/// our string literals).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Net brace depth change of a line, ignoring comment text.
fn brace_delta(line: &str) -> i64 {
    let code = strip_comment(line);
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Marks each line of the file as test code (inside a `#[cfg(test)]`
/// module) or not, by brace tracking from the attribute.
fn test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending_cfg = false;
    // Depth at which the currently-skipped test mod's body started.
    let mut skip_until: Option<i64> = None;
    for (i, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        if let Some(base) = skip_until {
            mask[i] = true;
            depth += brace_delta(raw);
            if depth <= base {
                skip_until = None;
            }
            continue;
        }
        if trimmed.starts_with(pat_cfg_test()) {
            pending_cfg = true;
            depth += brace_delta(raw);
            continue;
        }
        if pending_cfg {
            if trimmed.starts_with("#[") {
                // Another attribute between cfg(test) and the item.
                depth += brace_delta(raw);
                continue;
            }
            pending_cfg = false;
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                mask[i] = true;
                let before = depth;
                depth += brace_delta(raw);
                if depth > before {
                    skip_until = Some(before);
                }
                continue;
            }
            // cfg(test) on a non-mod item: treat just that line as test
            // code (this repo keeps multi-line test items inside test
            // modules).
            mask[i] = true;
        }
        depth += brace_delta(raw);
    }
    mask
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Whether `code` contains an *atomic* `Ordering::Variant` use.
fn has_atomic_ordering(code: &str) -> bool {
    let pat = pat_ordering();
    let mut rest = code;
    while let Some(i) = rest.find(pat) {
        let after = &rest[i + pat.len()..];
        if ATOMIC_ORDERINGS
            .iter()
            .any(|v| after.starts_with(v) && !after[v.len()..].starts_with(is_ident_char))
        {
            return true;
        }
        rest = after;
    }
    false
}

/// Runs all rules over one file's contents, appending to `findings`.
fn scan_file(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let lines: Vec<&str> = text.lines().collect();
    let mask = test_mask(&lines);
    let shim = SHIM_FILES.contains(&rel);
    let shimmed_crate = SHIMMED_PREFIXES.iter().any(|p| rel.starts_with(p));

    for (i, raw) in lines.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let code = strip_comment(raw);
        let lineno = i + 1;

        if shimmed_crate && code.contains(pat_std_sync()) {
            let forbidden: Vec<&str> = SYNC_FORBIDDEN
                .iter()
                .copied()
                .filter(|t| code.contains(t))
                .collect();
            if !forbidden.is_empty() {
                findings.push(Finding {
                    rule: "no-std-sync",
                    file: rel.to_string(),
                    line: lineno,
                    msg: format!(
                        "direct {} {} in a shimmed crate; use cosbt_testkit::sync",
                        pat_std_sync(),
                        forbidden.join("/")
                    ),
                });
            }
        }

        if !shim && has_atomic_ordering(code) {
            let lo = i.saturating_sub(ORDERING_COMMENT_WINDOW);
            let covered = lines[lo..=i]
                .iter()
                .any(|l| l.contains(pat_ordering_comment()));
            if !covered {
                findings.push(Finding {
                    rule: "ordering-comment",
                    file: rel.to_string(),
                    line: lineno,
                    msg: format!(
                        "atomic ordering without a nearby `{}` justification",
                        pat_ordering_comment()
                    ),
                });
            }
        }

        if code.contains(pat_unwrap()) || code.contains(pat_expect()) {
            findings.push(Finding {
                rule: "no-unwrap",
                file: rel.to_string(),
                line: lineno,
                msg: "unwrap()/expect() in non-test library code".to_string(),
            });
        }
        if let Some(at) = code.find(pat_ok_discard()) {
            // `let y = r.ok();` binds the value; only a bare statement
            // (no `=`/`return` before the call) discards it.
            let before = &code[..at];
            if !before.contains('=') && !before.contains("return") {
                findings.push(Finding {
                    rule: "no-swallowed-result",
                    file: rel.to_string(),
                    line: lineno,
                    msg: format!(
                        "Result discarded via {} — use `let _ = ...` with a reason",
                        pat_ok_discard()
                    ),
                });
            }
        }
    }
}

/// Collects the `.rs` files the lint covers: every crate's `src/` tree
/// (integration-test and bench directories are out of scope — the
/// rules target library code).
fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut dirs = vec![root.join("src")];
    let crates = root.join("crates");
    let entries =
        fs::read_dir(&crates).map_err(|e| format!("read_dir {}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", crates.display()))?;
        let src = entry.path().join("src");
        if src.is_dir() {
            dirs.push(src);
        }
    }
    let mut files = Vec::new();
    while let Some(dir) = dirs.pop() {
        let entries = fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let path = entry.path();
            if path.is_dir() {
                dirs.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Locates the workspace root: walks up from `CARGO_MANIFEST_DIR` (or
/// the cwd) to the first directory containing both `Cargo.toml` and
/// `crates/`.
fn find_root() -> Result<PathBuf, String> {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .ok_or("cannot determine a starting directory")?;
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return Err(format!("no workspace root above {}", start.display())),
        }
    }
}

type Counts = BTreeMap<(String, String), usize>;

fn count_findings(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.file.clone()))
            .or_insert(0) += 1;
    }
    counts
}

fn parse_allowlist(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(count), Some(file), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "{ALLOWLIST_PATH}:{}: expected `rule count file`, got {line:?}",
                i + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|e| format!("{ALLOWLIST_PATH}:{}: bad count: {e}", i + 1))?;
        counts.insert((rule.to_string(), file.to_string()), count);
    }
    Ok(counts)
}

fn render_allowlist(counts: &Counts) -> String {
    let mut out = String::from(
        "# cosbt-check ratchet: existing findings, as `rule count file`.\n\
         # Counts may only shrink. After removing findings, run\n\
         # `cargo run -p cosbt-check -- --update-allowlist` to tighten.\n",
    );
    for ((rule, file), count) in counts {
        let _ = writeln!(out, "{rule} {count} {file}");
    }
    out
}

fn run() -> Result<bool, String> {
    let mut update = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update-allowlist" => update = true,
            "--help" | "-h" => {
                println!(
                    "cosbt-check: repo lint pass (see crates/check/src/main.rs)\n\n  \
                     --update-allowlist  rewrite {ALLOWLIST_PATH} from current findings"
                );
                return Ok(true);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }

    let root = find_root()?;
    let mut findings = Vec::new();
    for path in collect_files(&root)? {
        let rel = rel_path(&root, &path);
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        scan_file(&rel, &text, &mut findings);
    }
    findings.sort();
    let counts = count_findings(&findings);

    let allow_path = root.join(ALLOWLIST_PATH);
    if update {
        if let Some(parent) = allow_path.parent() {
            fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
        }
        fs::write(&allow_path, render_allowlist(&counts))
            .map_err(|e| format!("write {}: {e}", allow_path.display()))?;
        println!(
            "cosbt-check: wrote {} entries to {ALLOWLIST_PATH}",
            counts.len()
        );
        return Ok(true);
    }

    let allowed = match fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Counts::new(),
        Err(e) => return Err(format!("read {}: {e}", allow_path.display())),
    };

    let mut ok = true;
    for (key, &found) in &counts {
        let budget = allowed.get(key).copied().unwrap_or(0);
        let (rule, file) = key;
        if found > budget {
            ok = false;
            eprintln!(
                "cosbt-check: {rule}: {file}: {found} finding(s), allowlist permits {budget}:"
            );
            for f in findings
                .iter()
                .filter(|f| f.rule == rule && &f.file == file)
            {
                eprintln!("  {}:{}: {}", f.file, f.line, f.msg);
            }
        } else if found < budget {
            ok = false;
            eprintln!(
                "cosbt-check: {rule}: {file}: allowlist permits {budget} but only {found} \
                 remain — ratchet down with --update-allowlist"
            );
        }
    }
    for (key, &budget) in &allowed {
        if !counts.contains_key(key) {
            ok = false;
            let (rule, file) = key;
            eprintln!(
                "cosbt-check: {rule}: {file}: allowlist permits {budget} but none remain — \
                 ratchet down with --update-allowlist"
            );
        }
    }
    if ok {
        let total: usize = counts.values().sum();
        println!(
            "cosbt-check: clean ({} allowlisted finding(s) across {} entries)",
            total,
            counts.len()
        );
    }
    Ok(ok)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("cosbt-check: error: {msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(rel: &str, text: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        scan_file(rel, text, &mut out);
        out
    }

    #[test]
    fn std_sync_locks_flagged_only_in_shimmed_crates() {
        let src = "use std::sync::{Arc, Mutex};\n";
        let hits = scan_str("crates/core/src/x.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "no-std-sync");
        assert!(scan_str("crates/pma/src/x.rs", src).is_empty());
        // Arc alone is exempt (shared alias in both cfgs).
        assert!(scan_str("crates/core/src/x.rs", "use std::sync::Arc;\n").is_empty());
    }

    #[test]
    fn shim_files_are_exempt_from_ordering_rule() {
        let src = "let x = a.load(Ordering::Relaxed);\n";
        assert!(scan_str("crates/testkit/src/model.rs", src).is_empty());
        assert!(scan_str("crates/testkit/src/sync.rs", src).is_empty());
        assert_eq!(scan_str("crates/testkit/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn ordering_requires_nearby_comment() {
        let bad = "a.store(1, Ordering::Release);\n";
        let hits = scan_str("crates/dam/src/x.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "ordering-comment");
        let good = "// ordering: Release publishes the init above.\n\
                    a.store(1, Ordering::Release);\n";
        assert!(scan_str("crates/dam/src/x.rs", good).is_empty());
        let same_line = "a.store(1, Ordering::Release); // ordering: fine\n";
        assert!(scan_str("crates/dam/src/x.rs", same_line).is_empty());
    }

    #[test]
    fn comment_window_is_bounded() {
        let mut far = String::from("// ordering: too far away\n");
        for _ in 0..ORDERING_COMMENT_WINDOW {
            far.push_str("let pad = 0;\n");
        }
        far.push_str("a.store(1, Ordering::Release);\n");
        assert_eq!(scan_str("crates/dam/src/x.rs", &far).len(), 1);
    }

    #[test]
    fn cmp_ordering_is_not_flagged() {
        let src = "match x.cmp(&y) { Ordering::Less => 1, _ => 0 };\n\
                   let o = Ordering::Equal;\n";
        assert!(scan_str("crates/dam/src/x.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_modules_are_excluded() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   use std::sync::Mutex;\n\
                   fn t() { x.unwrap(); a.load(Ordering::Relaxed); }\n\
                   }\n\
                   fn after() { y.unwrap(); }\n";
        let hits = scan_str("crates/core/src/x.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].rule, "no-unwrap");
        assert_eq!(hits[0].line, 7, "only the post-module unwrap");
    }

    #[test]
    fn unwrap_and_ok_discard_flagged_but_not_variants() {
        let src = "v.unwrap();\nv.expect(\"x\");\nfile.sync_all().ok();\n";
        let hits = scan_str("crates/pma/src/x.rs", src);
        let rules: Vec<&str> = hits.iter().map(|f| f.rule).collect();
        assert_eq!(
            rules,
            ["no-unwrap", "no-unwrap", "no-swallowed-result"],
            "{hits:?}"
        );
        let fine = "v.unwrap_or(0);\nv.unwrap_or_else(|| 1);\nlet y = r.ok();\n";
        assert!(scan_str("crates/pma/src/x.rs", fine).is_empty());
    }

    #[test]
    fn comments_do_not_trigger_rules() {
        let src = "// mentions .unwrap() and Ordering::Relaxed in prose\n\
                   /// doc: std::sync::Mutex is forbidden here\n";
        assert!(scan_str("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allowlist_roundtrip() {
        let mut counts = Counts::new();
        counts.insert(("no-unwrap".into(), "src/db.rs".into()), 3);
        counts.insert(("no-std-sync".into(), "crates/dam/src/dev.rs".into()), 2);
        let text = render_allowlist(&counts);
        let parsed = parse_allowlist(&text).expect("roundtrip parses");
        assert_eq!(parsed, counts);
        assert!(parse_allowlist("garbage line here extra").is_err());
        assert!(parse_allowlist("# comment\n\n")
            .expect("comments ok")
            .is_empty());
    }
}
