//! Out-of-core storage: real file I/O behind a bounded user-space page
//! cache.
//!
//! The paper's experiments memory-map a 32 GiB file on a RAID array and let
//! the OS page cache play the role of internal memory. Offline we cannot
//! rely on (or even observe) the OS page cache, so this module makes
//! internal memory explicit: a [`FilePages`] store keeps at most
//! `cache_pages` page frames in RAM under LRU replacement and performs
//! `read_at`/`write_at` on miss/eviction. Setting the cache budget well
//! below the data size reproduces the out-of-core regime of Figures 2–4.

use std::fs::{File, OpenOptions};
use std::io::Write;
#[cfg(not(unix))]
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use crate::lru::{Access, LruCache};
use crate::mem::Mem;
use crate::page::PageStore;
use crate::pod::Pod;
use crate::stats::IoStats;

#[cfg(unix)]
use std::os::unix::fs::FileExt;

/// File-backed pages with a bounded user-space LRU cache of frames.
pub struct FilePages {
    file: File,
    page_size: usize,
    num_pages: u32,
    cache: LruCache,
    frames: std::collections::HashMap<u64, Box<[u8]>>,
    dirty: std::collections::HashSet<u64>,
    stats: IoStats,
    /// Recent sequential stream positions, for seek accounting. A device
    /// access adjacent (within a small readahead window) to any tracked
    /// stream is sequential; anything else is a seek and starts a new
    /// stream. This models a disk with per-stream readahead — the paper
    /// notes its RAID's "sequential prefetching … significantly helps
    /// COLAs" — so a k-way merge reads as k concurrent sequential streams,
    /// not k·len seeks.
    streams: Vec<u64>,
}

/// Number of concurrent sequential streams the modeled device tracks.
const MAX_STREAMS: usize = 16;
/// Readahead slack: an access within this many pages ahead of a stream
/// still counts as sequential.
const READAHEAD: u64 = 2;

impl std::fmt::Debug for FilePages {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilePages")
            .field("page_size", &self.page_size)
            .field("num_pages", &self.num_pages)
            .field("cached", &self.frames.len())
            .finish()
    }
}

impl FilePages {
    /// Creates (truncating) a page store at `path` with room for
    /// `cache_pages` resident frames.
    pub fn create(path: &Path, page_size: usize, cache_pages: usize) -> std::io::Result<Self> {
        assert!(page_size > 0);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FilePages {
            file,
            page_size,
            num_pages: 0,
            cache: LruCache::new(cache_pages.max(1)),
            frames: std::collections::HashMap::new(),
            dirty: std::collections::HashSet::new(),
            stats: IoStats::default(),
            streams: Vec::new(),
        })
    }

    /// Real-I/O counters (fetches = `read_at` calls, writebacks =
    /// `write_at` calls).
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Returns the counters accumulated so far and resets them: one call
    /// closes a measurement phase and opens the next (cache residency is
    /// untouched, so a warm cache stays warm across phases).
    pub fn take_stats(&mut self) -> IoStats {
        std::mem::take(&mut self.stats)
    }

    fn note_device_access(&mut self, id: u64) {
        if let Some(i) = self
            .streams
            .iter()
            .position(|&p| id >= p && id <= p + READAHEAD)
        {
            let _ = self.streams.remove(i);
            self.streams.insert(0, id);
            return;
        }
        self.stats.seeks += 1;
        self.streams.insert(0, id);
        self.streams.truncate(MAX_STREAMS);
    }

    fn read_page_from_file(&mut self, id: u64, buf: &mut [u8]) {
        let off = id * self.page_size as u64;
        self.stats.fetches += 1;
        self.note_device_access(id);
        #[cfg(unix)]
        {
            // The page may extend past EOF if it was allocated but never
            // written; treat missing bytes as zero.
            let mut done = 0usize;
            while done < buf.len() {
                match self.file.read_at(&mut buf[done..], off + done as u64) {
                    Ok(0) => {
                        buf[done..].fill(0);
                        break;
                    }
                    Ok(n) => done += n,
                    Err(e) => panic!("read_at failed: {e}"),
                }
            }
        }
        #[cfg(not(unix))]
        {
            self.file.seek(SeekFrom::Start(off)).unwrap();
            let mut done = 0usize;
            while done < buf.len() {
                match self.file.read(&mut buf[done..]) {
                    Ok(0) => {
                        buf[done..].fill(0);
                        break;
                    }
                    Ok(n) => done += n,
                    Err(e) => panic!("read failed: {e}"),
                }
            }
        }
    }

    fn write_page_to_file(&mut self, id: u64, buf: &[u8]) {
        let off = id * self.page_size as u64;
        self.stats.writebacks += 1;
        self.note_device_access(id);
        #[cfg(unix)]
        {
            self.file.write_all_at(buf, off).expect("write_at failed");
        }
        #[cfg(not(unix))]
        {
            self.file.seek(SeekFrom::Start(off)).unwrap();
            self.file.write_all(buf).expect("write failed");
        }
    }

    /// Makes page `id` resident and returns whether it was a hit.
    fn ensure_resident(&mut self, id: u64, write: bool) {
        self.stats.accesses += 1;
        match self.cache.access(id, write) {
            Access::Hit => {
                self.stats.hits += 1;
                if write {
                    self.dirty.insert(id);
                }
            }
            Access::Miss { evicted } => {
                if let Some((victim, victim_dirty)) = evicted {
                    self.stats.evictions += 1;
                    let frame = self.frames.remove(&victim).expect("evicted frame missing");
                    if victim_dirty || self.dirty.remove(&victim) {
                        self.write_page_to_file(victim, &frame);
                        self.dirty.remove(&victim);
                    }
                }
                let mut frame = vec![0u8; self.page_size].into_boxed_slice();
                self.read_page_from_file(id, &mut frame);
                self.frames.insert(id, frame);
                if write {
                    self.dirty.insert(id);
                }
            }
        }
    }

    /// Writes every dirty resident page back to the file.
    pub fn sync(&mut self) {
        let dirty: Vec<u64> = self.dirty.iter().copied().collect();
        for id in dirty {
            let frame = self.frames.get(&id).expect("dirty frame missing").clone();
            self.write_page_to_file(id, &frame);
        }
        self.dirty.clear();
        self.file.flush().ok();
    }

    /// Drops every resident page (writing back dirty ones), emptying the
    /// user-space cache — the analogue of the paper's "remounted the RAID
    /// array ... to clear the file cache".
    pub fn drop_cache(&mut self) {
        self.sync();
        self.cache.flush();
        self.frames.clear();
    }
}

impl PageStore for FilePages {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u32 {
        self.num_pages
    }

    fn alloc_page(&mut self) -> u32 {
        let id = self.num_pages;
        self.num_pages += 1;
        id
    }

    fn with_page<R>(&mut self, id: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        self.ensure_resident(id as u64, false);
        f(self.frames.get(&(id as u64)).expect("frame resident"))
    }

    fn with_page_mut<R>(&mut self, id: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.ensure_resident(id as u64, true);
        f(self.frames.get_mut(&(id as u64)).expect("frame resident"))
    }
}

/// A flat element array over [`FilePages`]: element `i` lives at byte
/// `i * elem_bytes` of the file, elements never straddle pages.
pub struct FileMem<T: Pod> {
    pages: FilePages,
    len: usize,
    elem_bytes: usize,
    per_page: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> std::fmt::Debug for FileMem<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileMem")
            .field("len", &self.len)
            .field("elem_bytes", &self.elem_bytes)
            .finish()
    }
}

impl<T: Pod> FileMem<T> {
    /// Creates a file-backed element array. `elem_bytes` must be at least
    /// `T::BYTES` (pad to match a modeled layout, e.g. the paper's 32-byte
    /// elements) and must divide `page_size`.
    pub fn create(
        path: &Path,
        page_size: usize,
        cache_pages: usize,
        elem_bytes: usize,
    ) -> std::io::Result<Self> {
        assert!(elem_bytes >= T::BYTES, "elem_bytes must fit the element");
        assert!(
            page_size.is_multiple_of(elem_bytes),
            "elements must not straddle pages"
        );
        Ok(FileMem {
            pages: FilePages::create(path, page_size, cache_pages)?,
            len: 0,
            elem_bytes,
            per_page: page_size / elem_bytes,
            _marker: std::marker::PhantomData,
        })
    }

    /// Real-I/O counters of the backing page cache.
    pub fn stats(&self) -> IoStats {
        self.pages.stats()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&mut self) {
        self.pages.reset_stats()
    }

    /// Snapshot-and-reset of the counters (see [`FilePages::take_stats`]).
    pub fn take_stats(&mut self) -> IoStats {
        self.pages.take_stats()
    }

    /// Empties the user-space cache (writes dirty pages back first).
    pub fn drop_cache(&mut self) {
        self.pages.drop_cache()
    }

    #[inline]
    fn locate(&self, i: usize) -> (u32, usize) {
        let page = (i / self.per_page) as u32;
        let off = (i % self.per_page) * self.elem_bytes;
        (page, off)
    }
}

impl<T: Pod> Mem<T> for FileMem<T> {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, _i: usize) -> T {
        unreachable!("FileMem requires &mut access; use get_mut-style wrappers")
    }

    fn set(&mut self, i: usize, v: T) {
        assert!(i < self.len);
        let (page, off) = self.locate(i);
        let eb = T::BYTES;
        self.pages
            .with_page_mut(page, |pg| v.write_to(&mut pg[off..off + eb]));
    }

    fn resize(&mut self, new_len: usize, fill: T) {
        let old_len = self.len;
        let pages_needed = new_len.div_ceil(self.per_page) as u32;
        while self.pages.num_pages() < pages_needed {
            self.pages.alloc_page();
        }
        self.len = new_len;
        for i in old_len..new_len {
            self.set(i, fill);
        }
    }
}

impl<T: Pod> FileMem<T> {
    /// Reads element `i` (requires `&mut self` because it may fault a page
    /// into the cache). This is the accessor the structures actually use;
    /// the `Mem::get` path is only reachable through `&self`, which a file
    /// store cannot serve.
    pub fn get_mut(&mut self, i: usize) -> T {
        assert!(i < self.len);
        let (page, off) = self.locate(i);
        self.pages
            .with_page(page, |pg| T::read_from(&pg[off..off + T::BYTES]))
    }
}

/// A [`Mem`] adapter over [`FileMem`] using interior mutability, so the
/// element-array structures (which read through `&self`) can run unchanged
/// on top of a file.
pub struct SharedFileMem<T: Pod> {
    inner: std::cell::RefCell<FileMem<T>>,
}

impl<T: Pod> SharedFileMem<T> {
    /// Wraps a [`FileMem`].
    pub fn new(inner: FileMem<T>) -> Self {
        SharedFileMem {
            inner: std::cell::RefCell::new(inner),
        }
    }

    /// I/O counters of the backing store.
    pub fn stats(&self) -> IoStats {
        self.inner.borrow().stats()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().reset_stats()
    }

    /// Snapshot-and-reset of the counters in one borrow, so a measurement
    /// phase boundary cannot lose accesses between the read and the reset.
    pub fn take_stats(&self) -> IoStats {
        self.inner.borrow_mut().take_stats()
    }

    /// Empties the user-space page cache.
    pub fn drop_cache(&self) {
        self.inner.borrow_mut().drop_cache()
    }
}

impl<T: Pod> Mem<T> for SharedFileMem<T> {
    fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    fn get(&self, i: usize) -> T {
        self.inner.borrow_mut().get_mut(i)
    }

    fn set(&mut self, i: usize, v: T) {
        self.inner.borrow_mut().set(i, v)
    }

    fn resize(&mut self, new_len: usize, fill: T) {
        self.inner.borrow_mut().resize(new_len, fill)
    }
}

/// A cloneable, thread-safe handle to a [`FileMem`], so a benchmark can
/// keep one clone for statistics and cache control while a dictionary owns
/// the other as its storage backend. Backed by `Arc<Mutex<…>>`, so a
/// file-backed dictionary is `Send` and can serve as one shard of a
/// sharded database whose sub-batches are applied on worker threads.
pub struct ArcFileMem<T: Pod> {
    inner: std::sync::Arc<std::sync::Mutex<FileMem<T>>>,
}

impl<T: Pod> Clone for ArcFileMem<T> {
    fn clone(&self) -> Self {
        ArcFileMem {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Pod> ArcFileMem<T> {
    /// Wraps a [`FileMem`].
    pub fn new(inner: FileMem<T>) -> Self {
        ArcFileMem {
            inner: std::sync::Arc::new(std::sync::Mutex::new(inner)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FileMem<T>> {
        self.inner.lock().expect("file store mutex poisoned")
    }

    /// I/O counters of the backing store.
    pub fn stats(&self) -> IoStats {
        self.lock().stats()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.lock().reset_stats()
    }

    /// Snapshot-and-reset of the counters under one lock acquisition, so
    /// a phase boundary cannot lose concurrent accesses between the read
    /// and the reset (the per-phase idiom of the scenario harness).
    pub fn take_stats(&self) -> IoStats {
        self.lock().take_stats()
    }

    /// Empties the user-space page cache.
    pub fn drop_cache(&self) {
        self.lock().drop_cache()
    }
}

impl<T: Pod> Mem<T> for ArcFileMem<T> {
    fn len(&self) -> usize {
        self.lock().len()
    }

    fn get(&self, i: usize) -> T {
        self.lock().get_mut(i)
    }

    fn set(&mut self, i: usize, v: T) {
        self.lock().set(i, v)
    }

    fn resize(&mut self, new_len: usize, fill: T) {
        self.lock().resize(new_len, fill)
    }
}

/// A cloneable, thread-safe handle to [`FilePages`] (see [`ArcFileMem`]).
#[derive(Clone)]
pub struct ArcFilePages {
    inner: std::sync::Arc<std::sync::Mutex<FilePages>>,
}

impl ArcFilePages {
    /// Wraps a [`FilePages`].
    pub fn new(inner: FilePages) -> Self {
        ArcFilePages {
            inner: std::sync::Arc::new(std::sync::Mutex::new(inner)),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FilePages> {
        self.inner.lock().expect("file store mutex poisoned")
    }

    /// I/O counters of the backing store.
    pub fn stats(&self) -> IoStats {
        self.lock().stats()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.lock().reset_stats()
    }

    /// Snapshot-and-reset of the counters under one lock acquisition
    /// (see [`ArcFileMem::take_stats`]).
    pub fn take_stats(&self) -> IoStats {
        self.lock().take_stats()
    }

    /// Empties the user-space page cache.
    pub fn drop_cache(&self) {
        self.lock().drop_cache()
    }
}

impl crate::page::PageStore for ArcFilePages {
    fn page_size(&self) -> usize {
        self.lock().page_size()
    }

    fn num_pages(&self) -> u32 {
        self.lock().num_pages()
    }

    fn alloc_page(&mut self) -> u32 {
        self.lock().alloc_page()
    }

    fn with_page<R>(&mut self, id: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        self.lock().with_page(id, f)
    }

    fn with_page_mut<R>(&mut self, id: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.lock().with_page_mut(id, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cosbt-dam-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn file_pages_roundtrip_through_evictions() {
        let path = tmp("pages");
        let mut fp = FilePages::create(&path, 256, 2).unwrap();
        for _ in 0..8 {
            fp.alloc_page();
        }
        for id in 0..8u32 {
            fp.with_page_mut(id, |pg| pg[0] = id as u8 + 1);
        }
        // Only 2 frames fit, so early pages were evicted and written back.
        for id in 0..8u32 {
            assert_eq!(fp.with_page(id, |pg| pg[0]), id as u8 + 1);
        }
        assert!(fp.stats().writebacks >= 6);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn drop_cache_preserves_data() {
        let path = tmp("dropcache");
        let mut fp = FilePages::create(&path, 128, 4).unwrap();
        let id = fp.alloc_page();
        fp.with_page_mut(id, |pg| pg[7] = 99);
        fp.drop_cache();
        assert_eq!(fp.with_page(id, |pg| pg[7]), 99);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_mem_stores_padded_elements() {
        let path = tmp("filemem");
        let mut fm: FileMem<(u64, u64)> = FileMem::create(&path, 4096, 2, 32).unwrap();
        fm.resize(1000, (0, 0));
        for i in 0..1000usize {
            fm.set(i, (i as u64, (i * 3) as u64));
        }
        fm.drop_cache();
        for i in (0..1000usize).rev() {
            assert_eq!(fm.get_mut(i), (i as u64, (i * 3) as u64));
        }
        // 1000 elements * 32 B = 8 pages of 4096; cold reverse scan with a
        // 2-page cache must fetch each at least once.
        assert!(fm.stats().fetches >= 8);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shared_file_mem_is_a_mem() {
        let path = tmp("sharedfm");
        let fm: FileMem<u64> = FileMem::create(&path, 512, 2, 8).unwrap();
        let mut sm = SharedFileMem::new(fm);
        sm.resize(300, 0);
        for i in 0..300usize {
            sm.set(i, i as u64 * 7);
        }
        sm.drop_cache();
        for i in 0..300usize {
            assert_eq!(sm.get(i), i as u64 * 7);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn arc_handles_share_state() {
        let path = tmp("arcmem");
        let fm: FileMem<u64> = FileMem::create(&path, 512, 4, 8).unwrap();
        let mut a = ArcFileMem::new(fm);
        let b = a.clone();
        a.resize(100, 0);
        a.set(50, 1234);
        b.drop_cache();
        assert_eq!(a.get(50), 1234);
        assert!(b.stats().fetches > 0);
        std::fs::remove_file(path).ok();

        let path = tmp("arcpages");
        let fp = FilePages::create(&path, 256, 2).unwrap();
        let mut p = ArcFilePages::new(fp);
        let q = p.clone();
        use crate::page::PageStore;
        let id = p.alloc_page();
        p.with_page_mut(id, |pg| pg[0] = 7);
        q.drop_cache();
        assert_eq!(p.with_page(id, |pg| pg[0]), 7);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn take_stats_splits_phases_without_losing_counts() {
        let path = tmp("phases");
        let fm: FileMem<u64> = FileMem::create(&path, 512, 2, 8).unwrap();
        let mut m = ArcFileMem::new(fm);
        m.resize(500, 0);
        for i in 0..500usize {
            m.set(i, i as u64);
        }
        let phase1 = m.take_stats();
        assert!(phase1.accesses > 0, "prefill phase touched the store");
        assert_eq!(m.stats(), IoStats::default(), "take resets the counters");
        m.drop_cache();
        let _ = m.take_stats();
        for i in 0..500usize {
            assert_eq!(m.get(i), i as u64);
        }
        let phase2 = m.take_stats();
        assert!(phase2.fetches > 0, "cold read phase fetched");
        // Residency survives the snapshot: re-reading the tail the scan
        // just loaded (still in the 2-page cache) is all hits.
        for i in 490..500usize {
            let _ = m.get(i);
        }
        let phase3 = m.take_stats();
        assert_eq!(phase3.fetches, 0, "warm phase after snapshot");
        assert_eq!(phase3.hits, phase3.accesses);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn arc_handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ArcFileMem<u64>>();
        assert_send::<ArcFilePages>();
    }

    #[test]
    fn reading_unwritten_page_yields_zeroes() {
        let path = tmp("zeroes");
        let mut fp = FilePages::create(&path, 128, 2).unwrap();
        let id = fp.alloc_page();
        assert_eq!(fp.with_page(id, |pg| pg.to_vec()), vec![0u8; 128]);
        std::fs::remove_file(path).ok();
    }
}
