//! Out-of-core storage: real file I/O behind a bounded user-space page
//! cache, with a durable, crash-safe on-disk format.
//!
//! The paper's experiments memory-map a 32 GiB file on a RAID array and let
//! the OS page cache play the role of internal memory. Offline we cannot
//! rely on (or even observe) the OS page cache, so this module makes
//! internal memory explicit: a [`FilePages`] store keeps at most
//! `cache_pages` page frames in RAM under LRU replacement and performs
//! positioned reads/writes on miss/eviction. Setting the cache budget well
//! below the data size reproduces the out-of-core regime of Figures 2–4.
//!
//! # Durability: shadow paging + shadow-committed metadata
//!
//! Every store file carries the format of [`crate::format`]: a superblock,
//! a double-buffered metadata region, then physical data pages. Structures
//! address *logical* pages; a page table (committed as part of the
//! metadata) maps them to physical slots. Between two commits, a dirty
//! logical page is **never written over the physical slot the last commit
//! maps it to** — its first writeback of the epoch relocates it to a free
//! slot (shadow paging). [`FilePages::commit_meta`] then makes the new
//! state durable in three ordered steps:
//!
//! 1. write back every dirty page (to shadow slots), barrier;
//! 2. write the new page table + caller payload to the *inactive*
//!    metadata slot under the next epoch, barrier;
//! 3. only now recycle the slots the previous commit referenced.
//!
//! A crash at any point therefore recovers to exactly the last committed
//! state: data writes touched only unreferenced slots, and a torn
//! metadata write fails its checksum so recovery keeps the previous
//! epoch. This is verified exhaustively by the crash-injection suite over
//! [`crate::dev::CrashDev`].

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io;
use std::path::Path;

use crate::dev::RawDev;
use crate::format::{
    decode_slot, encode_slot, OpenError, Superblock, DEFAULT_SLOT_BYTES, FORMAT_VERSION, KIND_ELEM,
    KIND_PAGES, SUPER_BYTES,
};
use crate::lru::{Access, LruCache};
use crate::mem::Mem;
use crate::page::PageStore;
use crate::pod::Pod;
use crate::reclaim::ReclaimGate;
use crate::stats::{AtomicIoStats, IoStats};
use std::collections::VecDeque;
use std::sync::Arc;

/// File-backed pages with a bounded user-space LRU cache of frames and a
/// shadow-paged durable format (see the module docs).
pub struct FilePages<D: RawDev = File> {
    dev: D,
    sb: Superblock,
    /// Logical page id → physical slot.
    table: Vec<u32>,
    /// The page table of the last committed epoch (prefix of `table`'s
    /// logical space). A dirty page whose mapping still equals its
    /// committed mapping must relocate before its first writeback.
    committed: Vec<u32>,
    /// Physical slot allocation high-water mark.
    phys_len: u32,
    /// Physical slots referenced by neither table (recycled by remaps).
    free: Vec<u32>,
    /// Last committed metadata epoch (0 = never committed).
    epoch: u64,
    /// Physical slots below this bound existed on the device when the
    /// store was opened and may hold stale pre-crash bytes beyond the
    /// committed state; `alloc_page` zeros them before handing them out
    /// so the "fresh pages read as zeros" contract survives recovery.
    suspect_end: u32,
    cache: LruCache,
    frames: HashMap<u64, Box<[u8]>>,
    dirty: HashSet<u64>,
    /// Shared with observer handles: counters are atomic so `stats` /
    /// `take_stats` probes on other threads never wait on (or race
    /// with) the store's own lock.
    stats: Arc<AtomicIoStats>,
    /// Superseded committed slots awaiting reclamation, tagged with the
    /// last committed epoch that referenced them (FIFO: tags ascend).
    /// Drained to `free` once the tag falls below the gate's horizon.
    retired: VecDeque<(u64, Vec<u32>)>,
    /// When set, pinned-reader horizon that gates recycling of retired
    /// slots; `None` (the default) recycles at the next commit.
    gate: Option<Arc<dyn ReclaimGate>>,
    /// Recent sequential stream positions, for seek accounting. A device
    /// access adjacent (within a small readahead window) to any tracked
    /// stream is sequential; anything else is a seek and starts a new
    /// stream. This models a disk with per-stream readahead — the paper
    /// notes its RAID's "sequential prefetching … significantly helps
    /// COLAs" — so a k-way merge reads as k concurrent sequential streams,
    /// not k·len seeks.
    streams: Vec<u64>,
}

/// Number of concurrent sequential streams the modeled device tracks.
const MAX_STREAMS: usize = 16;
/// Readahead slack: an access within this many pages ahead of a stream
/// still counts as sequential.
const READAHEAD: u64 = 2;

impl<D: RawDev> std::fmt::Debug for FilePages<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilePages")
            .field("page_size", &self.sb.page_size)
            .field("pages", &self.table.len())
            .field("phys_pages", &self.phys_len)
            .field("epoch", &self.epoch)
            .field("cached", &self.frames.len())
            .finish()
    }
}

impl FilePages<File> {
    /// Creates (truncating) a page store at `path` with room for
    /// `cache_pages` resident frames.
    pub fn create(path: &Path, page_size: usize, cache_pages: usize) -> io::Result<Self> {
        Self::create_sized(path, page_size, cache_pages, DEFAULT_SLOT_BYTES)
    }

    /// [`FilePages::create`] with an explicit metadata-slot capacity.
    /// The slot bounds the committable control state — page table
    /// (4 B per logical page) plus the caller payload — so it caps the
    /// store at roughly `slot_bytes / 4` pages; size it for the data the
    /// store must grow to (the capacity is fixed at creation and
    /// recorded in the superblock).
    pub fn create_sized(
        path: &Path,
        page_size: usize,
        cache_pages: usize,
        slot_bytes: usize,
    ) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Self::create_with_kind(file, page_size, cache_pages, KIND_PAGES, 0, slot_bytes)
    }

    /// Opens an existing page store at `path`, validating its superblock
    /// and recovering the last committed metadata epoch; returns the
    /// store and the caller payload of that epoch. The file is opened
    /// read-write but **not modified** — a validation failure leaves it
    /// byte-identical.
    pub fn open(path: &Path, cache_pages: usize) -> Result<(Self, Vec<u8>), OpenError> {
        Self::open_at(path, cache_pages, None)
    }

    /// [`FilePages::open`] bounded to epochs ≤ `max_epoch` (see
    /// [`FilePages::open_bounded`]).
    pub fn open_at(
        path: &Path,
        cache_pages: usize,
        max_epoch: Option<u64>,
    ) -> Result<(Self, Vec<u8>), OpenError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Self::open_bounded(file, cache_pages, (KIND_PAGES, 0), max_epoch)
    }
}

impl<D: RawDev> FilePages<D> {
    /// Creates a page store on a raw device (the device is assumed
    /// empty/overwritable); writes the superblock immediately.
    pub fn create_on(dev: D, page_size: usize, cache_pages: usize) -> io::Result<Self> {
        Self::create_with_kind(
            dev,
            page_size,
            cache_pages,
            KIND_PAGES,
            0,
            DEFAULT_SLOT_BYTES,
        )
    }

    /// [`FilePages::create_on`] with an explicit metadata-slot capacity
    /// (see [`FilePages::create_sized`]).
    pub fn create_on_sized(
        dev: D,
        page_size: usize,
        cache_pages: usize,
        slot_bytes: usize,
    ) -> io::Result<Self> {
        Self::create_with_kind(dev, page_size, cache_pages, KIND_PAGES, 0, slot_bytes)
    }

    pub(crate) fn create_with_kind(
        mut dev: D,
        page_size: usize,
        cache_pages: usize,
        kind: u32,
        elem_bytes: u32,
        slot_bytes: usize,
    ) -> io::Result<Self> {
        assert!(page_size > 0);
        assert!(
            slot_bytes > crate::format::SLOT_HDR_BYTES,
            "metadata slot must fit its header"
        );
        let sb = Superblock {
            version: FORMAT_VERSION,
            page_size: page_size as u32,
            kind,
            elem_bytes,
            slot_bytes: slot_bytes as u32,
        };
        dev.write_all_at(&sb.encode(), 0)?;
        dev.sync()?;
        Ok(FilePages {
            dev,
            sb,
            table: Vec::new(),
            committed: Vec::new(),
            phys_len: 0,
            free: Vec::new(),
            epoch: 0,
            suspect_end: 0,
            cache: LruCache::new(cache_pages.max(1)),
            frames: HashMap::new(),
            dirty: HashSet::new(),
            stats: Arc::new(AtomicIoStats::new()),
            retired: VecDeque::new(),
            gate: None,
            streams: Vec::new(),
        })
    }

    /// Opens a store on a raw device and recovers the newest committed
    /// epoch; `expected` is the `(kind, elem_bytes)` pair the caller
    /// requires. Returns the store and the recovered caller payload.
    pub fn open_on(
        dev: D,
        cache_pages: usize,
        expected: (u32, u32),
    ) -> Result<(Self, Vec<u8>), OpenError> {
        Self::open_bounded(dev, cache_pages, expected, None)
    }

    /// [`FilePages::open_on`], bounded: recovers the newest committed
    /// epoch **not exceeding `max_epoch`** (when given). The double
    /// buffering keeps the previous epoch intact until the next commit,
    /// so a coordinator that recorded an epoch vector (the sharded
    /// database's cross-shard commit record) can roll every member store
    /// back to its recorded epoch after a crash mid-multi-store-commit.
    pub fn open_bounded(
        mut dev: D,
        cache_pages: usize,
        expected: (u32, u32),
        max_epoch: Option<u64>,
    ) -> Result<(Self, Vec<u8>), OpenError> {
        let mut super_buf = [0u8; SUPER_BYTES];
        let got = read_fully(&mut dev, &mut super_buf, 0)?;
        let sb = Superblock::decode(&super_buf, got)?;
        if (sb.kind, sb.elem_bytes) != expected {
            return Err(OpenError::WrongKind {
                found: (sb.kind, sb.elem_bytes),
                expected,
            });
        }
        // Recover: the valid slot with the highest epoch (within the
        // bound, if any) wins.
        let mut best: Option<(u64, Vec<u8>)> = None;
        let mut newest_seen = 0u64;
        for i in 0..2 {
            let mut buf = vec![0u8; sb.slot_bytes as usize];
            let got = read_fully(&mut dev, &mut buf, sb.slot_off(i))?;
            if let Some((epoch, payload)) = decode_slot(&buf[..got]) {
                newest_seen = newest_seen.max(epoch);
                if max_epoch.is_some_and(|m| epoch > m) {
                    continue;
                }
                if best.as_ref().is_none_or(|(e, _)| epoch > *e) {
                    best = Some((epoch, payload));
                }
            }
        }
        let Some((epoch, payload)) = best else {
            return match max_epoch {
                Some(m) if newest_seen > 0 => Err(OpenError::Corrupt(format!(
                    "no committed epoch at or below {m} survives (newest on disk: \
                     {newest_seen}); the coordinator's commit record is stale"
                ))),
                _ => Err(OpenError::NeverCommitted),
            };
        };
        // Parse the store section: logical count, phys high-water mark,
        // page table; the rest is the caller's payload.
        if payload.len() < 8 {
            return Err(OpenError::Corrupt("metadata payload too short".into()));
        }
        let logical = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
        let phys_len = u32::from_le_bytes(payload[4..8].try_into().unwrap());
        // Bound both counts by what the checksummed payload can actually
        // describe *before* allocating with them (a crafted-but-valid
        // payload must produce Corrupt, not an allocator abort).
        let table_end = match logical.checked_mul(4).and_then(|t| t.checked_add(8)) {
            Some(end) if end <= payload.len() => end,
            _ => return Err(OpenError::Corrupt("page table truncated".into())),
        };
        if (phys_len as usize) > logical.saturating_mul(2).saturating_add(1 << 20) {
            // Shadow paging needs at most one extra slot per remapped
            // page; a high-water mark wildly past that is corruption.
            return Err(OpenError::Corrupt(format!(
                "physical high-water mark {phys_len} implausible for {logical} logical pages"
            )));
        }
        let mut table = Vec::with_capacity(logical);
        let mut referenced = vec![false; phys_len as usize];
        for l in 0..logical {
            let p = u32::from_le_bytes(payload[8 + 4 * l..12 + 4 * l].try_into().unwrap());
            if p >= phys_len || std::mem::replace(&mut referenced[p as usize], true) {
                return Err(OpenError::Corrupt(format!(
                    "page table maps logical page {l} to invalid or duplicate slot {p}"
                )));
            }
            table.push(p);
        }
        let free: Vec<u32> = referenced
            .iter()
            .enumerate()
            .filter(|(_, &r)| !r)
            .map(|(p, _)| p as u32)
            .collect();
        let user = payload[table_end..].to_vec();
        // Slots past the committed high-water mark may hold stale bytes
        // from synced-but-uncommitted pre-crash writes; remember how far
        // the device extends so alloc_page can zero them on reuse.
        let dev_len = dev.dev_len()?;
        let suspect_end = dev_len
            .saturating_sub(sb.data_off())
            .div_ceil(sb.page_size as u64)
            .min(u32::MAX as u64) as u32;
        Ok((
            FilePages {
                dev,
                sb,
                committed: table.clone(),
                table,
                phys_len,
                free,
                epoch,
                suspect_end,
                cache: LruCache::new(cache_pages.max(1)),
                frames: HashMap::new(),
                dirty: HashSet::new(),
                stats: Arc::new(AtomicIoStats::new()),
                retired: VecDeque::new(),
                gate: None,
                streams: Vec::new(),
            },
            user,
        ))
    }

    /// Real-I/O counters (fetches = device reads, writebacks = device
    /// writes).
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Returns the counters accumulated so far and resets them: one call
    /// closes a measurement phase and opens the next (cache residency is
    /// untouched, so a warm cache stays warm across phases). Each
    /// counter is atomically swapped to zero, so even with a concurrent
    /// mutator every transfer lands in exactly one phase.
    pub fn take_stats(&self) -> IoStats {
        self.stats.take()
    }

    /// The shared atomic counter block, for observers that must read
    /// the counters without acquiring the store's lock.
    pub fn stats_handle(&self) -> Arc<AtomicIoStats> {
        self.stats.clone()
    }

    /// Installs the reclamation gate consulted before recycling
    /// superseded committed slots (see [`crate::ReclaimGate`]). Without
    /// a gate, slots are recycled as soon as the next commit supersedes
    /// them — the single-threaded behaviour.
    pub fn set_reclaim_gate(&mut self, gate: Arc<dyn ReclaimGate>) {
        self.gate = Some(gate);
    }

    /// Superseded committed slots currently parked on the retire list
    /// (awaiting the gate's horizon).
    pub fn retired_slots(&self) -> usize {
        self.retired.iter().map(|(_, v)| v.len()).sum()
    }

    /// The last committed metadata epoch (0 = never committed).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Physical slots allocated so far (≥ logical pages; the surplus is
    /// shadow-paging headroom).
    pub fn phys_pages(&self) -> u32 {
        self.phys_len
    }

    fn page_size_usize(&self) -> usize {
        self.sb.page_size as usize
    }

    fn note_device_access(&mut self, phys: u64) {
        if let Some(i) = self
            .streams
            .iter()
            .position(|&p| phys >= p && phys <= p + READAHEAD)
        {
            let _ = self.streams.remove(i);
            self.streams.insert(0, phys);
            return;
        }
        self.stats.inc_seeks();
        self.streams.insert(0, phys);
        self.streams.truncate(MAX_STREAMS);
    }

    fn page_off(&self, phys: u32) -> u64 {
        self.sb.data_off() + phys as u64 * self.sb.page_size as u64
    }

    fn read_page_from_file(&mut self, logical: u64, buf: &mut [u8]) {
        let phys = self.table[logical as usize];
        let off = self.page_off(phys);
        self.stats.inc_fetches();
        self.note_device_access(phys as u64);
        // The page may extend past EOF if it was allocated but never
        // written; treat missing bytes as zero.
        let mut done = 0usize;
        while done < buf.len() {
            match self.dev.read_at(&mut buf[done..], off + done as u64) {
                Ok(0) => {
                    buf[done..].fill(0);
                    break;
                }
                Ok(n) => done += n,
                Err(e) => panic!("device read failed: {e}"),
            }
        }
    }

    /// The physical slot the next writeback of `logical` must target,
    /// relocating away from the committed mapping if necessary (shadow
    /// paging: committed slots are immutable until the next commit).
    fn phys_for_write(&mut self, logical: u64) -> u32 {
        let l = logical as usize;
        if l < self.committed.len() && self.table[l] == self.committed[l] {
            if self.free.is_empty() {
                self.reclaim_retired();
            }
            let fresh = self.free.pop().unwrap_or_else(|| {
                let p = self.phys_len;
                self.phys_len += 1;
                p
            });
            self.table[l] = fresh;
        }
        self.table[l]
    }

    /// Moves retired slots whose epoch tag has fallen below the gate's
    /// horizon onto the free list. Without a gate everything retired is
    /// immediately reclaimable.
    fn reclaim_retired(&mut self) {
        if self.retired.is_empty() {
            return;
        }
        let horizon = match &self.gate {
            Some(g) => g.reclaim_horizon(),
            None => u64::MAX,
        };
        while self.retired.front().is_some_and(|(tag, _)| *tag < horizon) {
            let (_, slots) = self.retired.pop_front().expect("front checked");
            self.free.extend(slots);
        }
    }

    fn write_page_to_file(&mut self, logical: u64, buf: &[u8]) -> io::Result<()> {
        let phys = self.phys_for_write(logical);
        let off = self.page_off(phys);
        self.stats.inc_writebacks();
        self.note_device_access(phys as u64);
        self.dev.write_all_at(buf, off)
    }

    /// Makes page `id` resident and returns whether it was a hit.
    fn ensure_resident(&mut self, id: u64, write: bool) {
        self.stats.inc_accesses();
        match self.cache.access(id, write) {
            Access::Hit => {
                self.stats.inc_hits();
                if write {
                    self.dirty.insert(id);
                }
            }
            Access::Miss { evicted } => {
                if let Some((victim, victim_dirty)) = evicted {
                    self.stats.inc_evictions();
                    let frame = self.frames.remove(&victim).expect("evicted frame missing");
                    if victim_dirty || self.dirty.remove(&victim) {
                        self.write_page_to_file(victim, &frame)
                            .expect("eviction writeback failed");
                        self.dirty.remove(&victim);
                    }
                }
                let mut frame = vec![0u8; self.page_size_usize()].into_boxed_slice();
                self.read_page_from_file(id, &mut frame);
                self.frames.insert(id, frame);
                if write {
                    self.dirty.insert(id);
                }
            }
        }
    }

    /// Writes every dirty resident page back to the device (to shadow
    /// slots, never over committed data) and issues a durability barrier.
    /// Does **not** commit metadata: after a crash the store still
    /// recovers the last [`FilePages::commit_meta`] state.
    pub fn sync(&mut self) -> io::Result<()> {
        let mut dirty: Vec<u64> = self.dirty.iter().copied().collect();
        dirty.sort_unstable();
        for id in dirty {
            let frame = self.frames.get(&id).expect("dirty frame missing").clone();
            self.write_page_to_file(id, &frame)?;
            self.dirty.remove(&id);
        }
        self.dev.sync()
    }

    /// Commits the current state durably: syncs the data pages, then
    /// shadow-writes the page table plus `user` payload (the structure's
    /// control state) to the inactive metadata slot under the next epoch.
    /// After a successful return, a crash at any later point — or a
    /// reopen — recovers exactly this state.
    pub fn commit_meta(&mut self, user: &[u8]) -> io::Result<()> {
        self.sync()?;
        let mut payload = Vec::with_capacity(8 + 4 * self.table.len() + user.len());
        payload.extend_from_slice(&(self.table.len() as u32).to_le_bytes());
        payload.extend_from_slice(&self.phys_len.to_le_bytes());
        for &p in &self.table {
            payload.extend_from_slice(&p.to_le_bytes());
        }
        payload.extend_from_slice(user);
        let epoch = self.epoch + 1;
        let slot = encode_slot(epoch, &payload, self.sb.slot_bytes as usize)?;
        let off = self.sb.slot_off((epoch % 2) as usize);
        self.dev.write_all_at(&slot, off)?;
        self.dev.sync()?;
        self.epoch = epoch;
        // Only now are the previous epoch's slots unreferenced by the
        // *newest* committed table — but a pinned reader may still be on
        // an older committed epoch that references them. Park them on
        // the retire list tagged with the superseded epoch; without a
        // gate the immediate reclaim below frees them right away, which
        // is the original single-threaded behaviour.
        let superseded: Vec<u32> = self
            .committed
            .iter()
            .enumerate()
            .filter(|&(l, &old)| self.table[l] != old)
            .map(|(_, &old)| old)
            .collect();
        if !superseded.is_empty() {
            self.retired.push_back((epoch - 1, superseded));
        }
        self.reclaim_retired();
        self.committed = self.table.clone();
        Ok(())
    }

    /// Drops every resident page (writing back dirty ones), emptying the
    /// user-space cache — the analogue of the paper's "remounted the RAID
    /// array ... to clear the file cache".
    pub fn drop_cache(&mut self) -> io::Result<()> {
        self.sync()?;
        self.cache.flush();
        self.frames.clear();
        Ok(())
    }
}

fn read_fully<D: RawDev>(dev: &mut D, buf: &mut [u8], off: u64) -> io::Result<usize> {
    let mut done = 0usize;
    while done < buf.len() {
        match dev.read_at(&mut buf[done..], off + done as u64)? {
            0 => break,
            n => done += n,
        }
    }
    Ok(done)
}

impl<D: RawDev> PageStore for FilePages<D> {
    fn page_size(&self) -> usize {
        self.page_size_usize()
    }

    fn num_pages(&self) -> u32 {
        self.table.len() as u32
    }

    fn alloc_page(&mut self) -> u32 {
        let id = self.table.len() as u32;
        // Bump-allocated slots only: past the device end a slot reads as
        // zeros (sparse-file semantics), which is the allocation
        // contract. Recycled free-list slots hold stale bytes and are
        // reused only by whole-page writebacks (remaps). One exception:
        // after crash recovery the device may extend past the committed
        // high-water mark with stale uncommitted bytes — zero those
        // before handing them out. (Format bookkeeping, not workload
        // I/O: deliberately not counted in the transfer stats.)
        let phys = self.phys_len;
        self.phys_len += 1;
        if phys < self.suspect_end {
            let zeros = vec![0u8; self.page_size_usize()];
            self.dev
                .write_all_at(&zeros, self.page_off(phys))
                .expect("zeroing a recovered slot failed");
        }
        self.table.push(phys);
        id
    }

    fn with_page<R>(&mut self, id: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        self.ensure_resident(id as u64, false);
        f(self.frames.get(&(id as u64)).expect("frame resident"))
    }

    fn with_page_mut<R>(&mut self, id: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.ensure_resident(id as u64, true);
        f(self.frames.get_mut(&(id as u64)).expect("frame resident"))
    }
}

/// A flat element array over [`FilePages`]: logical element `i` lives at
/// byte `i * elem_bytes` of the logical page space, elements never
/// straddle pages.
pub struct FileMem<T: Pod, D: RawDev = File> {
    pages: FilePages<D>,
    len: usize,
    elem_bytes: usize,
    per_page: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod, D: RawDev> std::fmt::Debug for FileMem<T, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileMem")
            .field("len", &self.len)
            .field("elem_bytes", &self.elem_bytes)
            .finish()
    }
}

impl<T: Pod> FileMem<T, File> {
    /// Creates a file-backed element array. `elem_bytes` must be at least
    /// `T::BYTES` (pad to match a modeled layout, e.g. the paper's 32-byte
    /// elements) and must divide `page_size`.
    pub fn create(
        path: &Path,
        page_size: usize,
        cache_pages: usize,
        elem_bytes: usize,
    ) -> io::Result<Self> {
        Self::create_sized(path, page_size, cache_pages, elem_bytes, DEFAULT_SLOT_BYTES)
    }

    /// [`FileMem::create`] with an explicit metadata-slot capacity (see
    /// [`FilePages::create_sized`]): the slot caps the array at roughly
    /// `slot_bytes / 4` pages, i.e. `slot_bytes / 4 * (page_size /
    /// elem_bytes)` elements.
    pub fn create_sized(
        path: &Path,
        page_size: usize,
        cache_pages: usize,
        elem_bytes: usize,
        slot_bytes: usize,
    ) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Self::create_on_sized(file, page_size, cache_pages, elem_bytes, slot_bytes)
    }

    /// Opens an existing element array at `path` (see
    /// [`FilePages::open`]); returns the array and the recovered caller
    /// payload.
    pub fn open(
        path: &Path,
        cache_pages: usize,
        elem_bytes: usize,
    ) -> Result<(Self, Vec<u8>), OpenError> {
        Self::open_at(path, cache_pages, elem_bytes, None)
    }

    /// [`FileMem::open`] bounded to epochs ≤ `max_epoch` (see
    /// [`FilePages::open_bounded`]).
    pub fn open_at(
        path: &Path,
        cache_pages: usize,
        elem_bytes: usize,
        max_epoch: Option<u64>,
    ) -> Result<(Self, Vec<u8>), OpenError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Self::open_bounded(file, cache_pages, elem_bytes, max_epoch)
    }
}

impl<T: Pod, D: RawDev> FileMem<T, D> {
    /// Creates an element array on a raw device (see
    /// [`FilePages::create_on`]).
    pub fn create_on(
        dev: D,
        page_size: usize,
        cache_pages: usize,
        elem_bytes: usize,
    ) -> io::Result<Self> {
        Self::create_on_sized(dev, page_size, cache_pages, elem_bytes, DEFAULT_SLOT_BYTES)
    }

    /// [`FileMem::create_on`] with an explicit metadata-slot capacity
    /// (see [`FileMem::create_sized`]).
    pub fn create_on_sized(
        dev: D,
        page_size: usize,
        cache_pages: usize,
        elem_bytes: usize,
        slot_bytes: usize,
    ) -> io::Result<Self> {
        assert!(elem_bytes >= T::BYTES, "elem_bytes must fit the element");
        assert!(
            page_size.is_multiple_of(elem_bytes),
            "elements must not straddle pages"
        );
        Ok(FileMem {
            pages: FilePages::create_with_kind(
                dev,
                page_size,
                cache_pages,
                KIND_ELEM,
                elem_bytes as u32,
                slot_bytes,
            )?,
            len: 0,
            elem_bytes,
            per_page: page_size / elem_bytes,
            _marker: std::marker::PhantomData,
        })
    }

    /// Opens an element array on a raw device, recovering the committed
    /// length and the caller payload.
    pub fn open_on(
        dev: D,
        cache_pages: usize,
        elem_bytes: usize,
    ) -> Result<(Self, Vec<u8>), OpenError> {
        Self::open_bounded(dev, cache_pages, elem_bytes, None)
    }

    /// [`FileMem::open_on`] bounded to epochs ≤ `max_epoch` (see
    /// [`FilePages::open_bounded`]).
    pub fn open_bounded(
        dev: D,
        cache_pages: usize,
        elem_bytes: usize,
        max_epoch: Option<u64>,
    ) -> Result<(Self, Vec<u8>), OpenError> {
        assert!(elem_bytes >= T::BYTES, "elem_bytes must fit the element");
        let (pages, payload) =
            FilePages::open_bounded(dev, cache_pages, (KIND_ELEM, elem_bytes as u32), max_epoch)?;
        let page_size = pages.page_size();
        if !page_size.is_multiple_of(elem_bytes) {
            return Err(OpenError::Corrupt(format!(
                "element stride {elem_bytes} does not divide page size {page_size}"
            )));
        }
        if payload.len() < 8 {
            return Err(OpenError::Corrupt(
                "element-array metadata too short".into(),
            ));
        }
        let len = u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize;
        let per_page = page_size / elem_bytes;
        if len > pages.num_pages() as usize * per_page {
            return Err(OpenError::Corrupt(format!(
                "committed length {len} exceeds the allocated page capacity"
            )));
        }
        Ok((
            FileMem {
                pages,
                len,
                elem_bytes,
                per_page,
                _marker: std::marker::PhantomData,
            },
            payload[8..].to_vec(),
        ))
    }

    /// Real-I/O counters of the backing page cache.
    pub fn stats(&self) -> IoStats {
        self.pages.stats()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.pages.reset_stats()
    }

    /// Snapshot-and-reset of the counters (see [`FilePages::take_stats`]).
    pub fn take_stats(&self) -> IoStats {
        self.pages.take_stats()
    }

    /// The shared atomic counter block (see [`FilePages::stats_handle`]).
    pub fn stats_handle(&self) -> Arc<AtomicIoStats> {
        self.pages.stats_handle()
    }

    /// Installs a reclamation gate on the backing page store (see
    /// [`FilePages::set_reclaim_gate`]).
    pub fn set_reclaim_gate(&mut self, gate: Arc<dyn ReclaimGate>) {
        self.pages.set_reclaim_gate(gate)
    }

    /// The last committed metadata epoch (0 = never committed).
    pub fn epoch(&self) -> u64 {
        self.pages.epoch()
    }

    /// Page size of the backing store.
    pub fn page_size(&self) -> usize {
        use crate::page::PageStore as _;
        self.pages.page_size()
    }

    /// Writes dirty pages back (shadow slots) with a durability barrier;
    /// no metadata commit.
    pub fn sync(&mut self) -> io::Result<()> {
        self.pages.sync()
    }

    /// Commits the array durably: data pages, the committed length, and
    /// the caller's `user` payload (see [`FilePages::commit_meta`]).
    pub fn commit_meta(&mut self, user: &[u8]) -> io::Result<()> {
        let mut payload = Vec::with_capacity(8 + user.len());
        payload.extend_from_slice(&(self.len as u64).to_le_bytes());
        payload.extend_from_slice(user);
        self.pages.commit_meta(&payload)
    }

    /// Empties the user-space cache (writes dirty pages back first).
    pub fn drop_cache(&mut self) -> io::Result<()> {
        self.pages.drop_cache()
    }

    #[inline]
    fn locate(&self, i: usize) -> (u32, usize) {
        let page = (i / self.per_page) as u32;
        let off = (i % self.per_page) * self.elem_bytes;
        (page, off)
    }
}

impl<T: Pod, D: RawDev> Mem<T> for FileMem<T, D> {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, _i: usize) -> T {
        unreachable!("FileMem requires &mut access; use get_mut-style wrappers")
    }

    fn set(&mut self, i: usize, v: T) {
        assert!(i < self.len);
        let (page, off) = self.locate(i);
        let eb = T::BYTES;
        self.pages
            .with_page_mut(page, |pg| v.write_to(&mut pg[off..off + eb]));
    }

    fn resize(&mut self, new_len: usize, fill: T) {
        let old_len = self.len;
        let pages_needed = new_len.div_ceil(self.per_page) as u32;
        while self.pages.num_pages() < pages_needed {
            self.pages.alloc_page();
        }
        self.len = new_len;
        for i in old_len..new_len {
            self.set(i, fill);
        }
    }
}

impl<T: Pod, D: RawDev> FileMem<T, D> {
    /// Reads element `i` (requires `&mut self` because it may fault a page
    /// into the cache). This is the accessor the structures actually use;
    /// the `Mem::get` path is only reachable through `&self`, which a file
    /// store cannot serve.
    pub fn get_mut(&mut self, i: usize) -> T {
        assert!(i < self.len);
        let (page, off) = self.locate(i);
        self.pages
            .with_page(page, |pg| T::read_from(&pg[off..off + T::BYTES]))
    }
}

/// A [`Mem`] adapter over [`FileMem`] using interior mutability, so the
/// element-array structures (which read through `&self`) can run unchanged
/// on top of a file.
pub struct SharedFileMem<T: Pod, D: RawDev = File> {
    inner: std::cell::RefCell<FileMem<T, D>>,
}

impl<T: Pod, D: RawDev> SharedFileMem<T, D> {
    /// Wraps a [`FileMem`].
    pub fn new(inner: FileMem<T, D>) -> Self {
        SharedFileMem {
            inner: std::cell::RefCell::new(inner),
        }
    }

    /// I/O counters of the backing store.
    pub fn stats(&self) -> IoStats {
        self.inner.borrow().stats()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.inner.borrow_mut().reset_stats()
    }

    /// Snapshot-and-reset of the counters in one borrow, so a measurement
    /// phase boundary cannot lose accesses between the read and the reset.
    pub fn take_stats(&self) -> IoStats {
        self.inner.borrow_mut().take_stats()
    }

    /// Writes dirty pages back with a durability barrier.
    pub fn sync(&self) -> io::Result<()> {
        self.inner.borrow_mut().sync()
    }

    /// Empties the user-space page cache.
    pub fn drop_cache(&self) -> io::Result<()> {
        self.inner.borrow_mut().drop_cache()
    }
}

impl<T: Pod, D: RawDev> Mem<T> for SharedFileMem<T, D> {
    fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    fn get(&self, i: usize) -> T {
        self.inner.borrow_mut().get_mut(i)
    }

    fn set(&mut self, i: usize, v: T) {
        self.inner.borrow_mut().set(i, v)
    }

    fn resize(&mut self, new_len: usize, fill: T) {
        self.inner.borrow_mut().resize(new_len, fill)
    }
}

/// A cloneable, thread-safe handle to a [`FileMem`], so a benchmark can
/// keep one clone for statistics and cache control while a dictionary owns
/// the other as its storage backend. Backed by `Arc<Mutex<…>>`, so a
/// file-backed dictionary is `Send` and can serve as one shard of a
/// sharded database whose sub-batches are applied on worker threads.
pub struct ArcFileMem<T: Pod, D: RawDev = File> {
    inner: std::sync::Arc<std::sync::Mutex<FileMem<T, D>>>,
    /// Cached counter block: stats observers bypass `inner`'s lock, so
    /// a probe thread never waits on (or deadlocks with) a writer
    /// holding the store through a long merge.
    stats: Arc<AtomicIoStats>,
}

impl<T: Pod, D: RawDev> Clone for ArcFileMem<T, D> {
    fn clone(&self) -> Self {
        ArcFileMem {
            inner: self.inner.clone(),
            stats: self.stats.clone(),
        }
    }
}

impl<T: Pod, D: RawDev> ArcFileMem<T, D> {
    /// Wraps a [`FileMem`].
    pub fn new(inner: FileMem<T, D>) -> Self {
        let stats = inner.stats_handle();
        ArcFileMem {
            inner: std::sync::Arc::new(std::sync::Mutex::new(inner)),
            stats,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FileMem<T, D>> {
        self.inner.lock().expect("file store mutex poisoned")
    }

    /// I/O counters of the backing store. Lock-free: reads the shared
    /// atomic counters without touching the store's mutex.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Resets the I/O counters (lock-free).
    pub fn reset_stats(&self) {
        self.stats.reset()
    }

    /// Snapshot-and-reset of the counters. Each counter is atomically
    /// swapped to zero, so a phase boundary cannot lose or double-count
    /// concurrent accesses (the per-phase idiom of the scenario
    /// harness) — and, being lock-free, it cannot be starved by a
    /// writer holding the store through a long merge.
    pub fn take_stats(&self) -> IoStats {
        self.stats.take()
    }

    /// Installs a reclamation gate on the backing store (see
    /// [`FilePages::set_reclaim_gate`]).
    pub fn set_reclaim_gate(&self, gate: Arc<dyn ReclaimGate>) {
        self.lock().set_reclaim_gate(gate)
    }

    /// Writes dirty pages back with a durability barrier.
    pub fn sync(&self) -> io::Result<()> {
        self.lock().sync()
    }

    /// Commits the array's state plus the caller's payload durably (see
    /// [`FileMem::commit_meta`]).
    pub fn commit_meta(&self, user: &[u8]) -> io::Result<()> {
        self.lock().commit_meta(user)
    }

    /// The last committed metadata epoch.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch()
    }

    /// Empties the user-space page cache.
    pub fn drop_cache(&self) -> io::Result<()> {
        self.lock().drop_cache()
    }
}

impl<T: Pod, D: RawDev> Mem<T> for ArcFileMem<T, D> {
    fn len(&self) -> usize {
        self.lock().len()
    }

    fn get(&self, i: usize) -> T {
        self.lock().get_mut(i)
    }

    fn set(&mut self, i: usize, v: T) {
        self.lock().set(i, v)
    }

    fn resize(&mut self, new_len: usize, fill: T) {
        self.lock().resize(new_len, fill)
    }
}

/// A cloneable, thread-safe handle to [`FilePages`] (see [`ArcFileMem`]).
pub struct ArcFilePages<D: RawDev = File> {
    inner: std::sync::Arc<std::sync::Mutex<FilePages<D>>>,
    /// Cached counter block (see [`ArcFileMem`]): stats observers
    /// bypass `inner`'s lock.
    stats: Arc<AtomicIoStats>,
}

impl<D: RawDev> Clone for ArcFilePages<D> {
    fn clone(&self) -> Self {
        ArcFilePages {
            inner: self.inner.clone(),
            stats: self.stats.clone(),
        }
    }
}

impl<D: RawDev> ArcFilePages<D> {
    /// Wraps a [`FilePages`].
    pub fn new(inner: FilePages<D>) -> Self {
        let stats = inner.stats_handle();
        ArcFilePages {
            inner: std::sync::Arc::new(std::sync::Mutex::new(inner)),
            stats,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FilePages<D>> {
        self.inner.lock().expect("file store mutex poisoned")
    }

    /// I/O counters of the backing store (lock-free, see
    /// [`ArcFileMem::stats`]).
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Resets the I/O counters (lock-free).
    pub fn reset_stats(&self) {
        self.stats.reset()
    }

    /// Snapshot-and-reset of the counters, atomic per counter
    /// (see [`ArcFileMem::take_stats`]).
    pub fn take_stats(&self) -> IoStats {
        self.stats.take()
    }

    /// Installs a reclamation gate on the backing store (see
    /// [`FilePages::set_reclaim_gate`]).
    pub fn set_reclaim_gate(&self, gate: Arc<dyn ReclaimGate>) {
        self.lock().set_reclaim_gate(gate)
    }

    /// Writes dirty pages back with a durability barrier.
    pub fn sync(&self) -> io::Result<()> {
        self.lock().sync()
    }

    /// Commits the store's state plus the caller's payload durably (see
    /// [`FilePages::commit_meta`]).
    pub fn commit_meta(&self, user: &[u8]) -> io::Result<()> {
        self.lock().commit_meta(user)
    }

    /// The last committed metadata epoch.
    pub fn epoch(&self) -> u64 {
        self.lock().epoch()
    }

    /// Empties the user-space page cache.
    pub fn drop_cache(&self) -> io::Result<()> {
        self.lock().drop_cache()
    }
}

impl<D: RawDev> crate::page::PageStore for ArcFilePages<D> {
    fn page_size(&self) -> usize {
        self.lock().page_size()
    }

    fn num_pages(&self) -> u32 {
        self.lock().num_pages()
    }

    fn alloc_page(&mut self) -> u32 {
        self.lock().alloc_page()
    }

    fn with_page<R>(&mut self, id: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        self.lock().with_page(id, f)
    }

    fn with_page_mut<R>(&mut self, id: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.lock().with_page_mut(id, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dev::CrashDev;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cosbt-dam-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn file_pages_roundtrip_through_evictions() {
        let path = tmp("pages");
        let mut fp = FilePages::create(&path, 256, 2).unwrap();
        for _ in 0..8 {
            fp.alloc_page();
        }
        for id in 0..8u32 {
            fp.with_page_mut(id, |pg| pg[0] = id as u8 + 1);
        }
        // Only 2 frames fit, so early pages were evicted and written back.
        for id in 0..8u32 {
            assert_eq!(fp.with_page(id, |pg| pg[0]), id as u8 + 1);
        }
        assert!(fp.stats().writebacks >= 6);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn drop_cache_preserves_data() {
        let path = tmp("dropcache");
        let mut fp = FilePages::create(&path, 128, 4).unwrap();
        let id = fp.alloc_page();
        fp.with_page_mut(id, |pg| pg[7] = 99);
        fp.drop_cache().unwrap();
        assert_eq!(fp.with_page(id, |pg| pg[7]), 99);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_mem_stores_padded_elements() {
        let path = tmp("filemem");
        let mut fm: FileMem<(u64, u64)> = FileMem::create(&path, 4096, 2, 32).unwrap();
        fm.resize(1000, (0, 0));
        for i in 0..1000usize {
            fm.set(i, (i as u64, (i * 3) as u64));
        }
        fm.drop_cache().unwrap();
        for i in (0..1000usize).rev() {
            assert_eq!(fm.get_mut(i), (i as u64, (i * 3) as u64));
        }
        // 1000 elements * 32 B = 8 pages of 4096; cold reverse scan with a
        // 2-page cache must fetch each at least once.
        assert!(fm.stats().fetches >= 8);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn shared_file_mem_is_a_mem() {
        let path = tmp("sharedfm");
        let fm: FileMem<u64> = FileMem::create(&path, 512, 2, 8).unwrap();
        let mut sm = SharedFileMem::new(fm);
        sm.resize(300, 0);
        for i in 0..300usize {
            sm.set(i, i as u64 * 7);
        }
        sm.drop_cache().unwrap();
        for i in 0..300usize {
            assert_eq!(sm.get(i), i as u64 * 7);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn arc_handles_share_state() {
        let path = tmp("arcmem");
        let fm: FileMem<u64> = FileMem::create(&path, 512, 4, 8).unwrap();
        let mut a = ArcFileMem::new(fm);
        let b = a.clone();
        a.resize(100, 0);
        a.set(50, 1234);
        b.drop_cache().unwrap();
        assert_eq!(a.get(50), 1234);
        assert!(b.stats().fetches > 0);
        std::fs::remove_file(path).ok();

        let path = tmp("arcpages");
        let fp = FilePages::create(&path, 256, 2).unwrap();
        let mut p = ArcFilePages::new(fp);
        let q = p.clone();
        use crate::page::PageStore;
        let id = p.alloc_page();
        p.with_page_mut(id, |pg| pg[0] = 7);
        q.drop_cache().unwrap();
        assert_eq!(p.with_page(id, |pg| pg[0]), 7);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn take_stats_splits_phases_without_losing_counts() {
        let path = tmp("phases");
        let fm: FileMem<u64> = FileMem::create(&path, 512, 2, 8).unwrap();
        let mut m = ArcFileMem::new(fm);
        m.resize(500, 0);
        for i in 0..500usize {
            m.set(i, i as u64);
        }
        let phase1 = m.take_stats();
        assert!(phase1.accesses > 0, "prefill phase touched the store");
        assert_eq!(m.stats(), IoStats::default(), "take resets the counters");
        m.drop_cache().unwrap();
        let _ = m.take_stats();
        for i in 0..500usize {
            assert_eq!(m.get(i), i as u64);
        }
        let phase2 = m.take_stats();
        assert!(phase2.fetches > 0, "cold read phase fetched");
        // Residency survives the snapshot: re-reading the tail the scan
        // just loaded (still in the 2-page cache) is all hits.
        for i in 490..500usize {
            let _ = m.get(i);
        }
        let phase3 = m.take_stats();
        assert_eq!(phase3.fetches, 0, "warm phase after snapshot");
        assert_eq!(phase3.hits, phase3.accesses);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn arc_handles_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ArcFileMem<u64>>();
        assert_send::<ArcFilePages>();
        assert_send::<ArcFileMem<u64, CrashDev>>();
    }

    #[test]
    fn reading_unwritten_page_yields_zeroes() {
        let path = tmp("zeroes");
        let mut fp = FilePages::create(&path, 128, 2).unwrap();
        let id = fp.alloc_page();
        assert_eq!(fp.with_page(id, |pg| pg.to_vec()), vec![0u8; 128]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn commit_and_reopen_recovers_pages_and_payload() {
        let path = tmp("reopen-pages");
        {
            let mut fp = FilePages::create(&path, 128, 2).unwrap();
            for i in 0..5u32 {
                let id = fp.alloc_page();
                fp.with_page_mut(id, |pg| pg[0] = i as u8 + 10);
            }
            fp.commit_meta(b"root=3").unwrap();
            assert_eq!(fp.epoch(), 1);
        }
        let (mut fp, payload) = FilePages::open(&path, 2).unwrap();
        assert_eq!(payload, b"root=3");
        assert_eq!(fp.num_pages(), 5);
        assert_eq!(fp.epoch(), 1);
        for i in 0..5u32 {
            assert_eq!(fp.with_page(i, |pg| pg[0]), i as u8 + 10);
        }
        // A second epoch replaces the first.
        fp.with_page_mut(0, |pg| pg[0] = 99);
        fp.commit_meta(b"root=7").unwrap();
        drop(fp);
        let (mut fp, payload) = FilePages::open(&path, 2).unwrap();
        assert_eq!(payload, b"root=7");
        assert_eq!(fp.epoch(), 2);
        assert_eq!(fp.with_page(0, |pg| pg[0]), 99);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn file_mem_commit_restores_len() {
        let path = tmp("reopen-mem");
        {
            let mut fm: FileMem<u64> = FileMem::create(&path, 512, 2, 8).unwrap();
            fm.resize(100, 0);
            for i in 0..100usize {
                fm.set(i, i as u64 * 3);
            }
            fm.commit_meta(b"cola").unwrap();
        }
        let (mut fm, payload) = FileMem::<u64>::open(&path, 2, 8).unwrap();
        assert_eq!(payload, b"cola");
        assert_eq!(fm.len(), 100);
        for i in 0..100usize {
            assert_eq!(fm.get_mut(i), i as u64 * 3);
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn uncommitted_writes_never_touch_committed_slots() {
        // The shadow-paging invariant the crash guarantee rests on: after
        // a commit, overwrite a page heavily *without* committing, then
        // reopen the device image — the committed state must be intact.
        let dev = CrashDev::new();
        let mut fp = FilePages::create_on(dev.clone(), 128, 2).unwrap();
        let id = fp.alloc_page();
        fp.with_page_mut(id, |pg| pg.fill(0xAA));
        fp.commit_meta(b"v1").unwrap();
        fp.with_page_mut(id, |pg| pg.fill(0xBB));
        fp.sync().unwrap(); // durable data write, but no meta commit
        drop(fp);
        let (mut re, payload) =
            FilePages::open_on(CrashDev::from_image(dev.snapshot()), 2, (KIND_PAGES, 0)).unwrap();
        assert_eq!(payload, b"v1");
        assert_eq!(re.with_page(id, |pg| pg.to_vec()), vec![0xAA; 128]);
    }

    #[test]
    fn open_rejects_wrong_kind_and_missing_commit() {
        let dev = CrashDev::new();
        let fm: FileMem<u64, CrashDev> = FileMem::create_on(dev.clone(), 512, 2, 8).unwrap();
        drop(fm);
        // Created but never committed.
        assert!(matches!(
            FileMem::<u64, CrashDev>::open_on(CrashDev::from_image(dev.snapshot()), 2, 8),
            Err(OpenError::NeverCommitted)
        ));
        // Commit, then misread the store's identity in every way.
        let dev = CrashDev::new();
        let mut fm: FileMem<u64, CrashDev> = FileMem::create_on(dev.clone(), 512, 2, 8).unwrap();
        fm.commit_meta(b"").unwrap();
        drop(fm);
        // Wrong stride.
        assert!(matches!(
            FileMem::<u64, CrashDev>::open_on(CrashDev::from_image(dev.snapshot()), 2, 16),
            Err(OpenError::WrongKind { .. })
        ));
        // An element array opened as a raw page store.
        assert!(matches!(
            FilePages::open_on(CrashDev::from_image(dev.snapshot()), 2, (KIND_PAGES, 0)),
            Err(OpenError::WrongKind { .. })
        ));
        // Not a store at all.
        assert!(matches!(
            FilePages::<CrashDev>::open_on(
                CrashDev::from_image(b"hello world".to_vec()),
                2,
                (KIND_PAGES, 0)
            ),
            Err(OpenError::BadMagic)
        ));
    }

    #[test]
    fn shadow_remap_reuses_freed_slots() {
        let dev = CrashDev::new();
        let mut fp = FilePages::create_on(dev, 64, 4).unwrap();
        let a = fp.alloc_page();
        let b = fp.alloc_page();
        fp.with_page_mut(a, |pg| pg[0] = 1);
        fp.with_page_mut(b, |pg| pg[0] = 2);
        fp.commit_meta(b"").unwrap();
        // Epoch 2: both pages dirty → both relocate to fresh slots.
        fp.with_page_mut(a, |pg| pg[0] = 3);
        fp.with_page_mut(b, |pg| pg[0] = 4);
        fp.commit_meta(b"").unwrap();
        let grown = fp.phys_pages();
        assert_eq!(grown, 4, "two shadow slots allocated");
        // Epoch 3: the slots freed by epoch 2 are recycled, not grown.
        fp.with_page_mut(a, |pg| pg[0] = 5);
        fp.with_page_mut(b, |pg| pg[0] = 6);
        fp.commit_meta(b"").unwrap();
        assert_eq!(fp.phys_pages(), grown, "freed slots were reused");
        assert_eq!(fp.with_page(a, |pg| pg[0]), 5);
        assert_eq!(fp.with_page(b, |pg| pg[0]), 6);
    }

    #[test]
    fn reclaim_gate_defers_slot_reuse_until_horizon() {
        use crate::reclaim::ReclaimGate;
        use std::sync::atomic::{AtomicU64, Ordering};

        struct Horizon(AtomicU64);
        impl ReclaimGate for Horizon {
            fn reclaim_horizon(&self) -> u64 {
                // ordering: single-threaded test gate; nothing else is
                // published through the horizon value.
                self.0.load(Ordering::Relaxed)
            }
        }

        // A "reader" pins old committed epochs: horizon 0 = everything
        // retired is still referenced.
        let gate = Arc::new(Horizon(AtomicU64::new(0)));
        let dev = CrashDev::new();
        let mut fp = FilePages::create_on(dev.clone(), 64, 4).unwrap();
        fp.set_reclaim_gate(gate.clone());
        let a = fp.alloc_page();
        let b = fp.alloc_page();
        fp.with_page_mut(a, |pg| pg[0] = 1);
        fp.with_page_mut(b, |pg| pg[0] = 2);
        fp.commit_meta(b"").unwrap(); // epoch 1
        fp.with_page_mut(a, |pg| pg[0] = 3);
        fp.with_page_mut(b, |pg| pg[0] = 4);
        fp.commit_meta(b"").unwrap(); // epoch 2: retires epoch-1 slots
        let grown = fp.phys_pages();
        assert_eq!(grown, 4, "two shadow slots allocated");
        assert_eq!(fp.retired_slots(), 2);
        // Epoch 3 with the horizon still at 0: retired slots must NOT be
        // recycled (an ungated store would reuse them here) — the store
        // grows instead.
        fp.with_page_mut(a, |pg| pg[0] = 5);
        fp.with_page_mut(b, |pg| pg[0] = 6);
        fp.commit_meta(b"").unwrap(); // epoch 3
        assert_eq!(fp.phys_pages(), grown + 2, "pinned slots were not reused");
        // Epoch 4, same: epoch 3's superseded slots park as well.
        fp.with_page_mut(a, |pg| pg[0] = 7);
        fp.with_page_mut(b, |pg| pg[0] = 8);
        fp.commit_meta(b"").unwrap(); // epoch 4
        assert_eq!(fp.phys_pages(), grown + 4);
        assert_eq!(fp.retired_slots(), 6);
        // This is what the gate buys: epoch 3 is still fully intact on
        // the device (its pages were never scribbled), so a coordinator
        // rolling this store back — or a pinned reader re-reading
        // through epoch 3's table — sees epoch 3's bytes.
        let (mut old, _) = FilePages::open_bounded(
            CrashDev::from_image(dev.snapshot()),
            4,
            (KIND_PAGES, 0),
            Some(3),
        )
        .unwrap();
        assert_eq!(old.with_page(a, |pg| pg[0]), 5);
        assert_eq!(old.with_page(b, |pg| pg[0]), 6);
        // Release the pin: everything retired below the new horizon is
        // recycled by the next remaps instead of growing the file.
        // ordering: single-threaded test; no cross-thread publication.
        gate.0.store(u64::MAX, Ordering::Relaxed);
        fp.with_page_mut(a, |pg| pg[0] = 9);
        fp.with_page_mut(b, |pg| pg[0] = 10);
        fp.commit_meta(b"").unwrap(); // epoch 5
        assert_eq!(
            fp.phys_pages(),
            grown + 4,
            "retired slots recycled once unpinned"
        );
        assert_eq!(fp.with_page(a, |pg| pg[0]), 9);
        assert_eq!(fp.with_page(b, |pg| pg[0]), 10);
    }
}
