//! Flat element-array storage: the substrate of the COLA and the PMA.
//!
//! The paper stores all COLA levels contiguously in one array; [`Mem`]
//! models exactly that — a growable flat array of fixed-size elements whose
//! *byte addresses* are what the DAM simulator sees.

use crate::pod::Pod;
use crate::sim::SharedSim;

/// A growable flat array of `Copy` elements.
///
/// All data-structure code in the workspace is generic over this trait, so
/// the same algorithm runs over plain heap memory ([`PlainMem`]), the DAM
/// simulator ([`SimMem`]), or an out-of-core file ([`crate::FileMem`]).
pub trait Mem<T: Copy> {
    /// Number of elements.
    fn len(&self) -> usize;

    /// Whether the array is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads element `i`.
    fn get(&self, i: usize) -> T;

    /// Writes element `i`.
    fn set(&mut self, i: usize, v: T);

    /// Grows or shrinks to `new_len`, filling new slots with `fill`.
    fn resize(&mut self, new_len: usize, fill: T);

    /// Copies `src..src+n` to `dst..dst+n` (ranges may overlap).
    fn copy_within(&mut self, src: usize, dst: usize, n: usize) {
        if dst == src || n == 0 {
            return;
        }
        if dst < src {
            for k in 0..n {
                let v = self.get(src + k);
                self.set(dst + k, v);
            }
        } else {
            for k in (0..n).rev() {
                let v = self.get(src + k);
                self.set(dst + k, v);
            }
        }
    }

    /// Fills `start..end` with `v`.
    fn fill_range(&mut self, start: usize, end: usize, v: T) {
        for i in start..end {
            self.set(i, v);
        }
    }
}

/// Plain heap storage; compiles to direct `Vec` indexing.
#[derive(Debug, Clone, Default)]
pub struct PlainMem<T> {
    data: Vec<T>,
}

impl<T: Copy> PlainMem<T> {
    /// Creates an empty array.
    pub fn new() -> Self {
        PlainMem { data: Vec::new() }
    }

    /// Creates an array of `n` copies of `fill`.
    pub fn with_len(n: usize, fill: T) -> Self {
        PlainMem {
            data: vec![fill; n],
        }
    }

    /// Borrows the underlying slice (useful in tests).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

impl<T: Copy> Mem<T> for PlainMem<T> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.data.len()
    }

    #[inline(always)]
    fn get(&self, i: usize) -> T {
        self.data[i]
    }

    #[inline(always)]
    fn set(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    fn resize(&mut self, new_len: usize, fill: T) {
        self.data.resize(new_len, fill);
    }

    fn copy_within(&mut self, src: usize, dst: usize, n: usize) {
        self.data.copy_within(src..src + n, dst);
    }

    fn fill_range(&mut self, start: usize, end: usize, v: T) {
        self.data[start..end].fill(v);
    }
}

/// Heap storage whose every access is charged to a shared DAM simulator.
///
/// The element's *modeled* size may differ from its Rust size: the paper
/// pads its 16-byte key/value pairs to 32 bytes, and `elem_bytes` lets the
/// simulated layout match the paper exactly.
#[derive(Debug)]
pub struct SimMem<T> {
    data: Vec<T>,
    sim: SharedSim,
    base: u64,
    elem_bytes: usize,
}

impl<T: Copy> SimMem<T> {
    /// Creates an empty simulated array with the natural element size.
    pub fn new(sim: SharedSim) -> Self {
        Self::with_elem_bytes(sim, std::mem::size_of::<T>().max(1))
    }

    /// Creates an empty simulated array whose elements occupy `elem_bytes`
    /// in the modeled address space.
    pub fn with_elem_bytes(sim: SharedSim, elem_bytes: usize) -> Self {
        assert!(elem_bytes > 0);
        let base = sim.borrow_mut().alloc_segment();
        SimMem {
            data: Vec::new(),
            sim,
            base,
            elem_bytes,
        }
    }

    /// The shared simulator handle.
    pub fn sim(&self) -> &SharedSim {
        &self.sim
    }

    #[inline]
    fn addr(&self, i: usize) -> u64 {
        self.base + (i * self.elem_bytes) as u64
    }
}

impl<T: Copy> Mem<T> for SimMem<T> {
    #[inline]
    fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn get(&self, i: usize) -> T {
        self.sim
            .borrow_mut()
            .touch(self.addr(i), self.elem_bytes, false);
        self.data[i]
    }

    #[inline]
    fn set(&mut self, i: usize, v: T) {
        self.sim
            .borrow_mut()
            .touch(self.addr(i), self.elem_bytes, true);
        self.data[i] = v;
    }

    fn resize(&mut self, new_len: usize, fill: T) {
        // Growing external storage is free in the DAM model (space is
        // allocated, not transferred); writes are charged when they happen.
        self.data.resize(new_len, fill);
    }
}

/// A file-backed flat element array; see [`crate::file`].
pub use crate::file::FileMem as FileElemArray;

/// Convenience: reads `mem[lo..hi]` into a `Vec` (charging transfers).
pub fn read_range<T: Copy, M: Mem<T>>(mem: &M, lo: usize, hi: usize) -> Vec<T> {
    (lo..hi).map(|i| mem.get(i)).collect()
}

/// Marker trait bundle for elements storable in any backend.
pub trait Element: Copy + Pod {}
impl<T: Copy + Pod> Element for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{new_shared_sim, CacheConfig};

    #[test]
    fn plain_mem_basics() {
        let mut m = PlainMem::with_len(4, 0u64);
        m.set(2, 42);
        assert_eq!(m.get(2), 42);
        m.resize(8, 7);
        assert_eq!(m.len(), 8);
        assert_eq!(m.get(7), 7);
        m.copy_within(0, 4, 3);
        assert_eq!(m.get(6), 42);
        m.fill_range(0, 2, 9);
        assert_eq!(m.as_slice()[..2], [9, 9]);
    }

    #[test]
    fn default_copy_within_handles_overlap_both_directions() {
        // Exercise the trait's default implementation through SimMem.
        let sim = new_shared_sim(CacheConfig::new(64, 1024));
        let mut m = SimMem::new(sim);
        m.resize(10, 0u64);
        for i in 0..10 {
            m.set(i, i as u64);
        }
        m.copy_within(0, 2, 8); // forward overlap
        let got: Vec<u64> = (0..10).map(|i| m.get(i)).collect();
        assert_eq!(got, vec![0, 1, 0, 1, 2, 3, 4, 5, 6, 7]);
        m.copy_within(2, 0, 8); // backward overlap
        let got: Vec<u64> = (0..10).map(|i| m.get(i)).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7, 6, 7]);
    }

    #[test]
    fn sim_mem_counts_block_transfers() {
        let sim = new_shared_sim(CacheConfig::new(64, 2));
        let mut m: SimMem<u64> = SimMem::new(sim.clone());
        m.resize(64, 0); // 64 elements * 8 bytes = 8 blocks
        for i in 0..64 {
            m.set(i, i as u64);
        }
        // Sequential write of 8 blocks with capacity 2: 8 fetches.
        assert_eq!(sim.borrow().stats().fetches, 8);
    }

    #[test]
    fn sim_mem_elem_bytes_controls_layout() {
        let sim = new_shared_sim(CacheConfig::new(64, 128));
        // 32-byte modeled elements: 2 per 64-byte block.
        let mut m: SimMem<u64> = SimMem::with_elem_bytes(sim.clone(), 32);
        m.resize(8, 0);
        for i in 0..8 {
            m.set(i, 1);
        }
        assert_eq!(sim.borrow().stats().fetches, 4);
    }

    #[test]
    fn two_sim_mems_share_one_memory() {
        let sim = new_shared_sim(CacheConfig::new(64, 1));
        let mut a: SimMem<u64> = SimMem::new(sim.clone());
        let mut b: SimMem<u64> = SimMem::new(sim.clone());
        a.resize(1, 0);
        b.resize(1, 0);
        // Alternating access with a single-block memory thrashes.
        for _ in 0..10 {
            a.set(0, 1);
            b.set(0, 2);
        }
        assert_eq!(sim.borrow().stats().fetches, 20);
    }
}
