//! Raw block devices: the byte-addressed substrate under [`crate::FilePages`].
//!
//! The file store used to talk to [`std::fs::File`] directly; the durable
//! on-disk format needs two things a concrete file cannot give us:
//!
//! * **testable crash semantics** — the shadow-commit protocol claims that
//!   a power cut or torn write at *any* point recovers the last committed
//!   state, and a claim like that is only worth having if a harness can
//!   cut the power at every point ([`CrashDev`] journals every write and
//!   sync so a test can reconstruct the disk image at any cut);
//! * **a seam for future media** (an io_uring backend, an object store)
//!   without touching the paging or commit logic.
//!
//! [`RawDev`] is that seam: positioned reads/writes plus a durability
//! barrier. [`std::fs::File`] implements it with `pread`/`pwrite` and
//! `fsync`; [`CrashDev`] implements it over an in-memory byte vector with
//! a write-ahead journal.

use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex, Once};

/// A byte-addressed device with positioned I/O and a durability barrier.
///
/// Reads may be short; reading past the end of the device returns `Ok(0)`
/// (callers treat missing bytes as zero, matching sparse-file semantics).
/// `sync` is the write barrier of the commit protocol: every write issued
/// before a successful `sync` is durable; writes after the last `sync`
/// may be arbitrarily lost or torn by a crash.
pub trait RawDev {
    /// Reads into `buf` starting at byte `off`; returns bytes read
    /// (0 = end of device).
    fn read_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<usize>;

    /// Writes all of `buf` at byte `off`, extending the device if needed.
    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()>;

    /// Durability barrier (`fsync`).
    fn sync(&mut self) -> io::Result<()>;

    /// Current device length in bytes (used by recovery to bound the
    /// region that may hold stale pre-crash writes).
    fn dev_len(&mut self) -> io::Result<u64>;
}

impl RawDev for std::fs::File {
    #[cfg(unix)]
    fn read_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        std::os::unix::fs::FileExt::read_at(&*self, buf, off)
    }

    #[cfg(not(unix))]
    fn read_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        use std::io::{Read, Seek, SeekFrom};
        self.seek(SeekFrom::Start(off))?;
        self.read(buf)
    }

    #[cfg(unix)]
    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        std::os::unix::fs::FileExt::write_all_at(&*self, buf, off)
    }

    #[cfg(not(unix))]
    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        self.seek(SeekFrom::Start(off))?;
        self.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }

    fn dev_len(&mut self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }
}

/// One journaled device operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevOp {
    /// A positioned write of `data` at byte offset `off`.
    Write {
        /// Byte offset of the write.
        off: u64,
        /// The written bytes.
        data: Vec<u8>,
    },
    /// A durability barrier: everything journaled before it is on stable
    /// storage.
    Sync,
}

#[derive(Debug, Default)]
struct CrashInner {
    bytes: Vec<u8>,
    journal: Vec<DevOp>,
}

fn apply_write(bytes: &mut Vec<u8>, off: u64, data: &[u8]) {
    let off = off as usize;
    if bytes.len() < off + data.len() {
        bytes.resize(off + data.len(), 0);
    }
    bytes[off..off + data.len()].copy_from_slice(data);
}

/// An in-memory crash-injection device.
///
/// Every write and sync is journaled; [`CrashDev::image_at`] reconstructs
/// the disk image a crash at any journal position would leave behind —
/// including torn final writes and post-barrier write loss — so a test can
/// exhaustively power-cut a commit protocol:
///
/// ```
/// use cosbt_dam::dev::{CrashDev, RawDev};
///
/// let mut dev = CrashDev::new();
/// dev.write_all_at(b"hello", 0).unwrap();
/// dev.sync().unwrap();
/// dev.write_all_at(b"HELLO", 0).unwrap();
/// // Cut before the second write: the synced state survives.
/// assert_eq!(&dev.image_at(2, None)[..5], b"hello");
/// // Torn second write (2 of 5 bytes reached the platter):
/// assert_eq!(&dev.image_at(2, Some(2))[..5], b"HEllo");
/// ```
///
/// Handles are cheap clones sharing one device, so a store can own one
/// while the harness keeps another for journal inspection.
#[derive(Debug, Clone, Default)]
pub struct CrashDev {
    inner: Arc<Mutex<CrashInner>>,
}

impl CrashDev {
    /// An empty device.
    pub fn new() -> CrashDev {
        CrashDev::default()
    }

    /// A device pre-loaded with `bytes` (e.g. a crash image produced by
    /// [`CrashDev::image_at`], to reopen a store on it).
    pub fn from_image(bytes: Vec<u8>) -> CrashDev {
        CrashDev {
            inner: Arc::new(Mutex::new(CrashInner {
                bytes,
                journal: Vec::new(),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CrashInner> {
        self.inner.lock().expect("crash device mutex poisoned")
    }

    /// Number of journaled operations so far.
    pub fn journal_len(&self) -> usize {
        self.lock().journal.len()
    }

    /// A copy of the journal.
    pub fn journal(&self) -> Vec<DevOp> {
        self.lock().journal.clone()
    }

    /// The current (no-crash) device contents.
    pub fn snapshot(&self) -> Vec<u8> {
        self.lock().bytes.clone()
    }

    /// The disk image after a crash at journal position `cut`: operations
    /// `0..cut` applied in order, plus — if `torn` is `Some(b)` and
    /// operation `cut` is a write — the first `b` bytes of that write.
    pub fn image_at(&self, cut: usize, torn: Option<usize>) -> Vec<u8> {
        let inner = self.lock();
        let mut bytes = Vec::new();
        for op in inner.journal.iter().take(cut) {
            if let DevOp::Write { off, data } = op {
                apply_write(&mut bytes, *off, data);
            }
        }
        if let (Some(b), Some(DevOp::Write { off, data })) = (torn, inner.journal.get(cut)) {
            let b = b.min(data.len());
            apply_write(&mut bytes, *off, &data[..b]);
        }
        bytes
    }

    /// The disk image after a crash at journal position `cut` under write
    /// reordering: everything up to the last `Sync` before `cut` is
    /// durable; each later write survives only if `keep(journal index)`
    /// returns true. This models a device that may persist un-synced
    /// writes in any subset.
    pub fn image_with_loss(&self, cut: usize, keep: &mut dyn FnMut(usize) -> bool) -> Vec<u8> {
        let inner = self.lock();
        let last_sync = inner.journal[..cut]
            .iter()
            .rposition(|op| matches!(op, DevOp::Sync))
            .map_or(0, |i| i + 1);
        let mut bytes = Vec::new();
        for (i, op) in inner.journal.iter().take(cut).enumerate() {
            if let DevOp::Write { off, data } = op {
                if i < last_sync || keep(i) {
                    apply_write(&mut bytes, *off, data);
                }
            }
        }
        bytes
    }
}

impl RawDev for CrashDev {
    fn read_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        let inner = self.lock();
        let off = off as usize;
        if off >= inner.bytes.len() {
            return Ok(0);
        }
        let n = buf.len().min(inner.bytes.len() - off);
        buf[..n].copy_from_slice(&inner.bytes[off..off + n]);
        Ok(n)
    }

    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        let mut inner = self.lock();
        apply_write(&mut inner.bytes, off, buf);
        inner.journal.push(DevOp::Write {
            off,
            data: buf.to_vec(),
        });
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.lock().journal.push(DevOp::Sync);
        Ok(())
    }

    fn dev_len(&mut self) -> io::Result<u64> {
        Ok(self.lock().bytes.len() as u64)
    }
}

/// Alignment required of direct-I/O offsets, lengths, and buffer
/// addresses. 4 KiB satisfies every mainstream Linux filesystem and
/// logical-block size (512 B and 4 Ki devices alike), and equals the
/// store's default page size, so all steady-state page traffic
/// qualifies for the direct path.
pub const DIRECT_ALIGN: usize = 4096;

/// `O_DIRECT` open flag. The asm-generic value shared by x86, x86-64,
/// aarch64, and riscv64; other architectures (32-bit ARM uses
/// `0x10000`) fall back to buffered I/O rather than risk passing the
/// wrong flag.
#[cfg(all(
    target_os = "linux",
    any(
        target_arch = "x86",
        target_arch = "x86_64",
        target_arch = "aarch64",
        target_arch = "riscv64"
    )
))]
const O_DIRECT: i32 = 0o40000;

/// A heap buffer whose payload starts on a [`DIRECT_ALIGN`] boundary.
///
/// Direct I/O requires the *memory address* to be aligned, not just the
/// file offset; `Vec<u8>` only guarantees alignment 1. Over-allocating
/// by one alignment unit and offsetting to the first aligned byte gets
/// an aligned window without any unsafe allocation tricks.
#[derive(Debug)]
struct AlignedBuf {
    raw: Vec<u8>,
    start: usize,
    len: usize,
}

impl AlignedBuf {
    fn with_capacity(len: usize) -> AlignedBuf {
        let raw = vec![0u8; len + DIRECT_ALIGN];
        let addr = raw.as_ptr() as usize;
        let start = (DIRECT_ALIGN - addr % DIRECT_ALIGN) % DIRECT_ALIGN;
        AlignedBuf { raw, start, len }
    }

    /// Usable payload bytes (always `DIRECT_ALIGN`-aligned capacity).
    fn capacity(&self) -> usize {
        self.raw.len() - DIRECT_ALIGN
    }

    fn slice(&self) -> &[u8] {
        &self.raw[self.start..self.start + self.len]
    }

    fn slice_mut(&mut self) -> &mut [u8] {
        &mut self.raw[self.start..self.start + self.len]
    }
}

/// Reusable [`AlignedBuf`]s, bounded so a burst of large transfers
/// cannot pin memory forever.
#[derive(Debug, Default)]
struct AlignedPool {
    bufs: Vec<AlignedBuf>,
}

const POOL_MAX: usize = 4;

impl AlignedPool {
    /// A buffer with at least `len` aligned payload bytes, reusing a
    /// pooled allocation when one is big enough.
    fn acquire(&mut self, len: usize) -> AlignedBuf {
        if let Some(i) = self.bufs.iter().position(|b| b.capacity() >= len) {
            let mut b = self.bufs.swap_remove(i);
            b.len = len;
            b.slice_mut().fill(0);
            return b;
        }
        AlignedBuf::with_capacity(len)
    }

    fn release(&mut self, buf: AlignedBuf) {
        if self.bufs.len() < POOL_MAX {
            self.bufs.push(buf);
        }
    }
}

fn direct_fallback_warning(path: &Path, why: &io::Error) {
    static WARN_ONCE: Once = Once::new();
    WARN_ONCE.call_once(|| {
        eprintln!(
            "cosbt-dam: direct I/O unavailable for {} ({why}); falling back to \
             buffered I/O (counters and correctness are unaffected)",
            path.display()
        );
    });
}

/// A file-backed [`RawDev`] that routes aligned block traffic through an
/// `O_DIRECT` handle, bypassing the kernel page cache.
///
/// The store already runs its own user-space page cache (the DAM
/// model's "memory"), so kernel caching on top double-buffers every
/// block and silently absorbs the very disk traffic the benchmarks
/// exist to measure. Opening the data file with `O_DIRECT` makes each
/// counted transfer a real device transfer.
///
/// Direct I/O has hard alignment rules — file offset, transfer length,
/// *and* user memory address must all be block-aligned — so the device
/// keeps two handles on the same file:
///
/// * aligned reads/writes (steady-state page traffic) go through the
///   `O_DIRECT` handle via a pool of [`DIRECT_ALIGN`]-aligned bounce
///   buffers;
/// * unaligned accesses (the 64-byte superblock, metadata slot
///   headers) use an ordinary buffered handle. The kernel keeps the
///   two views coherent (it flushes dirty page-cache ranges before a
///   direct read and invalidates them after a direct write).
///
/// On filesystems or platforms that refuse `O_DIRECT` (tmpfs rejects it
/// at `open(2)`; non-Linux builds never attempt it) the device
/// transparently falls back to buffered I/O and prints a one-time
/// warning: results remain correct, but transfer counts then measure
/// page-cache traffic rather than device traffic.
#[derive(Debug)]
pub struct DirectFile {
    /// `O_DIRECT` handle; `None` when direct I/O is off or was refused.
    direct: Option<std::fs::File>,
    /// Buffered handle on the same inode for unaligned accesses,
    /// metadata, length queries, and the durability barrier.
    buffered: std::fs::File,
    /// Path, for the fallback diagnostic.
    path: std::path::PathBuf,
    pool: AlignedPool,
}

impl DirectFile {
    /// Creates (truncating) the file at `path`. With `direct`, attempts
    /// to additionally open an `O_DIRECT` handle, falling back to
    /// buffered-only with a one-time warning if the filesystem or
    /// platform refuses.
    pub fn create(path: &Path, direct: bool) -> io::Result<DirectFile> {
        let buffered = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Self::from_buffered(buffered, path, direct))
    }

    /// Opens the existing file at `path`; see [`DirectFile::create`]
    /// for the meaning of `direct`.
    pub fn open(path: &Path, direct: bool) -> io::Result<DirectFile> {
        let buffered = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)?;
        Ok(Self::from_buffered(buffered, path, direct))
    }

    fn from_buffered(buffered: std::fs::File, path: &Path, direct: bool) -> DirectFile {
        let direct = if direct {
            match Self::open_direct(path) {
                Ok(f) => Some(f),
                Err(e) => {
                    direct_fallback_warning(path, &e);
                    None
                }
            }
        } else {
            None
        };
        DirectFile {
            direct,
            buffered,
            path: path.to_path_buf(),
            pool: AlignedPool::default(),
        }
    }

    #[cfg(all(
        target_os = "linux",
        any(
            target_arch = "x86",
            target_arch = "x86_64",
            target_arch = "aarch64",
            target_arch = "riscv64"
        )
    ))]
    fn open_direct(path: &Path) -> io::Result<std::fs::File> {
        use std::os::unix::fs::OpenOptionsExt;
        std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .custom_flags(O_DIRECT)
            .open(path)
    }

    #[cfg(not(all(
        target_os = "linux",
        any(
            target_arch = "x86",
            target_arch = "x86_64",
            target_arch = "aarch64",
            target_arch = "riscv64"
        )
    )))]
    fn open_direct(_path: &Path) -> io::Result<std::fs::File> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "O_DIRECT is only attempted on Linux (asm-generic architectures)",
        ))
    }

    /// Whether the direct-I/O path is active (false after a fallback).
    pub fn is_direct(&self) -> bool {
        self.direct.is_some()
    }

    fn aligned(off: u64, len: usize) -> bool {
        len > 0 && off.is_multiple_of(DIRECT_ALIGN as u64) && len.is_multiple_of(DIRECT_ALIGN)
    }

    /// Disables the direct path after the kernel refused an I/O that
    /// the open probe accepted (some filesystems only reject at
    /// read/write time).
    fn demote(&mut self, why: &io::Error) {
        direct_fallback_warning(&self.path, why);
        self.direct = None;
    }
}

impl RawDev for DirectFile {
    fn read_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        if self.direct.is_some() && Self::aligned(off, buf.len()) {
            let mut bounce = self.pool.acquire(buf.len());
            let res = {
                let file = self.direct.as_mut().expect("checked above");
                file.read_at(bounce.slice_mut(), off)
            };
            match res {
                Ok(n) => {
                    buf[..n].copy_from_slice(&bounce.slice()[..n]);
                    self.pool.release(bounce);
                    return Ok(n);
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                    self.pool.release(bounce);
                    self.demote(&e);
                }
                Err(e) => {
                    self.pool.release(bounce);
                    return Err(e);
                }
            }
        }
        self.buffered.read_at(buf, off)
    }

    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        if self.direct.is_some() && Self::aligned(off, buf.len()) {
            let mut bounce = self.pool.acquire(buf.len());
            bounce.slice_mut().copy_from_slice(buf);
            let res = {
                let file = self.direct.as_mut().expect("checked above");
                file.write_all_at(bounce.slice(), off)
            };
            match res {
                Ok(()) => {
                    self.pool.release(bounce);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidInput => {
                    self.pool.release(bounce);
                    self.demote(&e);
                }
                Err(e) => {
                    self.pool.release(bounce);
                    return Err(e);
                }
            }
        }
        self.buffered.write_all_at(buf, off)
    }

    fn sync(&mut self) -> io::Result<()> {
        // Both handles share one inode: a single data sync on the
        // buffered handle is the durability barrier for writes issued
        // through either (O_DIRECT writes still need the device-level
        // flush that fdatasync issues).
        self.buffered.sync_data()
    }

    fn dev_len(&mut self) -> io::Result<u64> {
        Ok(self.buffered.metadata()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_dev_reads_what_it_wrote() {
        let mut d = CrashDev::new();
        d.write_all_at(&[1, 2, 3], 10).unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(d.read_at(&mut buf, 9).unwrap(), 4);
        assert_eq!(&buf[..4], &[0, 1, 2, 3]);
        assert_eq!(d.read_at(&mut buf, 100).unwrap(), 0, "EOF reads zero");
    }

    #[test]
    fn images_replay_journal_prefixes() {
        let mut d = CrashDev::new();
        d.write_all_at(&[0xAA; 4], 0).unwrap();
        d.sync().unwrap();
        d.write_all_at(&[0xBB; 4], 0).unwrap();
        assert_eq!(d.journal_len(), 3);
        assert_eq!(d.image_at(0, None), Vec::<u8>::new());
        assert_eq!(d.image_at(1, None), vec![0xAA; 4]);
        assert_eq!(d.image_at(3, None), vec![0xBB; 4]);
        // Torn final write.
        assert_eq!(d.image_at(2, Some(2)), vec![0xBB, 0xBB, 0xAA, 0xAA]);
        // Post-barrier loss: the un-synced write may vanish entirely.
        assert_eq!(d.image_with_loss(3, &mut |_| false), vec![0xAA; 4]);
        assert_eq!(d.image_with_loss(3, &mut |_| true), vec![0xBB; 4]);
    }

    #[test]
    fn from_image_round_trips() {
        let mut d = CrashDev::new();
        d.write_all_at(b"state", 3).unwrap();
        let mut re = CrashDev::from_image(d.snapshot());
        let mut buf = [0u8; 5];
        re.read_at(&mut buf, 3).unwrap();
        assert_eq!(&buf, b"state");
    }

    #[test]
    fn aligned_buffers_are_aligned() {
        for len in [512, DIRECT_ALIGN, 3 * DIRECT_ALIGN] {
            let mut b = AlignedBuf::with_capacity(len);
            assert_eq!(b.slice().as_ptr() as usize % DIRECT_ALIGN, 0);
            assert_eq!(b.slice().len(), len);
            b.slice_mut().fill(0xAB);
            assert!(b.slice().iter().all(|&x| x == 0xAB));
        }
    }

    #[test]
    fn aligned_pool_reuses_and_zeroes() {
        let mut pool = AlignedPool::default();
        let mut b = pool.acquire(DIRECT_ALIGN);
        b.slice_mut().fill(0xFF);
        let addr = b.slice().as_ptr() as usize;
        pool.release(b);
        let again = pool.acquire(DIRECT_ALIGN);
        assert_eq!(again.slice().as_ptr() as usize, addr, "buffer reused");
        assert!(
            again.slice().iter().all(|&x| x == 0),
            "reused buffer zeroed"
        );
        // A larger request allocates fresh rather than overflowing.
        pool.release(again);
        let big = pool.acquire(4 * DIRECT_ALIGN);
        assert_eq!(big.slice().len(), 4 * DIRECT_ALIGN);
    }

    fn direct_scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cosbt-directfile-test");
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join(format!("{name}-{}.dat", std::process::id()))
    }

    #[test]
    fn direct_file_round_trips_aligned_and_unaligned() {
        let path = direct_scratch("roundtrip");
        let mut dev = DirectFile::create(&path, true).unwrap();

        // Unaligned prologue (superblock-shaped) through the buffered path.
        dev.write_all_at(b"COSBTDAM", 0).unwrap();
        // Aligned block through the direct path (when the fs allows it).
        let block: Vec<u8> = (0..DIRECT_ALIGN).map(|i| (i % 251) as u8).collect();
        dev.write_all_at(&block, DIRECT_ALIGN as u64).unwrap();
        dev.sync().unwrap();

        let mut hdr = [0u8; 8];
        assert_eq!(dev.read_at(&mut hdr, 0).unwrap(), 8);
        assert_eq!(&hdr, b"COSBTDAM");
        let mut back = vec![0u8; DIRECT_ALIGN];
        assert_eq!(
            dev.read_at(&mut back, DIRECT_ALIGN as u64).unwrap(),
            DIRECT_ALIGN
        );
        assert_eq!(back, block);
        assert_eq!(dev.dev_len().unwrap(), 2 * DIRECT_ALIGN as u64);

        // Reads past EOF report zero bytes, like the other devices.
        let mut past = vec![0u8; DIRECT_ALIGN];
        assert_eq!(dev.read_at(&mut past, 64 * DIRECT_ALIGN as u64).unwrap(), 0);

        // Reopen (direct and buffered) and verify both views agree.
        for direct in [true, false] {
            let mut re = DirectFile::open(&path, direct).unwrap();
            let mut hdr = [0u8; 8];
            re.read_at(&mut hdr, 0).unwrap();
            assert_eq!(&hdr, b"COSBTDAM");
            let mut back = vec![0u8; DIRECT_ALIGN];
            re.read_at(&mut back, DIRECT_ALIGN as u64).unwrap();
            assert_eq!(back, block, "direct={direct}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn direct_file_buffered_mode_never_opens_direct() {
        let path = direct_scratch("buffered");
        let dev = DirectFile::create(&path, false).unwrap();
        assert!(!dev.is_direct());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn direct_file_mixed_paths_stay_coherent() {
        let path = direct_scratch("coherent");
        let mut dev = DirectFile::create(&path, true).unwrap();
        // Direct-path write, then an unaligned (buffered) read of the
        // same range; then a buffered overwrite re-read via the direct
        // path. The kernel keeps the two handles coherent.
        dev.write_all_at(&vec![0x11; DIRECT_ALIGN], 0).unwrap();
        let mut three = [0u8; 3];
        assert_eq!(dev.read_at(&mut three, 1).unwrap(), 3);
        assert_eq!(three, [0x11; 3]);
        dev.write_all_at(&[0x22; 7], 5).unwrap();
        let mut block = vec![0u8; DIRECT_ALIGN];
        dev.read_at(&mut block, 0).unwrap();
        assert_eq!(&block[..5], &[0x11; 5]);
        assert_eq!(&block[5..12], &[0x22; 7]);
        assert_eq!(&block[12..], &vec![0x11; DIRECT_ALIGN - 12][..]);
        std::fs::remove_file(&path).ok();
    }
}
