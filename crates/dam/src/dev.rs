//! Raw block devices: the byte-addressed substrate under [`crate::FilePages`].
//!
//! The file store used to talk to [`std::fs::File`] directly; the durable
//! on-disk format needs two things a concrete file cannot give us:
//!
//! * **testable crash semantics** — the shadow-commit protocol claims that
//!   a power cut or torn write at *any* point recovers the last committed
//!   state, and a claim like that is only worth having if a harness can
//!   cut the power at every point ([`CrashDev`] journals every write and
//!   sync so a test can reconstruct the disk image at any cut);
//! * **a seam for future media** (an io_uring backend, an object store)
//!   without touching the paging or commit logic.
//!
//! [`RawDev`] is that seam: positioned reads/writes plus a durability
//! barrier. [`std::fs::File`] implements it with `pread`/`pwrite` and
//! `fsync`; [`CrashDev`] implements it over an in-memory byte vector with
//! a write-ahead journal.

use std::io;
use std::sync::{Arc, Mutex};

/// A byte-addressed device with positioned I/O and a durability barrier.
///
/// Reads may be short; reading past the end of the device returns `Ok(0)`
/// (callers treat missing bytes as zero, matching sparse-file semantics).
/// `sync` is the write barrier of the commit protocol: every write issued
/// before a successful `sync` is durable; writes after the last `sync`
/// may be arbitrarily lost or torn by a crash.
pub trait RawDev {
    /// Reads into `buf` starting at byte `off`; returns bytes read
    /// (0 = end of device).
    fn read_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<usize>;

    /// Writes all of `buf` at byte `off`, extending the device if needed.
    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()>;

    /// Durability barrier (`fsync`).
    fn sync(&mut self) -> io::Result<()>;

    /// Current device length in bytes (used by recovery to bound the
    /// region that may hold stale pre-crash writes).
    fn dev_len(&mut self) -> io::Result<u64>;
}

impl RawDev for std::fs::File {
    #[cfg(unix)]
    fn read_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        std::os::unix::fs::FileExt::read_at(&*self, buf, off)
    }

    #[cfg(not(unix))]
    fn read_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        use std::io::{Read, Seek, SeekFrom};
        self.seek(SeekFrom::Start(off))?;
        self.read(buf)
    }

    #[cfg(unix)]
    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        std::os::unix::fs::FileExt::write_all_at(&*self, buf, off)
    }

    #[cfg(not(unix))]
    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        self.seek(SeekFrom::Start(off))?;
        self.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }

    fn dev_len(&mut self) -> io::Result<u64> {
        Ok(self.metadata()?.len())
    }
}

/// One journaled device operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DevOp {
    /// A positioned write of `data` at byte offset `off`.
    Write {
        /// Byte offset of the write.
        off: u64,
        /// The written bytes.
        data: Vec<u8>,
    },
    /// A durability barrier: everything journaled before it is on stable
    /// storage.
    Sync,
}

#[derive(Debug, Default)]
struct CrashInner {
    bytes: Vec<u8>,
    journal: Vec<DevOp>,
}

fn apply_write(bytes: &mut Vec<u8>, off: u64, data: &[u8]) {
    let off = off as usize;
    if bytes.len() < off + data.len() {
        bytes.resize(off + data.len(), 0);
    }
    bytes[off..off + data.len()].copy_from_slice(data);
}

/// An in-memory crash-injection device.
///
/// Every write and sync is journaled; [`CrashDev::image_at`] reconstructs
/// the disk image a crash at any journal position would leave behind —
/// including torn final writes and post-barrier write loss — so a test can
/// exhaustively power-cut a commit protocol:
///
/// ```
/// use cosbt_dam::dev::{CrashDev, RawDev};
///
/// let mut dev = CrashDev::new();
/// dev.write_all_at(b"hello", 0).unwrap();
/// dev.sync().unwrap();
/// dev.write_all_at(b"HELLO", 0).unwrap();
/// // Cut before the second write: the synced state survives.
/// assert_eq!(&dev.image_at(2, None)[..5], b"hello");
/// // Torn second write (2 of 5 bytes reached the platter):
/// assert_eq!(&dev.image_at(2, Some(2))[..5], b"HEllo");
/// ```
///
/// Handles are cheap clones sharing one device, so a store can own one
/// while the harness keeps another for journal inspection.
#[derive(Debug, Clone, Default)]
pub struct CrashDev {
    inner: Arc<Mutex<CrashInner>>,
}

impl CrashDev {
    /// An empty device.
    pub fn new() -> CrashDev {
        CrashDev::default()
    }

    /// A device pre-loaded with `bytes` (e.g. a crash image produced by
    /// [`CrashDev::image_at`], to reopen a store on it).
    pub fn from_image(bytes: Vec<u8>) -> CrashDev {
        CrashDev {
            inner: Arc::new(Mutex::new(CrashInner {
                bytes,
                journal: Vec::new(),
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CrashInner> {
        self.inner.lock().expect("crash device mutex poisoned")
    }

    /// Number of journaled operations so far.
    pub fn journal_len(&self) -> usize {
        self.lock().journal.len()
    }

    /// A copy of the journal.
    pub fn journal(&self) -> Vec<DevOp> {
        self.lock().journal.clone()
    }

    /// The current (no-crash) device contents.
    pub fn snapshot(&self) -> Vec<u8> {
        self.lock().bytes.clone()
    }

    /// The disk image after a crash at journal position `cut`: operations
    /// `0..cut` applied in order, plus — if `torn` is `Some(b)` and
    /// operation `cut` is a write — the first `b` bytes of that write.
    pub fn image_at(&self, cut: usize, torn: Option<usize>) -> Vec<u8> {
        let inner = self.lock();
        let mut bytes = Vec::new();
        for op in inner.journal.iter().take(cut) {
            if let DevOp::Write { off, data } = op {
                apply_write(&mut bytes, *off, data);
            }
        }
        if let (Some(b), Some(DevOp::Write { off, data })) = (torn, inner.journal.get(cut)) {
            let b = b.min(data.len());
            apply_write(&mut bytes, *off, &data[..b]);
        }
        bytes
    }

    /// The disk image after a crash at journal position `cut` under write
    /// reordering: everything up to the last `Sync` before `cut` is
    /// durable; each later write survives only if `keep(journal index)`
    /// returns true. This models a device that may persist un-synced
    /// writes in any subset.
    pub fn image_with_loss(&self, cut: usize, keep: &mut dyn FnMut(usize) -> bool) -> Vec<u8> {
        let inner = self.lock();
        let last_sync = inner.journal[..cut]
            .iter()
            .rposition(|op| matches!(op, DevOp::Sync))
            .map_or(0, |i| i + 1);
        let mut bytes = Vec::new();
        for (i, op) in inner.journal.iter().take(cut).enumerate() {
            if let DevOp::Write { off, data } = op {
                if i < last_sync || keep(i) {
                    apply_write(&mut bytes, *off, data);
                }
            }
        }
        bytes
    }
}

impl RawDev for CrashDev {
    fn read_at(&mut self, buf: &mut [u8], off: u64) -> io::Result<usize> {
        let inner = self.lock();
        let off = off as usize;
        if off >= inner.bytes.len() {
            return Ok(0);
        }
        let n = buf.len().min(inner.bytes.len() - off);
        buf[..n].copy_from_slice(&inner.bytes[off..off + n]);
        Ok(n)
    }

    fn write_all_at(&mut self, buf: &[u8], off: u64) -> io::Result<()> {
        let mut inner = self.lock();
        apply_write(&mut inner.bytes, off, buf);
        inner.journal.push(DevOp::Write {
            off,
            data: buf.to_vec(),
        });
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        self.lock().journal.push(DevOp::Sync);
        Ok(())
    }

    fn dev_len(&mut self) -> io::Result<u64> {
        Ok(self.lock().bytes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_dev_reads_what_it_wrote() {
        let mut d = CrashDev::new();
        d.write_all_at(&[1, 2, 3], 10).unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(d.read_at(&mut buf, 9).unwrap(), 4);
        assert_eq!(&buf[..4], &[0, 1, 2, 3]);
        assert_eq!(d.read_at(&mut buf, 100).unwrap(), 0, "EOF reads zero");
    }

    #[test]
    fn images_replay_journal_prefixes() {
        let mut d = CrashDev::new();
        d.write_all_at(&[0xAA; 4], 0).unwrap();
        d.sync().unwrap();
        d.write_all_at(&[0xBB; 4], 0).unwrap();
        assert_eq!(d.journal_len(), 3);
        assert_eq!(d.image_at(0, None), Vec::<u8>::new());
        assert_eq!(d.image_at(1, None), vec![0xAA; 4]);
        assert_eq!(d.image_at(3, None), vec![0xBB; 4]);
        // Torn final write.
        assert_eq!(d.image_at(2, Some(2)), vec![0xBB, 0xBB, 0xAA, 0xAA]);
        // Post-barrier loss: the un-synced write may vanish entirely.
        assert_eq!(d.image_with_loss(3, &mut |_| false), vec![0xAA; 4]);
        assert_eq!(d.image_with_loss(3, &mut |_| true), vec![0xBB; 4]);
    }

    #[test]
    fn from_image_round_trips() {
        let mut d = CrashDev::new();
        d.write_all_at(b"state", 3).unwrap();
        let mut re = CrashDev::from_image(d.snapshot());
        let mut buf = [0u8; 5];
        re.read_at(&mut buf, 3).unwrap();
        assert_eq!(&buf, b"state");
    }
}
