//! Block-transfer counters for the DAM simulator.

/// Counters accumulated by [`crate::IoSim`].
///
/// In the DAM model the *cost* of an algorithm is `fetches + writebacks`:
/// the number of blocks moved between internal and external memory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Logical block accesses (one per distinct block touched per operation).
    pub accesses: u64,
    /// Accesses that found the block resident in internal memory.
    pub hits: u64,
    /// Blocks fetched from external memory (cache misses).
    pub fetches: u64,
    /// Blocks evicted from internal memory.
    pub evictions: u64,
    /// Evicted blocks that were dirty and had to be written back.
    pub writebacks: u64,
    /// Non-sequential device accesses: fetches/writebacks whose block was
    /// not adjacent to the previous access of the same kind. Counted only
    /// by real file stores; used to model rotating-disk behaviour (the
    /// paper's testbed streamed at 120 MiB/s but paid a seek for each
    /// random block).
    pub seeks: u64,
}

impl IoStats {
    /// Total block transfers: the DAM-model cost (`fetches + writebacks`).
    #[inline]
    pub fn transfers(&self) -> u64 {
        self.fetches + self.writebacks
    }

    /// Difference `self - earlier`, for measuring a window of operations.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            accesses: self.accesses - earlier.accesses,
            hits: self.hits - earlier.hits,
            fetches: self.fetches - earlier.fetches,
            evictions: self.evictions - earlier.evictions,
            writebacks: self.writebacks - earlier.writebacks,
            seeks: self.seeks - earlier.seeks,
        }
    }

    /// Modeled rotating-disk time for this window: each seek costs
    /// `seek_ms` and every transferred block streams at `bw_bytes_per_s`.
    /// This is the paper's measurement idiom ("We estimated disk time d as
    /// d = w − u − k"; their RAID streamed at 120 MiB/s) transplanted to
    /// the explicit page cache, where the OS cannot hide the pattern.
    pub fn modeled_disk_seconds(
        &self,
        block_bytes: usize,
        seek_ms: f64,
        bw_bytes_per_s: f64,
    ) -> f64 {
        self.seeks as f64 * seek_ms / 1e3
            + (self.transfers() as f64 * block_bytes as f64) / bw_bytes_per_s
    }

    /// Hit rate in `[0, 1]`; `1.0` when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;

    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            accesses: self.accesses + rhs.accesses,
            hits: self.hits + rhs.hits,
            fetches: self.fetches + rhs.fetches,
            evictions: self.evictions + rhs.evictions,
            writebacks: self.writebacks + rhs.writebacks,
            seeks: self.seeks + rhs.seeks,
        }
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for IoStats {
    /// Fieldwise sum — how a sharded database aggregates the counters of
    /// its per-shard backing stores into one report.
    fn sum<I: Iterator<Item = IoStats>>(iter: I) -> IoStats {
        iter.fold(IoStats::default(), |acc, s| acc + s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_sums_fetches_and_writebacks() {
        let s = IoStats {
            accesses: 10,
            hits: 4,
            fetches: 6,
            evictions: 3,
            writebacks: 2,
            seeks: 0,
        };
        assert_eq!(s.transfers(), 8);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = IoStats {
            accesses: 10,
            hits: 4,
            fetches: 6,
            evictions: 3,
            writebacks: 2,
            seeks: 1,
        };
        let b = IoStats {
            accesses: 25,
            hits: 9,
            fetches: 16,
            evictions: 13,
            writebacks: 7,
            seeks: 5,
        };
        let d = b.since(&a);
        assert_eq!(d.accesses, 15);
        assert_eq!(d.hits, 5);
        assert_eq!(d.fetches, 10);
        assert_eq!(d.evictions, 10);
        assert_eq!(d.writebacks, 5);
        assert_eq!(d.seeks, 4);
    }

    #[test]
    fn modeled_disk_time_combines_seeks_and_streaming() {
        let s = IoStats {
            fetches: 100,
            writebacks: 100,
            seeks: 10,
            ..Default::default()
        };
        // 10 seeks * 8 ms + 200 blocks * 4096 B / (120 MiB/s)
        let t = s.modeled_disk_seconds(4096, 8.0, 120.0 * 1024.0 * 1024.0);
        assert!((t - (0.08 + 200.0 * 4096.0 / (120.0 * 1024.0 * 1024.0))).abs() < 1e-9);
    }

    #[test]
    fn sum_aggregates_fieldwise() {
        let a = IoStats {
            accesses: 1,
            hits: 2,
            fetches: 3,
            evictions: 4,
            writebacks: 5,
            seeks: 6,
        };
        let b = IoStats {
            accesses: 10,
            hits: 20,
            fetches: 30,
            evictions: 40,
            writebacks: 50,
            seeks: 60,
        };
        let total: IoStats = [a, b].into_iter().sum();
        assert_eq!(total, a + b);
        assert_eq!(total.accesses, 11);
        assert_eq!(total.transfers(), 33 + 55);
        let mut acc = a;
        acc += b;
        assert_eq!(acc, total);
    }

    #[test]
    fn hit_rate_handles_zero_accesses() {
        assert_eq!(IoStats::default().hit_rate(), 1.0);
        let s = IoStats {
            accesses: 4,
            hits: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }
}
