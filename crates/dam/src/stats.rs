//! Block-transfer counters for the DAM simulator.

use cosbt_testkit::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated by [`crate::IoSim`].
///
/// In the DAM model the *cost* of an algorithm is `fetches + writebacks`:
/// the number of blocks moved between internal and external memory.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IoStats {
    /// Logical block accesses (one per distinct block touched per operation).
    pub accesses: u64,
    /// Accesses that found the block resident in internal memory.
    pub hits: u64,
    /// Blocks fetched from external memory (cache misses).
    pub fetches: u64,
    /// Blocks evicted from internal memory.
    pub evictions: u64,
    /// Evicted blocks that were dirty and had to be written back.
    pub writebacks: u64,
    /// Non-sequential device accesses: fetches/writebacks whose block was
    /// not adjacent to the previous access of the same kind. Counted only
    /// by real file stores; used to model rotating-disk behaviour (the
    /// paper's testbed streamed at 120 MiB/s but paid a seek for each
    /// random block).
    pub seeks: u64,
}

impl IoStats {
    /// Total block transfers: the DAM-model cost (`fetches + writebacks`).
    #[inline]
    pub fn transfers(&self) -> u64 {
        self.fetches + self.writebacks
    }

    /// Difference `self - earlier`, for measuring a window of operations.
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            accesses: self.accesses - earlier.accesses,
            hits: self.hits - earlier.hits,
            fetches: self.fetches - earlier.fetches,
            evictions: self.evictions - earlier.evictions,
            writebacks: self.writebacks - earlier.writebacks,
            seeks: self.seeks - earlier.seeks,
        }
    }

    /// Modeled rotating-disk time for this window: each seek costs
    /// `seek_ms` and every transferred block streams at `bw_bytes_per_s`.
    /// This is the paper's measurement idiom ("We estimated disk time d as
    /// d = w − u − k"; their RAID streamed at 120 MiB/s) transplanted to
    /// the explicit page cache, where the OS cannot hide the pattern.
    pub fn modeled_disk_seconds(
        &self,
        block_bytes: usize,
        seek_ms: f64,
        bw_bytes_per_s: f64,
    ) -> f64 {
        self.seeks as f64 * seek_ms / 1e3
            + (self.transfers() as f64 * block_bytes as f64) / bw_bytes_per_s
    }

    /// Hit rate in `[0, 1]`; `1.0` when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;

    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            accesses: self.accesses + rhs.accesses,
            hits: self.hits + rhs.hits,
            fetches: self.fetches + rhs.fetches,
            evictions: self.evictions + rhs.evictions,
            writebacks: self.writebacks + rhs.writebacks,
            seeks: self.seeks + rhs.seeks,
        }
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for IoStats {
    /// Fieldwise sum — how a sharded database aggregates the counters of
    /// its per-shard backing stores into one report.
    fn sum<I: Iterator<Item = IoStats>>(iter: I) -> IoStats {
        iter.fold(IoStats::default(), |acc, s| acc + s)
    }
}

/// Lock-free [`IoStats`] accumulator shared between a store and its
/// observers.
///
/// The file stores increment these counters while holding their own
/// lock, but observers (`stats` / `take_stats` probes on another
/// thread) must not have to acquire that lock: a reader blocked behind
/// a long merge would starve, and a non-atomic snapshot-and-reset
/// could drop or double-count transfers. Each counter is an
/// independent `AtomicU64`; [`take`](AtomicIoStats::take) swaps each
/// counter to zero so every increment lands in exactly one phase.
/// Relaxed ordering suffices: the counters are statistics, not
/// synchronization — no other memory is published through them.
#[derive(Debug, Default)]
pub struct AtomicIoStats {
    accesses: AtomicU64,
    hits: AtomicU64,
    fetches: AtomicU64,
    evictions: AtomicU64,
    writebacks: AtomicU64,
    seeks: AtomicU64,
}

impl AtomicIoStats {
    /// New accumulator with all counters at zero.
    pub fn new() -> AtomicIoStats {
        AtomicIoStats::default()
    }

    /// Count one logical block access.
    #[inline]
    pub fn inc_accesses(&self) {
        // ordering: pure statistic; no other memory is published.
        self.accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one access that found its block resident.
    #[inline]
    pub fn inc_hits(&self) {
        // ordering: pure statistic; no other memory is published.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one block fetched from external memory.
    #[inline]
    pub fn inc_fetches(&self) {
        // ordering: pure statistic; no other memory is published.
        self.fetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one block evicted from internal memory.
    #[inline]
    pub fn inc_evictions(&self) {
        // ordering: pure statistic; no other memory is published.
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one dirty block written back to external memory.
    #[inline]
    pub fn inc_writebacks(&self) {
        // ordering: pure statistic; no other memory is published.
        self.writebacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one non-sequential device access.
    #[inline]
    pub fn inc_seeks(&self) {
        // ordering: pure statistic; no other memory is published.
        self.seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// Read all counters without resetting them.
    ///
    /// Counters are loaded one at a time, so a snapshot taken while
    /// another thread is mid-operation may straddle that operation
    /// (e.g. see its access but not yet its fetch); totals are still
    /// never lost.
    pub fn snapshot(&self) -> IoStats {
        // ordering: counters are independent statistics; a snapshot may
        // straddle an in-flight operation (documented above) and no
        // other memory is consumed through these loads.
        IoStats {
            accesses: self.accesses.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            writebacks: self.writebacks.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
        }
    }

    /// Atomically (per counter) read and zero the counters.
    ///
    /// Each counter is `swap(0)`-ed, so concurrent increments land
    /// either in the returned window or the next one — never both,
    /// never neither. This is what makes phase accounting
    /// (`prefill` / `measured`) exact even with a racing writer.
    pub fn take(&self) -> IoStats {
        // ordering: each swap is individually atomic, which is all the
        // exactly-once phase accounting needs; the counters carry no
        // other memory, so Relaxed suffices.
        IoStats {
            accesses: self.accesses.swap(0, Ordering::Relaxed),
            hits: self.hits.swap(0, Ordering::Relaxed),
            fetches: self.fetches.swap(0, Ordering::Relaxed),
            evictions: self.evictions.swap(0, Ordering::Relaxed),
            writebacks: self.writebacks.swap(0, Ordering::Relaxed),
            seeks: self.seeks.swap(0, Ordering::Relaxed),
        }
    }

    /// Zero all counters, discarding their values.
    pub fn reset(&self) {
        self.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_sums_fetches_and_writebacks() {
        let s = IoStats {
            accesses: 10,
            hits: 4,
            fetches: 6,
            evictions: 3,
            writebacks: 2,
            seeks: 0,
        };
        assert_eq!(s.transfers(), 8);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = IoStats {
            accesses: 10,
            hits: 4,
            fetches: 6,
            evictions: 3,
            writebacks: 2,
            seeks: 1,
        };
        let b = IoStats {
            accesses: 25,
            hits: 9,
            fetches: 16,
            evictions: 13,
            writebacks: 7,
            seeks: 5,
        };
        let d = b.since(&a);
        assert_eq!(d.accesses, 15);
        assert_eq!(d.hits, 5);
        assert_eq!(d.fetches, 10);
        assert_eq!(d.evictions, 10);
        assert_eq!(d.writebacks, 5);
        assert_eq!(d.seeks, 4);
    }

    #[test]
    fn modeled_disk_time_combines_seeks_and_streaming() {
        let s = IoStats {
            fetches: 100,
            writebacks: 100,
            seeks: 10,
            ..Default::default()
        };
        // 10 seeks * 8 ms + 200 blocks * 4096 B / (120 MiB/s)
        let t = s.modeled_disk_seconds(4096, 8.0, 120.0 * 1024.0 * 1024.0);
        assert!((t - (0.08 + 200.0 * 4096.0 / (120.0 * 1024.0 * 1024.0))).abs() < 1e-9);
    }

    #[test]
    fn sum_aggregates_fieldwise() {
        let a = IoStats {
            accesses: 1,
            hits: 2,
            fetches: 3,
            evictions: 4,
            writebacks: 5,
            seeks: 6,
        };
        let b = IoStats {
            accesses: 10,
            hits: 20,
            fetches: 30,
            evictions: 40,
            writebacks: 50,
            seeks: 60,
        };
        let total: IoStats = [a, b].into_iter().sum();
        assert_eq!(total, a + b);
        assert_eq!(total.accesses, 11);
        assert_eq!(total.transfers(), 33 + 55);
        let mut acc = a;
        acc += b;
        assert_eq!(acc, total);
    }

    #[test]
    fn atomic_take_never_loses_or_double_counts() {
        use std::sync::Arc;
        let stats = Arc::new(AtomicIoStats::new());
        let n = 20_000u64;
        let worker = {
            let s = stats.clone();
            std::thread::spawn(move || {
                for _ in 0..n {
                    s.inc_fetches();
                    s.inc_writebacks();
                }
            })
        };
        // Race take() against the incrementing worker: every increment
        // must land in exactly one taken window.
        let mut total = IoStats::default();
        for _ in 0..500 {
            total += stats.take();
        }
        worker.join().unwrap();
        total += stats.take();
        assert_eq!(total.fetches, n);
        assert_eq!(total.writebacks, n);
        assert_eq!(stats.snapshot(), IoStats::default());
    }

    #[test]
    fn atomic_snapshot_reads_without_reset() {
        let stats = AtomicIoStats::new();
        stats.inc_accesses();
        stats.inc_hits();
        stats.inc_seeks();
        let a = stats.snapshot();
        let b = stats.snapshot();
        assert_eq!(a, b);
        assert_eq!(a.accesses, 1);
        assert_eq!(a.seeks, 1);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStats::default());
    }

    #[test]
    fn hit_rate_handles_zero_accesses() {
        assert_eq!(IoStats::default().hit_rate(), 1.0);
        let s = IoStats {
            accesses: 4,
            hits: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.25).abs() < 1e-12);
    }
}
