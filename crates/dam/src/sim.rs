//! The DAM-model I/O simulator.
//!
//! [`IoSim`] models an internal memory of `mem_bytes` organized into blocks
//! of `block_bytes` with LRU replacement, over a 64-bit external address
//! space. Data structures allocate disjoint *segments* of that address
//! space (one per array / page store) so a single simulator observes the
//! complete access trace of a composite structure — including inter-array
//! locality, which is exactly what the cache-oblivious analyses are about.

use std::cell::RefCell;
use std::rc::Rc;

use crate::lru::{Access, LruCache};
use crate::stats::IoStats;

/// Segments are 2^40 bytes apart; block sizes are required to be powers of
/// two ≤ 2^40 so a block never straddles two segments.
const SEGMENT_SHIFT: u32 = 40;

/// DAM-model parameters: block size `B` and internal memory size `M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Block size `B` in bytes (power of two).
    pub block_bytes: usize,
    /// Internal-memory size `M` in bytes.
    pub mem_bytes: usize,
}

impl CacheConfig {
    /// A configuration with block size `block_bytes` and room for
    /// `blocks_in_mem` blocks of internal memory.
    pub fn new(block_bytes: usize, blocks_in_mem: usize) -> Self {
        CacheConfig {
            block_bytes,
            mem_bytes: block_bytes * blocks_in_mem,
        }
    }

    /// Number of blocks that fit in internal memory (`M/B`, at least 1).
    pub fn blocks_in_mem(&self) -> usize {
        (self.mem_bytes / self.block_bytes).max(1)
    }
}

/// An exact DAM-model simulator: LRU block cache plus transfer counters.
#[derive(Debug)]
pub struct IoSim {
    config: CacheConfig,
    cache: LruCache,
    stats: IoStats,
    next_segment: u64,
    block_shift: u32,
}

impl IoSim {
    /// Creates a simulator for the given configuration.
    ///
    /// # Panics
    /// If `block_bytes` is zero, not a power of two, or larger than 2^40.
    pub fn new(config: CacheConfig) -> Self {
        let b = config.block_bytes;
        assert!(
            b > 0 && b.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(b <= 1 << SEGMENT_SHIFT, "block size too large");
        IoSim {
            config,
            cache: LruCache::new(config.blocks_in_mem()),
            stats: IoStats::default(),
            next_segment: 0,
            block_shift: b.trailing_zeros(),
        }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Allocates a fresh segment of the external address space and returns
    /// its base address. Segments are disjoint and block-aligned.
    pub fn alloc_segment(&mut self) -> u64 {
        let seg = self.next_segment;
        self.next_segment += 1;
        seg << SEGMENT_SHIFT
    }

    /// Records an access to the byte range `[addr, addr + len)`.
    ///
    /// Every block overlapping the range is touched once; misses fetch the
    /// block, possibly evicting (and writing back) another.
    pub fn touch(&mut self, addr: u64, len: usize, write: bool) {
        if len == 0 {
            return;
        }
        let first = addr >> self.block_shift;
        let last = (addr + len as u64 - 1) >> self.block_shift;
        for block in first..=last {
            self.stats.accesses += 1;
            match self.cache.access(block, write) {
                Access::Hit => self.stats.hits += 1,
                Access::Miss { evicted } => {
                    self.stats.fetches += 1;
                    if let Some((_, dirty)) = evicted {
                        self.stats.evictions += 1;
                        if dirty {
                            self.stats.writebacks += 1;
                        }
                    }
                }
            }
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Resets the counters (residency is kept).
    pub fn reset_stats(&mut self) {
        self.stats = IoStats::default();
    }

    /// Returns the counters accumulated so far and resets them, closing
    /// one measurement phase and opening the next (residency is kept).
    pub fn take_stats(&mut self) -> IoStats {
        std::mem::take(&mut self.stats)
    }

    /// Empties internal memory, counting writebacks for dirty blocks.
    /// Models e.g. the paper's "remounted the RAID array before searching".
    pub fn drop_cache(&mut self) {
        let dirty = self.cache.flush();
        self.stats.writebacks += dirty.len() as u64;
    }

    /// Whether the block containing `addr` is currently resident.
    pub fn is_resident(&self, addr: u64) -> bool {
        self.cache.contains(addr >> self.block_shift)
    }
}

/// Shared handle to a simulator, so several arrays/page stores owned by one
/// data structure can charge transfers to the same internal memory.
pub type SharedSim = Rc<RefCell<IoSim>>;

/// Convenience constructor for a [`SharedSim`].
pub fn new_shared_sim(config: CacheConfig) -> SharedSim {
    Rc::new(RefCell::new(IoSim::new(config)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(block: usize, blocks: usize) -> IoSim {
        IoSim::new(CacheConfig::new(block, blocks))
    }

    #[test]
    fn sequential_scan_costs_len_over_b() {
        let mut s = sim(64, 4);
        let base = s.alloc_segment();
        // scan 1024 bytes one byte at a time: exactly 1024/64 = 16 fetches
        for i in 0..1024u64 {
            s.touch(base + i, 1, false);
        }
        assert_eq!(s.stats().fetches, 16);
        assert_eq!(s.stats().accesses, 1024);
    }

    #[test]
    fn range_touch_spans_blocks() {
        let mut s = sim(64, 8);
        let base = s.alloc_segment();
        s.touch(base + 60, 8, false); // straddles blocks 0 and 1
        assert_eq!(s.stats().fetches, 2);
        s.touch(base + 60, 8, false);
        assert_eq!(s.stats().hits, 2);
    }

    #[test]
    fn working_set_within_m_has_no_capacity_misses() {
        let mut s = sim(64, 4);
        let base = s.alloc_segment();
        for round in 0..100 {
            for blk in 0..4u64 {
                s.touch(base + blk * 64, 1, false);
            }
            if round == 0 {
                assert_eq!(s.stats().fetches, 4);
            }
        }
        assert_eq!(s.stats().fetches, 4); // only compulsory misses
        assert_eq!(s.stats().evictions, 0);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut s = sim(64, 1);
        let base = s.alloc_segment();
        s.touch(base, 1, true); // block 0 dirty
        s.touch(base + 64, 1, false); // evicts block 0
        assert_eq!(s.stats().writebacks, 1);
        assert_eq!(s.stats().transfers(), 3); // 2 fetches + 1 writeback
    }

    #[test]
    fn segments_are_disjoint() {
        let mut s = sim(4096, 16);
        let a = s.alloc_segment();
        let b = s.alloc_segment();
        assert_ne!(a, b);
        s.touch(a, 1, false);
        s.touch(b, 1, false);
        assert_eq!(
            s.stats().fetches,
            2,
            "segment bases must map to distinct blocks"
        );
    }

    #[test]
    fn drop_cache_forces_refetch() {
        let mut s = sim(64, 8);
        let base = s.alloc_segment();
        s.touch(base, 1, true);
        s.drop_cache();
        assert_eq!(s.stats().writebacks, 1);
        s.touch(base, 1, false);
        assert_eq!(s.stats().fetches, 2);
    }

    #[test]
    fn zero_length_touch_is_free() {
        let mut s = sim(64, 2);
        let base = s.alloc_segment();
        s.touch(base, 0, true);
        assert_eq!(s.stats(), IoStats::default());
    }
}
