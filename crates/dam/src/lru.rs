//! An exact LRU cache over abstract block identifiers.
//!
//! This is the replacement policy of the DAM simulator ([`crate::IoSim`])
//! and of the user-space page cache backing [`crate::FilePages`]. It is a
//! classic slab-backed intrusive doubly-linked list plus a hash map, so
//! every operation is O(1).

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    block: u64,
    prev: usize,
    next: usize,
    dirty: bool,
}

/// Outcome of [`LruCache::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The block was already resident.
    Hit,
    /// The block was fetched; `evicted` is the block that was displaced to
    /// make room (with its dirty bit), if the cache was full.
    Miss {
        /// Evicted `(block, was_dirty)` pair, if any.
        evicted: Option<(u64, bool)>,
    },
}

/// A fixed-capacity LRU cache tracking residency and dirty bits of blocks.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

impl LruCache {
    /// Creates a cache that can hold `capacity` blocks (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU cache capacity must be at least 1");
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `block` is resident (does not affect recency).
    pub fn contains(&self, block: u64) -> bool {
        self.map.contains_key(&block)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Touches `block`, marking it dirty if `write`. Returns whether this
    /// was a hit, and on a miss which block (if any) was evicted.
    pub fn access(&mut self, block: u64, write: bool) -> Access {
        if let Some(&idx) = self.map.get(&block) {
            self.unlink(idx);
            self.push_front(idx);
            if write {
                self.nodes[idx].dirty = true;
            }
            return Access::Hit;
        }
        let evicted = if self.map.len() == self.capacity {
            let victim = self.tail;
            let node = self.nodes[victim];
            self.unlink(victim);
            self.map.remove(&node.block);
            self.free.push(victim);
            Some((node.block, node.dirty))
        } else {
            None
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                block,
                prev: NIL,
                next: NIL,
                dirty: write,
            };
            idx
        } else {
            self.nodes.push(Node {
                block,
                prev: NIL,
                next: NIL,
                dirty: write,
            });
            self.nodes.len() - 1
        };
        self.map.insert(block, idx);
        self.push_front(idx);
        Access::Miss { evicted }
    }

    /// Removes every resident block, returning the dirty ones in eviction
    /// (least-recently-used first) order.
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        let mut cur = self.tail;
        while cur != NIL {
            let node = self.nodes[cur];
            if node.dirty {
                dirty.push(node.block);
            }
            cur = node.prev;
        }
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        dirty
    }

    /// Evicts a specific block if resident, returning its dirty bit.
    pub fn evict(&mut self, block: u64) -> Option<bool> {
        let idx = self.map.remove(&block)?;
        let dirty = self.nodes[idx].dirty;
        self.unlink(idx);
        self.free.push(idx);
        Some(dirty)
    }

    /// Blocks currently resident, most-recently-used first.
    pub fn resident_blocks(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.nodes[cur].block);
            cur = self.nodes[cur].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_sequence() {
        let mut c = LruCache::new(2);
        assert_eq!(c.access(1, false), Access::Miss { evicted: None });
        assert_eq!(c.access(2, false), Access::Miss { evicted: None });
        assert_eq!(c.access(1, false), Access::Hit);
        // 2 is now LRU; inserting 3 evicts it.
        assert_eq!(
            c.access(3, false),
            Access::Miss {
                evicted: Some((2, false))
            }
        );
        assert!(c.contains(1) && c.contains(3) && !c.contains(2));
    }

    #[test]
    fn dirty_bit_reported_on_eviction() {
        let mut c = LruCache::new(1);
        c.access(7, true);
        match c.access(8, false) {
            Access::Miss { evicted } => assert_eq!(evicted, Some((7, true))),
            _ => panic!("expected miss"),
        }
    }

    #[test]
    fn flush_returns_dirty_blocks_lru_first() {
        let mut c = LruCache::new(4);
        c.access(1, true);
        c.access(2, false);
        c.access(3, true);
        let dirty = c.flush();
        assert_eq!(dirty, vec![1, 3]);
        assert!(c.is_empty());
    }

    #[test]
    fn recency_order_maintained() {
        let mut c = LruCache::new(3);
        for b in [10, 20, 30] {
            c.access(b, false);
        }
        c.access(10, false); // 10 becomes MRU
        assert_eq!(c.resident_blocks(), vec![10, 30, 20]);
    }

    #[test]
    fn explicit_evict() {
        let mut c = LruCache::new(3);
        c.access(5, true);
        assert_eq!(c.evict(5), Some(true));
        assert_eq!(c.evict(5), None);
        assert!(!c.contains(5));
    }

    /// Exhaustive check against a naive reference implementation.
    #[test]
    fn matches_naive_model_on_random_trace() {
        use std::collections::VecDeque;
        let mut c = LruCache::new(4);
        // naive model: VecDeque with MRU at front
        let mut model: VecDeque<(u64, bool)> = VecDeque::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..10_000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let block = x % 9;
            let write = x & 1 == 0;

            let model_hit = if let Some(pos) = model.iter().position(|&(b, _)| b == block) {
                let (b, d) = model.remove(pos).unwrap();
                model.push_front((b, d || write));
                true
            } else {
                let evicted = if model.len() == 4 {
                    model.pop_back()
                } else {
                    None
                };
                model.push_front((block, write));
                match (c.access(block, write), evicted) {
                    (Access::Miss { evicted: got }, want) => assert_eq!(got, want),
                    (Access::Hit, _) => panic!("model says miss, cache says hit"),
                }
                continue;
            };
            assert!(model_hit);
            assert_eq!(c.access(block, write), Access::Hit);
        }
        let mut want: Vec<u64> = model.iter().map(|&(b, _)| b).collect();
        assert_eq!(c.resident_blocks(), want);
        want.sort_unstable();
    }
}
