//! Plain-old-data serialization for file-backed storage.
//!
//! The workspace forbids `unsafe`, so file pages hold explicit
//! little-endian encodings rather than transmuted structs. Implementations
//! must round-trip exactly: `read_from(write_to(x)) == x`.

/// A fixed-size, byte-serializable value.
pub trait Pod: Copy {
    /// Encoded size in bytes.
    const BYTES: usize;

    /// Writes the value into `out` (exactly `Self::BYTES` long).
    fn write_to(&self, out: &mut [u8]);

    /// Reads a value from `buf` (exactly `Self::BYTES` long).
    fn read_from(buf: &[u8]) -> Self;
}

impl Pod for u64 {
    const BYTES: usize = 8;

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_from(buf: &[u8]) -> Self {
        u64::from_le_bytes(buf[..8].try_into().unwrap())
    }
}

impl Pod for u32 {
    const BYTES: usize = 4;

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        out[..4].copy_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_from(buf: &[u8]) -> Self {
        u32::from_le_bytes(buf[..4].try_into().unwrap())
    }
}

impl Pod for i64 {
    const BYTES: usize = 8;

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.to_le_bytes());
    }

    #[inline]
    fn read_from(buf: &[u8]) -> Self {
        i64::from_le_bytes(buf[..8].try_into().unwrap())
    }
}

impl Pod for (u64, u64) {
    const BYTES: usize = 16;

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.0.to_le_bytes());
        out[8..16].copy_from_slice(&self.1.to_le_bytes());
    }

    #[inline]
    fn read_from(buf: &[u8]) -> Self {
        (
            u64::from_le_bytes(buf[..8].try_into().unwrap()),
            u64::from_le_bytes(buf[8..16].try_into().unwrap()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Pod + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = vec![0u8; T::BYTES];
        v.write_to(&mut buf);
        assert_eq!(T::read_from(&buf), v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(0xDEAD_BEEF_u32);
        roundtrip(-42i64);
        roundtrip((7u64, u64::MAX));
    }

    #[test]
    fn encoding_is_little_endian() {
        let mut buf = [0u8; 8];
        0x0102030405060708u64.write_to(&mut buf);
        assert_eq!(buf, [8, 7, 6, 5, 4, 3, 2, 1]);
    }
}
