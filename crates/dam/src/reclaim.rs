//! Epoch-aware reclamation gates for shadow-paged stores.
//!
//! Shadow paging ([`crate::FilePages`]) never overwrites the last
//! committed image of a page: the first write in each epoch relocates
//! the page to a free physical slot, and the slot holding the previous
//! committed image is released at the *next* commit. Without readers
//! that released slot can be recycled immediately. With MVCC readers
//! pinning historical committed epochs, recycling must wait until no
//! pinned reader can still reference the slot — otherwise a reopened
//! snapshot of epoch `E` could observe pages rewritten by epoch
//! `E + k`.
//!
//! A [`ReclaimGate`] is the store's view of that constraint: a
//! callback answering "what is the oldest committed epoch any reader
//! still pins?". The store keeps superseded slots on an epoch-tagged
//! retire list and only moves them to the free list once their tag
//! falls below the gate's horizon. Stores without a gate (the default,
//! and all single-threaded use) recycle immediately, preserving the
//! pre-MVCC behaviour and block-transfer counts bit-for-bit.

use cosbt_testkit::sync::Arc;

/// Decides when superseded committed pages may be recycled.
///
/// Implemented by the snapshot/epoch layer (which knows the pinned
/// readers); consumed by [`crate::FilePages`].
pub trait ReclaimGate: Send + Sync {
    /// The oldest *store* epoch still pinned by any reader, or
    /// `u64::MAX` when nothing is pinned.
    ///
    /// A slot retired while committing store epoch `E + 1` was last
    /// referenced by the committed table of epoch `E`; it is tagged
    /// `E` and may be recycled once `E < reclaim_horizon()` — i.e.
    /// once every pinned reader is on a strictly newer epoch.
    fn reclaim_horizon(&self) -> u64;
}

/// A fixed horizon, mainly useful in tests: `FixedHorizon(u64::MAX)`
/// reclaims everything, `FixedHorizon(0)` reclaims nothing.
#[derive(Debug, Clone, Copy)]
pub struct FixedHorizon(pub u64);

impl ReclaimGate for FixedHorizon {
    fn reclaim_horizon(&self) -> u64 {
        self.0
    }
}

impl<G: ReclaimGate + ?Sized> ReclaimGate for Arc<G> {
    fn reclaim_horizon(&self) -> u64 {
        (**self).reclaim_horizon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_horizon_reports_its_value() {
        assert_eq!(FixedHorizon(7).reclaim_horizon(), 7);
        let arc: Arc<dyn ReclaimGate> = Arc::new(FixedHorizon(9));
        assert_eq!(arc.reclaim_horizon(), 9);
    }
}
