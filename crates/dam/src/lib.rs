//! Disk-access-machine (DAM) model simulator and storage substrates.
//!
//! The DAM model (Aggarwal–Vitter) assumes an internal memory of size `M`
//! organized into blocks of size `B` and an arbitrarily large external
//! memory; the cost of an algorithm is the number of *block transfers*
//! between the two. The cache-oblivious model is the same machine, but the
//! algorithm does not know `B` or `M`.
//!
//! This crate provides the three storage backends every data structure in
//! the workspace is generic over:
//!
//! * [`PlainMem`] / [`VecPages`] — ordinary heap storage, zero overhead;
//!   used for wall-clock benchmarks.
//! * [`SimMem`] / [`SimPages`] — every access is routed through an exact
//!   LRU block-cache simulator ([`IoSim`]) that counts block transfers;
//!   used to validate the paper's asymptotic bounds empirically.
//! * [`FileMem`] / [`FilePages`] — real file-backed storage behind a
//!   *bounded user-space page cache*, so the out-of-core regime (`M ≪ N`)
//!   is explicit and not hidden by the OS page cache; used for the paper's
//!   Figure 2–4 style experiments.
//!
//! Because the traits are monomorphized, `PlainMem` compiles to direct
//! slice indexing: the instrumentation is zero-cost when it is not used.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dev;
pub mod file;
pub mod format;
pub mod lru;
pub mod mem;
pub mod page;
pub mod pod;
pub mod reclaim;
pub mod sim;
pub mod stats;

pub use dev::{CrashDev, DevOp, DirectFile, RawDev, DIRECT_ALIGN};
pub use file::{ArcFileMem, ArcFilePages, FileMem, FilePages, SharedFileMem};
pub use format::OpenError;
pub use lru::LruCache;
pub use mem::{Mem, PlainMem, SimMem};
pub use page::{PageStore, SimPages, VecPages, DEFAULT_PAGE_SIZE};
pub use pod::Pod;
pub use reclaim::{FixedHorizon, ReclaimGate};
pub use sim::{new_shared_sim, CacheConfig, IoSim, SharedSim};
pub use stats::{AtomicIoStats, IoStats};
