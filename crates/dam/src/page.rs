//! Page-granular storage: the substrate of the B-tree and BRT baselines.
//!
//! A [`PageStore`] is an allocatable array of fixed-size byte pages
//! (default 4 KiB, matching the paper's B-tree blocks). Structures read and
//! modify pages in place through closures, so backends can pin a cached
//! frame rather than copy.

use crate::sim::SharedSim;

/// Default page size: 4 KiB, as in the paper's B-tree implementation.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// An allocatable array of fixed-size byte pages.
pub trait PageStore {
    /// Page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of allocated pages.
    fn num_pages(&self) -> u32;

    /// Allocates a zeroed page and returns its id.
    fn alloc_page(&mut self) -> u32;

    /// Runs `f` over the page contents read-only.
    fn with_page<R>(&mut self, id: u32, f: impl FnOnce(&[u8]) -> R) -> R;

    /// Runs `f` over the page contents mutably (marks the page dirty).
    fn with_page_mut<R>(&mut self, id: u32, f: impl FnOnce(&mut [u8]) -> R) -> R;
}

/// Plain in-memory pages; zero instrumentation overhead.
#[derive(Debug, Default)]
pub struct VecPages {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

impl VecPages {
    /// Creates an empty store with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0);
        VecPages {
            page_size,
            pages: Vec::new(),
        }
    }
}

impl PageStore for VecPages {
    #[inline]
    fn page_size(&self) -> usize {
        self.page_size
    }

    #[inline]
    fn num_pages(&self) -> u32 {
        self.pages.len() as u32
    }

    fn alloc_page(&mut self) -> u32 {
        self.pages
            .push(vec![0u8; self.page_size].into_boxed_slice());
        (self.pages.len() - 1) as u32
    }

    #[inline]
    fn with_page<R>(&mut self, id: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.pages[id as usize])
    }

    #[inline]
    fn with_page_mut<R>(&mut self, id: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.pages[id as usize])
    }
}

/// In-memory pages whose accesses are charged to a shared DAM simulator;
/// touching a page costs one block access per simulator block it spans.
#[derive(Debug)]
pub struct SimPages {
    inner: VecPages,
    sim: SharedSim,
    base: u64,
}

impl SimPages {
    /// Creates an empty simulated store.
    pub fn new(sim: SharedSim, page_size: usize) -> Self {
        let base = sim.borrow_mut().alloc_segment();
        SimPages {
            inner: VecPages::new(page_size),
            sim,
            base,
        }
    }

    /// The shared simulator handle.
    pub fn sim(&self) -> &SharedSim {
        &self.sim
    }

    #[inline]
    fn addr(&self, id: u32) -> u64 {
        self.base + id as u64 * self.inner.page_size as u64
    }
}

impl PageStore for SimPages {
    #[inline]
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    #[inline]
    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn alloc_page(&mut self) -> u32 {
        self.inner.alloc_page()
    }

    fn with_page<R>(&mut self, id: u32, f: impl FnOnce(&[u8]) -> R) -> R {
        let (addr, len) = (self.addr(id), self.page_size());
        self.sim.borrow_mut().touch(addr, len, false);
        self.inner.with_page(id, f)
    }

    fn with_page_mut<R>(&mut self, id: u32, f: impl FnOnce(&mut [u8]) -> R) -> R {
        let (addr, len) = (self.addr(id), self.page_size());
        self.sim.borrow_mut().touch(addr, len, true);
        self.inner.with_page_mut(id, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{new_shared_sim, CacheConfig};

    #[test]
    fn vec_pages_alloc_and_rw() {
        let mut p = VecPages::new(128);
        let a = p.alloc_page();
        let b = p.alloc_page();
        assert_eq!((a, b), (0, 1));
        p.with_page_mut(a, |pg| pg[0] = 0xAB);
        assert_eq!(p.with_page(a, |pg| pg[0]), 0xAB);
        assert_eq!(p.with_page(b, |pg| pg[0]), 0, "pages start zeroed");
        assert_eq!(p.num_pages(), 2);
    }

    #[test]
    fn sim_pages_count_one_transfer_per_cold_page() {
        let sim = new_shared_sim(CacheConfig::new(4096, 4));
        let mut p = SimPages::new(sim.clone(), 4096);
        for _ in 0..8 {
            p.alloc_page();
        }
        for id in 0..8 {
            p.with_page(id, |_| ());
        }
        assert_eq!(sim.borrow().stats().fetches, 8);
        // Re-touch the last 4: all hits.
        for id in 4..8 {
            p.with_page(id, |_| ());
        }
        assert_eq!(sim.borrow().stats().fetches, 8);
        assert_eq!(sim.borrow().stats().hits, 4);
    }

    #[test]
    fn sim_pages_page_smaller_than_block() {
        // Two 512-byte pages share one 4 KiB simulator block.
        let sim = new_shared_sim(CacheConfig::new(4096, 4));
        let mut p = SimPages::new(sim.clone(), 512);
        p.alloc_page();
        p.alloc_page();
        p.with_page(0, |_| ());
        p.with_page(1, |_| ());
        assert_eq!(sim.borrow().stats().fetches, 1);
    }
}
