//! The durable on-disk format: superblock and shadow-committed metadata
//! region shared by [`crate::FilePages`] and [`crate::FileMem`].
//!
//! ```text
//! byte 0                superblock (64 B, written once at create)
//! byte 64               metadata slot 0   ┐ double-buffered commit
//! byte 64 + S           metadata slot 1   ┘ region (S bytes each)
//! byte data_off         physical data pages (page_size each)
//! ```
//!
//! **Superblock** — magic, format version, page size, payload kind
//! (raw pages vs. element array), element stride, slot capacity, and an
//! FNV-1a checksum. Written exactly once when the file is created and
//! never touched again, so no crash can corrupt it after creation.
//!
//! **Metadata slots** — the commit protocol writes the store's control
//! state (page table, allocation high-water mark, and the caller's opaque
//! payload) to the *inactive* slot with a monotonically increasing epoch,
//! then issues a durability barrier. Recovery reads both slots and keeps
//! the one with the highest epoch whose header and payload checksums both
//! verify: a torn or lost slot write simply leaves the previous epoch in
//! charge. The epoch ordering *is* the active-slot flip — no separate
//! flag write is needed, so there is no window in which neither slot is
//! authoritative.

use std::path::PathBuf;

/// File magic, byte 0 of every store.
pub const MAGIC: [u8; 8] = *b"COSBTDAM";
/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;
/// Superblock size in bytes.
pub const SUPER_BYTES: usize = 64;
/// Metadata slot header size in bytes (epoch, payload length, payload
/// checksum, header checksum).
pub const SLOT_HDR_BYTES: usize = 28;
/// Default capacity of one metadata slot. Bounds the committed control
/// state: page table (4 B per logical page) plus the structure payload.
/// 256 KiB covers ~64 Ki logical pages — a 256 MiB data file at 4 KiB
/// pages — before [`OpenError::Corrupt`]-free commits would overflow.
pub const DEFAULT_SLOT_BYTES: usize = 256 * 1024;

/// Superblock payload kind: raw byte pages ([`crate::FilePages`]).
pub const KIND_PAGES: u32 = 1;
/// Superblock payload kind: flat element array ([`crate::FileMem`]).
pub const KIND_ELEM: u32 = 2;

/// 64-bit FNV-1a over `bytes` — the format's checksum. Not cryptographic;
/// it detects torn writes and stale garbage, which is all the commit
/// protocol needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Why opening a store file failed. Validation failures never modify the
/// file: open reads, checks, and hands back ownership untouched.
#[derive(Debug)]
pub enum OpenError {
    /// The underlying device errored (includes "no such file").
    Io(std::io::Error),
    /// The file does not start with the format magic — not a cosbt store.
    BadMagic,
    /// The file is a cosbt store of a format version this build does not
    /// understand.
    UnsupportedVersion(u32),
    /// The superblock's payload kind or element stride does not match
    /// what the caller asked to open (e.g. opening a page store as an
    /// element array).
    WrongKind {
        /// Kind/stride recorded in the file.
        found: (u32, u32),
        /// Kind/stride the caller expected.
        expected: (u32, u32),
    },
    /// A structural invariant failed (checksum mismatch explained by
    /// neither slot being valid is [`OpenError::NeverCommitted`] instead).
    Corrupt(String),
    /// The superblock is valid but no metadata epoch was ever committed:
    /// the store was created but never synced.
    NeverCommitted,
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Io(e) => write!(f, "I/O error: {e}"),
            OpenError::BadMagic => write!(f, "not a cosbt store (bad magic)"),
            OpenError::UnsupportedVersion(v) => write!(
                f,
                "unsupported on-disk format version {v} (this build understands \
                 {FORMAT_VERSION})"
            ),
            OpenError::WrongKind { found, expected } => write!(
                f,
                "payload kind mismatch: file holds kind {} stride {}, caller expected kind {} \
                 stride {}",
                found.0, found.1, expected.0, expected.1
            ),
            OpenError::Corrupt(what) => write!(f, "corrupt store: {what}"),
            OpenError::NeverCommitted => {
                write!(f, "store was created but never committed (sync the Db)")
            }
        }
    }
}

impl std::error::Error for OpenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OpenError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OpenError {
    fn from(e: std::io::Error) -> Self {
        OpenError::Io(e)
    }
}

impl OpenError {
    /// Whether this error means "the file does not exist" — the case
    /// `open_or_create` falls back to creation on.
    pub fn is_missing(&self) -> bool {
        matches!(self, OpenError::Io(e) if e.kind() == std::io::ErrorKind::NotFound)
    }
}

/// The decoded superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// On-disk format version.
    pub version: u32,
    /// Page size in bytes.
    pub page_size: u32,
    /// Payload kind ([`KIND_PAGES`] or [`KIND_ELEM`]).
    pub kind: u32,
    /// Element stride for [`KIND_ELEM`] (0 for raw pages).
    pub elem_bytes: u32,
    /// Capacity of one metadata slot in bytes.
    pub slot_bytes: u32,
}

impl Superblock {
    /// Encodes the superblock into its 64-byte on-disk form.
    pub fn encode(&self) -> [u8; SUPER_BYTES] {
        let mut out = [0u8; SUPER_BYTES];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&self.version.to_le_bytes());
        out[12..16].copy_from_slice(&self.page_size.to_le_bytes());
        out[16..20].copy_from_slice(&self.kind.to_le_bytes());
        out[20..24].copy_from_slice(&self.elem_bytes.to_le_bytes());
        out[24..28].copy_from_slice(&self.slot_bytes.to_le_bytes());
        let ck = fnv1a(&out[..56]);
        out[56..64].copy_from_slice(&ck.to_le_bytes());
        out
    }

    /// Decodes and validates a superblock read from byte 0 of a file.
    /// `got` is the number of bytes actually read into `buf`.
    pub fn decode(buf: &[u8; SUPER_BYTES], got: usize) -> Result<Superblock, OpenError> {
        if got < 8 || buf[0..8] != MAGIC {
            return Err(OpenError::BadMagic);
        }
        if got < SUPER_BYTES {
            return Err(OpenError::Corrupt("truncated superblock".into()));
        }
        let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(OpenError::UnsupportedVersion(version));
        }
        let ck = u64::from_le_bytes(buf[56..64].try_into().unwrap());
        if ck != fnv1a(&buf[..56]) {
            return Err(OpenError::Corrupt("superblock checksum mismatch".into()));
        }
        let sb = Superblock {
            version,
            page_size: u32_at(12),
            kind: u32_at(16),
            elem_bytes: u32_at(20),
            slot_bytes: u32_at(24),
        };
        if sb.page_size == 0 || sb.slot_bytes as usize <= SLOT_HDR_BYTES {
            return Err(OpenError::Corrupt("nonsensical superblock geometry".into()));
        }
        Ok(sb)
    }

    /// Byte offset of metadata slot `i` (0 or 1).
    pub fn slot_off(&self, i: usize) -> u64 {
        SUPER_BYTES as u64 + i as u64 * self.slot_bytes as u64
    }

    /// Byte offset of the first physical data page: the header region
    /// rounded up to a page boundary.
    pub fn data_off(&self) -> u64 {
        let hdr = SUPER_BYTES as u64 + 2 * self.slot_bytes as u64;
        hdr.div_ceil(self.page_size as u64) * self.page_size as u64
    }
}

/// Encodes one metadata slot: header (epoch, length, checksums) followed
/// by the payload. Fails if the payload exceeds the slot capacity.
pub fn encode_slot(epoch: u64, payload: &[u8], slot_bytes: usize) -> std::io::Result<Vec<u8>> {
    if SLOT_HDR_BYTES + payload.len() > slot_bytes {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!(
                "metadata payload ({} B) exceeds the slot capacity ({} B): the store holds \
                 more pages than its metadata region can map",
                payload.len(),
                slot_bytes - SLOT_HDR_BYTES
            ),
        ));
    }
    let mut out = Vec::with_capacity(SLOT_HDR_BYTES + payload.len());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    let hdr_ck = fnv1a(&out[..20]);
    out.extend_from_slice(&hdr_ck.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decodes one metadata slot; returns `(epoch, payload)` if the header
/// and payload both verify, `None` for a never-written, torn, or stale
/// slot (the recovery path treats all three the same way: ignore it).
pub fn decode_slot(buf: &[u8]) -> Option<(u64, Vec<u8>)> {
    if buf.len() < SLOT_HDR_BYTES {
        return None;
    }
    let hdr_ck = u64::from_le_bytes(buf[20..28].try_into().unwrap());
    if hdr_ck != fnv1a(&buf[..20]) {
        return None;
    }
    let epoch = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    if epoch == 0 {
        return None;
    }
    let len = u32::from_le_bytes(buf[8..12].try_into().unwrap()) as usize;
    if SLOT_HDR_BYTES + len > buf.len() {
        return None;
    }
    let payload = &buf[SLOT_HDR_BYTES..SLOT_HDR_BYTES + len];
    let pay_ck = u64::from_le_bytes(buf[12..20].try_into().unwrap());
    if pay_ck != fnv1a(payload) {
        return None;
    }
    Some((epoch, payload.to_vec()))
}

/// Shared naming convention for auxiliary files next to a store at
/// `base` (e.g. the shard manifest). Kept here so every layer derives
/// the same names.
pub fn sibling_path(base: &std::path::Path, suffix: &str) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(suffix);
    PathBuf::from(os)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> Superblock {
        Superblock {
            version: FORMAT_VERSION,
            page_size: 4096,
            kind: KIND_ELEM,
            elem_bytes: 32,
            slot_bytes: DEFAULT_SLOT_BYTES as u32,
        }
    }

    #[test]
    fn superblock_round_trips() {
        let s = sb();
        let enc = s.encode();
        assert_eq!(Superblock::decode(&enc, SUPER_BYTES).unwrap(), s);
    }

    #[test]
    fn superblock_rejects_bad_magic_version_and_checksum() {
        let mut enc = sb().encode();
        let mut wrong = enc;
        wrong[0] = b'X';
        assert!(matches!(
            Superblock::decode(&wrong, SUPER_BYTES),
            Err(OpenError::BadMagic)
        ));
        assert!(matches!(
            Superblock::decode(&enc, 30),
            Err(OpenError::Corrupt(_))
        ));
        let mut vers = enc;
        vers[8] = 99;
        assert!(matches!(
            Superblock::decode(&vers, SUPER_BYTES),
            Err(OpenError::UnsupportedVersion(99))
        ));
        enc[13] ^= 1; // flip a page_size bit without fixing the checksum
        assert!(matches!(
            Superblock::decode(&enc, SUPER_BYTES),
            Err(OpenError::Corrupt(_))
        ));
    }

    #[test]
    fn slots_round_trip_and_reject_corruption() {
        let payload = b"control state".to_vec();
        let enc = encode_slot(7, &payload, 1024).unwrap();
        assert_eq!(decode_slot(&enc), Some((7, payload.clone())));
        // Epoch 0 marks a never-written slot even if checksums pass.
        let zero = encode_slot(0, &payload, 1024).unwrap();
        assert_eq!(decode_slot(&zero), None);
        // Any torn prefix fails one of the checksums.
        for cut in 0..enc.len() {
            assert_eq!(decode_slot(&enc[..cut]), None, "torn at {cut}");
        }
        let mut flipped = enc.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert_eq!(decode_slot(&flipped), None, "payload bit flip detected");
        // Overflow is a hard error, not silent truncation.
        assert!(encode_slot(1, &vec![0u8; 1024], 64).is_err());
    }

    #[test]
    fn data_region_is_page_aligned_past_the_header() {
        let s = sb();
        assert_eq!(s.data_off() % s.page_size as u64, 0);
        assert!(s.data_off() >= SUPER_BYTES as u64 + 2 * s.slot_bytes as u64);
    }
}
