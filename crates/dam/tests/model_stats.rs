//! Model-checked exactly-once accounting for [`AtomicIoStats`]: a
//! `take()` racing concurrent increments must attribute every
//! increment to exactly one window — never lost, never double-counted
//! — in every interleaving up to the preemption bound.
//!
//! Compiled only under `--cfg cosbt_model` (see `.github/workflows/ci.yml`
//! for the invocation and expected runtimes).
#![cfg(cosbt_model)]

use cosbt_dam::{AtomicIoStats, IoStats};
use cosbt_testkit::model::{check_opts, ModelOpts};
use cosbt_testkit::sync::{thread, Arc};

/// Two increments race a mid-stream `take()` plus a post-join `take()`:
/// the two windows must sum to exactly the increments performed.
#[test]
fn take_is_exactly_once_against_racing_increments() {
    let report = check_opts(ModelOpts::bound(2), || {
        let stats = Arc::new(AtomicIoStats::new());
        let s = Arc::clone(&stats);
        let writer = thread::spawn(move || {
            s.inc_fetches();
            s.inc_writebacks();
            s.inc_fetches();
        });
        // A window boundary cut at an arbitrary point in the stream.
        let mid = stats.take();
        writer.join().unwrap();
        let rest = stats.take();
        let total = mid + rest;
        assert_eq!(total.fetches, 2, "fetches lost or double-counted");
        assert_eq!(total.writebacks, 1, "writebacks lost or double-counted");
        // And the accumulator is empty: both windows drained it.
        assert_eq!(stats.snapshot(), IoStats::default());
    });
    assert!(
        report.preemption_bound >= 2 && report.schedules > 1,
        "expected a real exploration: {report:?}"
    );
}

/// `snapshot()` never resets: concurrent snapshots racing a writer are
/// monotone (each counter only grows) and the final post-join snapshot
/// sees every increment.
#[test]
fn snapshot_is_monotone_and_complete() {
    check_opts(ModelOpts::bound(2), || {
        let stats = Arc::new(AtomicIoStats::new());
        let s = Arc::clone(&stats);
        let writer = thread::spawn(move || {
            s.inc_accesses();
            s.inc_hits();
            s.inc_accesses();
        });
        let a = stats.snapshot();
        let b = stats.snapshot();
        assert!(
            b.accesses >= a.accesses && b.hits >= a.hits,
            "snapshot went backwards: {a:?} then {b:?}"
        );
        writer.join().unwrap();
        let fin = stats.snapshot();
        assert_eq!(fin.accesses, 2);
        assert_eq!(fin.hits, 1);
    });
}
