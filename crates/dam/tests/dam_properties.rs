//! Property tests of the DAM substrate: the simulator against an oracle
//! cost model, the file store against a plain-memory mirror, and the
//! seek model's stream tracking.

use cosbt_dam::{
    new_shared_sim, CacheConfig, FilePages, LruCache, Mem, PageStore, PlainMem, SimMem,
};
use cosbt_testkit::{check_cases, Rng};

/// SimMem behaves exactly like PlainMem content-wise, whatever the
/// cache geometry.
#[test]
fn sim_mem_mirrors_plain_mem() {
    check_cases("sim_mem_mirrors_plain_mem", 64, |rng: &mut Rng| {
        let blk_pow = rng.range(4, 10) as u32;
        let blocks = 1 + rng.index(15);
        let len = 1 + rng.index(299);
        let sim = new_shared_sim(CacheConfig::new(1 << blk_pow, blocks));
        let mut a: SimMem<u64> = SimMem::new(sim);
        let mut b: PlainMem<u64> = PlainMem::new();
        a.resize(64, 0);
        b.resize(64, 0);
        for _ in 0..len {
            let (write, i, v) = (rng.flag(), rng.index(64), rng.next_u64());
            if write {
                a.set(i, v);
                b.set(i, v);
            } else {
                assert_eq!(a.get(i), b.get(i));
            }
        }
        for i in 0..64 {
            assert_eq!(a.get(i), b.get(i));
        }
    });
}

/// Sequential scans cost exactly ceil(len/B) fetches on a cold cache.
#[test]
fn scan_cost_exact() {
    check_cases("scan_cost_exact", 64, |rng: &mut Rng| {
        let len = 1 + rng.index(1999);
        let block = 1usize << rng.range(4, 9);
        let sim = new_shared_sim(CacheConfig::new(block, 4));
        let mut m: SimMem<u8> = SimMem::new(sim.clone());
        m.resize(len, 0);
        for i in 0..len {
            let _ = m.get(i);
        }
        let want = len.div_ceil(block) as u64;
        assert_eq!(sim.borrow().stats().fetches, want);
    });
}

/// LRU capacity is respected: residency never exceeds capacity, and a
/// working set of at most `cap` distinct blocks never misses twice.
#[test]
fn lru_capacity_and_inclusion() {
    check_cases("lru_capacity_and_inclusion", 64, |rng: &mut Rng| {
        let cap = 1 + rng.index(11);
        let trace = rng.vec_below(1, 400, 8);
        let mut c = LruCache::new(cap);
        let distinct: std::collections::HashSet<u64> = trace.iter().copied().collect();
        let mut misses = 0;
        for &b in &trace {
            if matches!(c.access(b, false), cosbt_dam::lru::Access::Miss { .. }) {
                misses += 1;
            }
            assert!(c.len() <= cap);
        }
        if distinct.len() <= cap {
            assert_eq!(misses as usize, distinct.len(), "only compulsory misses");
        }
    });
}

/// The file store round-trips arbitrary page writes through arbitrary
/// cache pressure.
#[test]
fn file_pages_mirror_memory() {
    check_cases("file_pages_mirror_memory", 64, |rng: &mut Rng| {
        let cache = 1 + rng.index(7);
        let writes = 1 + rng.index(199);
        let mut path = std::env::temp_dir();
        path.push(format!("cosbt-prop-{}-{}", std::process::id(), cache));
        let mut fp = FilePages::create(&path, 64, cache).unwrap();
        let mut mirror = vec![[0u8; 64]; 16];
        for _ in 0..16 {
            fp.alloc_page();
        }
        for _ in 0..writes {
            let (pg, off, val) = (rng.below(16) as u32, rng.index(64), rng.below(256) as u8);
            fp.with_page_mut(pg, |p| p[off] = val);
            mirror[pg as usize][off] = val;
        }
        fp.drop_cache().unwrap();
        for pg in 0..16u32 {
            let got = fp.with_page(pg, |p| p.to_vec());
            assert_eq!(&got[..], &mirror[pg as usize][..]);
        }
        std::fs::remove_file(path).ok();
    });
}

#[test]
fn seek_model_distinguishes_patterns() {
    // Sequential writes: ~1 seek. Random writes over a large span with a
    // tiny cache: ~1 seek per page.
    let mut path = std::env::temp_dir();
    path.push(format!("cosbt-seeks-{}", std::process::id()));
    let mut fp = FilePages::create(&path, 64, 2).unwrap();
    for _ in 0..512 {
        fp.alloc_page();
    }
    for pg in 0..512u32 {
        fp.with_page_mut(pg, |p| p[0] = 1);
    }
    fp.sync().unwrap();
    let seq_seeks = fp.stats().seeks;
    assert!(
        seq_seeks <= 8,
        "sequential fill should barely seek: {seq_seeks}"
    );

    let mut x = 1u64;
    for _ in 0..512 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pg = (x % 512) as u32;
        fp.with_page_mut(pg, |p| p[1] = 2);
    }
    fp.sync().unwrap();
    let rnd_seeks = fp.stats().seeks - seq_seeks;
    assert!(
        rnd_seeks > 256,
        "random access should seek on most pages: {rnd_seeks}"
    );
    std::fs::remove_file(path).ok();
}
