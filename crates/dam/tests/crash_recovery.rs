//! Exhaustive crash injection over the shadow-commit protocol.
//!
//! The format claims: a power cut or torn write at *any* journal position
//! recovers to exactly the last committed `(pages, payload)` state —
//! never a mixture, never partial metadata. These tests cut the power at
//! every position of a [`CrashDev`] journal spanning two commits (plus
//! torn-final-write and lost-unsynced-write variants) and verify the
//! recovered store equals one of the committed snapshots bit-for-bit.

use cosbt_dam::dev::CrashDev;
use cosbt_dam::format::{KIND_PAGES, SLOT_HDR_BYTES};
use cosbt_dam::{DirectFile, FileMem, FilePages, Mem, OpenError, PageStore, RawDev, DIRECT_ALIGN};
use cosbt_testkit::Rng;

const PAGE: usize = 256;
const CACHE: usize = 3;

/// Full logical content of a pages store.
fn pages_snapshot<D: cosbt_dam::RawDev>(fp: &mut FilePages<D>) -> Vec<Vec<u8>> {
    (0..fp.num_pages())
        .map(|id| fp.with_page(id, |pg| pg.to_vec()))
        .collect()
}

/// What a crash image recovered to.
enum Recovery {
    /// The crash predates a durable superblock: `create` itself is not
    /// crash-atomic (documented), so the image is not a store at all.
    /// Only legal for cuts inside the superblock write+sync prologue.
    PreStore,
    /// Valid store, no committed epoch yet.
    NeverCommitted,
    /// A committed `(epoch, payload, pages)` state.
    State(u64, Vec<u8>, Vec<Vec<u8>>),
}

/// Opens a crash image; any failure outside the recognized crash windows
/// is a violated guarantee and panics.
fn recover(image: Vec<u8>) -> Recovery {
    match FilePages::open_on(CrashDev::from_image(image), CACHE, (KIND_PAGES, 0)) {
        Ok((mut fp, payload)) => {
            let epoch = fp.epoch();
            let pages = pages_snapshot(&mut fp);
            Recovery::State(epoch, payload, pages)
        }
        Err(OpenError::NeverCommitted) => Recovery::NeverCommitted,
        Err(OpenError::BadMagic) => Recovery::PreStore,
        Err(OpenError::Corrupt(msg)) if msg.contains("superblock") => Recovery::PreStore,
        Err(e) => panic!("recovery must never fail structurally: {e}"),
    }
}

/// Journal positions covering the superblock write + barrier emitted by
/// `create`; the only window where an image may fail to parse at all.
const SUPERBLOCK_PROLOGUE: usize = 2;

struct Committed {
    payload: Vec<u8>,
    pages: Vec<Vec<u8>>,
}

/// The harness: two epochs of writes + commits, then a crash at every
/// journal position (with torn variants), asserting each recovery is
/// exactly one committed state.
#[test]
fn power_cut_at_every_point_recovers_a_committed_state() {
    let dev = CrashDev::new();
    let mut fp = FilePages::create_on(dev.clone(), PAGE, CACHE).unwrap();
    let mut rng = Rng::new(0xC0_57A7E);

    // Epoch 1: allocate and fill pages, spilling through the tiny cache.
    for _ in 0..12 {
        fp.alloc_page();
    }
    for id in 0..12u32 {
        let b = rng.below(256) as u8;
        fp.with_page_mut(id, |pg| pg.fill(b));
    }
    let state1 = {
        fp.commit_meta(b"epoch-one control state").unwrap();
        Committed {
            payload: b"epoch-one control state".to_vec(),
            pages: pages_snapshot(&mut fp),
        }
    };
    let first_commit_end = dev.journal_len();

    // Epoch 2: overwrite half the pages (exercising shadow remaps), grow
    // two more, commit a different payload.
    for id in (0..12u32).step_by(2) {
        let b = rng.below(256) as u8;
        fp.with_page_mut(id, |pg| {
            pg.fill(b);
            pg[0] = 0xEE;
        });
    }
    for _ in 0..2 {
        let id = fp.alloc_page();
        fp.with_page_mut(id, |pg| pg.fill(0x55));
    }
    fp.commit_meta(b"epoch-two!").unwrap();
    let state2 = Committed {
        payload: b"epoch-two!".to_vec(),
        pages: pages_snapshot(&mut fp),
    };
    let journal_len = dev.journal_len();
    drop(fp);

    let check = |what: &str, cut: usize, recovered: Recovery| match recovered {
        Recovery::PreStore => assert!(
            cut < SUPERBLOCK_PROLOGUE,
            "{what} at {cut}: unparseable store after the superblock was durable"
        ),
        Recovery::NeverCommitted => assert!(
            cut < first_commit_end,
            "{what} at {cut}: never-committed after the first commit was durable"
        ),
        Recovery::State(epoch, payload, pages) => {
            let want = match epoch {
                1 => &state1,
                2 => &state2,
                e => panic!("{what} at {cut}: impossible epoch {e}"),
            };
            assert_eq!(payload, want.payload, "{what} at {cut}: payload mixture");
            assert_eq!(
                pages.len(),
                want.pages.len(),
                "{what} at {cut}: page-count mixture"
            );
            for (i, (got, exp)) in pages.iter().zip(&want.pages).enumerate() {
                assert_eq!(
                    got, exp,
                    "{what} at {cut}: page {i} mixture (epoch {epoch})"
                );
            }
        }
    };

    for cut in 0..=journal_len {
        check("clean cut", cut, recover(dev.image_at(cut, None)));
        // Torn final write: 1 byte, half, all-but-one.
        for torn in [1usize, PAGE / 2, SLOT_HDR_BYTES + 3] {
            check("torn cut", cut, recover(dev.image_at(cut, Some(torn))));
        }
    }
    // The final image must be exactly epoch 2.
    let Recovery::State(epoch, payload, _) = recover(dev.snapshot()) else {
        panic!("final image must recover a committed state");
    };
    assert_eq!((epoch, payload.as_slice()), (2, state2.payload.as_slice()));
}

/// Un-synced writes may be lost in any subset (write reordering below a
/// barrier): recovery must still land on a committed state.
#[test]
fn lost_unsynced_writes_recover_a_committed_state() {
    let dev = CrashDev::new();
    let mut fp = FilePages::create_on(dev.clone(), PAGE, CACHE).unwrap();
    for _ in 0..8 {
        fp.alloc_page();
    }
    for id in 0..8u32 {
        fp.with_page_mut(id, |pg| pg.fill(id as u8 + 1));
    }
    fp.commit_meta(b"A").unwrap();
    let first_commit_end = dev.journal_len();
    let state_a = pages_snapshot(&mut fp);
    for id in 0..8u32 {
        fp.with_page_mut(id, |pg| pg.fill(0xB0 + id as u8));
    }
    fp.commit_meta(b"B").unwrap();
    let state_b = pages_snapshot(&mut fp);
    let journal_len = dev.journal_len();
    drop(fp);

    let mut rng = Rng::new(7);
    for trial in 0..64 {
        let cut = 1 + rng.index(journal_len);
        let image = dev.image_with_loss(cut, &mut |_| rng.flag());
        match recover(image) {
            Recovery::PreStore => {
                assert!(cut < SUPERBLOCK_PROLOGUE, "trial {trial} cut {cut}")
            }
            Recovery::NeverCommitted => {
                assert!(cut < first_commit_end, "trial {trial} cut {cut}")
            }
            Recovery::State(epoch, payload, pages) => {
                let (want_p, want_pages): (&[u8], _) = match epoch {
                    1 => (b"A", &state_a),
                    2 => (b"B", &state_b),
                    e => panic!("trial {trial}: impossible epoch {e}"),
                };
                assert_eq!(payload, want_p, "trial {trial} cut {cut}");
                assert_eq!(&pages, want_pages, "trial {trial} cut {cut}: data mixture");
            }
        }
    }
}

/// The element-array wrapper rides the same protocol: its committed
/// length and payload recover exactly.
#[test]
fn file_mem_crash_recovery_round_trips() {
    let dev = CrashDev::new();
    let mut fm: FileMem<u64, CrashDev> = FileMem::create_on(dev.clone(), PAGE, CACHE, 8).unwrap();
    fm.resize(40, 0);
    for i in 0..40 {
        fm.set(i, i as u64 + 100);
    }
    fm.commit_meta(b"len40").unwrap();
    fm.resize(64, 0);
    for i in 0..64 {
        fm.set(i, i as u64 + 500);
    }
    fm.commit_meta(b"len64").unwrap();
    let journal_len = dev.journal_len();
    drop(fm);

    for cut in 0..=journal_len {
        let image = dev.image_at(cut, None);
        match FileMem::<u64, CrashDev>::open_on(CrashDev::from_image(image), CACHE, 8) {
            Err(OpenError::NeverCommitted) => {}
            Err(OpenError::BadMagic) if cut < SUPERBLOCK_PROLOGUE => {}
            Err(e) => panic!("cut {cut}: {e}"),
            Ok((mut fm, payload)) => match payload.as_slice() {
                b"len40" => {
                    assert_eq!(fm.len(), 40, "cut {cut}");
                    for i in 0..40 {
                        assert_eq!(fm.get_mut(i), i as u64 + 100, "cut {cut} elem {i}");
                    }
                }
                b"len64" => {
                    assert_eq!(fm.len(), 64, "cut {cut}");
                    for i in 0..64 {
                        assert_eq!(fm.get_mut(i), i as u64 + 500, "cut {cut} elem {i}");
                    }
                }
                other => panic!("cut {cut}: payload mixture {other:?}"),
            },
        }
    }
}

/// Bounded-epoch recovery: the double buffering keeps the previous epoch
/// available, so a coordinator can roll a store back one commit — and a
/// stale bound (both slots newer) is a loud error, not a guess.
#[test]
fn open_bounded_rolls_back_to_the_requested_epoch() {
    let dev = CrashDev::new();
    let mut fp = FilePages::create_on(dev.clone(), PAGE, CACHE).unwrap();
    let id = fp.alloc_page();
    fp.with_page_mut(id, |pg| pg.fill(1));
    fp.commit_meta(b"e1").unwrap();
    fp.with_page_mut(id, |pg| pg.fill(2));
    fp.commit_meta(b"e2").unwrap();
    drop(fp);

    let open_at = |bound: Option<u64>| {
        FilePages::open_bounded(
            CrashDev::from_image(dev.snapshot()),
            CACHE,
            (KIND_PAGES, 0),
            bound,
        )
    };
    let (mut fp, payload) = open_at(None).unwrap();
    assert_eq!((fp.epoch(), payload.as_slice()), (2, b"e2".as_slice()));
    assert_eq!(fp.with_page(id, |pg| pg[0]), 2);
    let (mut fp, payload) = open_at(Some(1)).unwrap();
    assert_eq!((fp.epoch(), payload.as_slice()), (1, b"e1".as_slice()));
    assert_eq!(fp.with_page(id, |pg| pg[0]), 1);
    // Epoch 2 also satisfies a bound of 3.
    assert_eq!(open_at(Some(3)).unwrap().0.epoch(), 2);
    // Both slots newer than the bound: loud structural error.
    assert!(matches!(open_at(Some(0)), Err(OpenError::Corrupt(_))));
}

/// After crash recovery, slots beyond the committed high-water mark may
/// hold stale synced-but-uncommitted bytes; `alloc_page` must still hand
/// out zeroed pages.
#[test]
fn recovered_store_zeroes_stale_slots_on_alloc() {
    let dev = CrashDev::new();
    let mut fp = FilePages::create_on(dev.clone(), PAGE, CACHE).unwrap();
    let id = fp.alloc_page();
    fp.with_page_mut(id, |pg| pg.fill(0xAA));
    fp.commit_meta(b"").unwrap();
    // Dirty the page again and sync WITHOUT committing: the writeback
    // relocates to an uncommitted slot, durably full of 0xBB.
    fp.with_page_mut(id, |pg| pg.fill(0xBB));
    fp.sync().unwrap();
    drop(fp);

    let (mut fp, _) =
        FilePages::open_on(CrashDev::from_image(dev.snapshot()), CACHE, (KIND_PAGES, 0)).unwrap();
    assert_eq!(fp.with_page(id, |pg| pg[0]), 0xAA, "committed state");
    // The next allocation lands exactly on the stale 0xBB slot; the
    // zero-fill contract must hold anyway.
    let fresh = fp.alloc_page();
    assert_eq!(
        fp.with_page(fresh, |pg| pg.to_vec()),
        vec![0u8; PAGE],
        "freshly allocated pages read as zeros even over a stale slot"
    );
}

/// Writes `image` to a fresh real file through a [`DirectFile`] device:
/// the block-aligned body goes through the `O_DIRECT` bounce-buffer
/// path, the unaligned tail through the buffered fallback, covering
/// both planes of the device. Falls back (with the device's one-time
/// warning) where the filesystem refuses `O_DIRECT` — the assertions
/// below hold either way.
fn write_image_direct(path: &std::path::Path, image: &[u8]) -> DirectFile {
    let mut df = DirectFile::create(path, true).expect("create direct scratch file");
    let body = image.len() - image.len() % DIRECT_ALIGN;
    for off in (0..body).step_by(DIRECT_ALIGN) {
        df.write_all_at(&image[off..off + DIRECT_ALIGN], off as u64)
            .expect("aligned image chunk");
    }
    if body < image.len() {
        df.write_all_at(&image[body..], body as u64)
            .expect("unaligned image tail");
    }
    df.sync().expect("sync image");
    df
}

/// Recovery of `image` through a real `O_DIRECT` file device.
fn recover_direct(path: &std::path::Path, image: &[u8]) -> Recovery {
    let df = write_image_direct(path, image);
    match FilePages::open_on(df, CACHE, (KIND_PAGES, 0)) {
        Ok((mut fp, payload)) => {
            let epoch = fp.epoch();
            let pages = pages_snapshot(&mut fp);
            Recovery::State(epoch, payload, pages)
        }
        Err(OpenError::NeverCommitted) => Recovery::NeverCommitted,
        Err(OpenError::BadMagic) => Recovery::PreStore,
        Err(OpenError::Corrupt(msg)) if msg.contains("superblock") => Recovery::PreStore,
        Err(e) => panic!("direct-device recovery must never fail structurally: {e}"),
    }
}

/// The `O_DIRECT` device is bit-transparent under crash recovery: every
/// crash image of a two-epoch run, replayed onto a real file through
/// [`DirectFile`] (aligned bounce-buffered body + unaligned buffered
/// tail), recovers to exactly the same state the in-memory [`CrashDev`]
/// oracle recovers to. 4 KiB store pages keep page traffic on the
/// aligned plane, so recovery itself reads through `O_DIRECT` where the
/// filesystem grants it.
#[test]
fn o_direct_device_recovers_every_crash_image_like_the_oracle() {
    const DPAGE: usize = DIRECT_ALIGN;
    let dev = CrashDev::new();
    let mut fp = FilePages::create_on(dev.clone(), DPAGE, CACHE).unwrap();
    let mut rng = Rng::new(0xD1_12EC7);
    for _ in 0..8 {
        fp.alloc_page();
    }
    for id in 0..8u32 {
        let b = rng.below(256) as u8;
        fp.with_page_mut(id, |pg| pg.fill(b));
    }
    fp.commit_meta(b"direct-epoch-one").unwrap();
    for id in (0..8u32).step_by(2) {
        let b = rng.below(256) as u8;
        fp.with_page_mut(id, |pg| pg.fill(b));
    }
    fp.commit_meta(b"direct-epoch-two").unwrap();
    let journal_len = dev.journal_len();
    drop(fp);

    let dir = std::env::temp_dir();
    let path = dir.join(format!("cosbt-odirect-crash-{}.dat", std::process::id()));
    for cut in 0..=journal_len {
        // Clean cut at every position; a torn final write every fourth.
        let mut images = vec![dev.image_at(cut, None)];
        if cut % 4 == 0 {
            images.push(dev.image_at(cut, Some(DPAGE / 2)));
        }
        for image in images {
            let oracle = recover(image.clone());
            let direct = recover_direct(&path, &image);
            match (oracle, direct) {
                (Recovery::PreStore, Recovery::PreStore) => {}
                (Recovery::NeverCommitted, Recovery::NeverCommitted) => {}
                (Recovery::State(e1, p1, g1), Recovery::State(e2, p2, g2)) => {
                    assert_eq!(e1, e2, "cut {cut}: epoch diverged on the direct device");
                    assert_eq!(p1, p2, "cut {cut}: payload diverged on the direct device");
                    assert_eq!(g1, g2, "cut {cut}: pages diverged on the direct device");
                }
                _ => panic!("cut {cut}: recovery class diverged between oracle and direct device"),
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

/// The metadata slot caps the committable page table; overflowing it is
/// a loud, typed error (every later commit fails the same way), and a
/// larger slot chosen at create lifts the cap. The capacity is recorded
/// in the superblock, so reopen honours it.
#[test]
fn slot_capacity_bounds_commits_and_is_configurable() {
    use cosbt_dam::format::SLOT_HDR_BYTES;
    // Minimal slot: header + ~1 KiB of table = ~250 pages.
    let slot = SLOT_HDR_BYTES + 1024;
    let mut fp = FilePages::create_on_sized(CrashDev::new(), 64, CACHE, slot).unwrap();
    let cap_pages = (slot - SLOT_HDR_BYTES - 8) / 4;
    for _ in 0..cap_pages {
        fp.alloc_page();
    }
    fp.commit_meta(b"").unwrap();
    fp.alloc_page();
    let err = fp.commit_meta(b"").unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // The failure is persistent but the committed state is intact.
    assert!(fp.commit_meta(b"").is_err());
    assert_eq!(fp.epoch(), 1);

    // Four times the slot handles four times the pages.
    let dev = CrashDev::new();
    let mut fp = FilePages::create_on_sized(dev.clone(), 64, CACHE, 4 * slot).unwrap();
    for _ in 0..4 * cap_pages {
        fp.alloc_page();
    }
    fp.commit_meta(b"big").unwrap();
    drop(fp);
    let (fp, payload) =
        FilePages::open_on(CrashDev::from_image(dev.snapshot()), CACHE, (KIND_PAGES, 0)).unwrap();
    assert_eq!(payload, b"big");
    assert_eq!(fp.num_pages() as usize, 4 * cap_pages);
}
