//! Benchmark harness utilities: workload generators, dictionary
//! constructors over each storage backend, and measurement loops that
//! print the same series the paper's figures plot.
//!
//! Every figure/table of the paper's Section 4 and every bound of
//! Sections 2–3 has a bench target in `benches/` built from these pieces;
//! the `figures` binary drives full parameter sweeps. CSV output lands in
//! `results/`; the README lists the bench targets.

pub mod measure;
pub mod setup;
pub mod workloads;

pub use measure::{Checkpoint, Series};
pub use setup::{DictKind, OutOfCore};
pub use workloads::{ascending, descending, random_keys, search_probes};

/// Scale knob: `COSBT_SCALE=full` enlarges every experiment; default is a
/// laptop-quick configuration.
pub fn full_scale() -> bool {
    std::env::var("COSBT_SCALE")
        .map(|v| v == "full")
        .unwrap_or(false)
}

/// Picks `quick` or `full` based on [`full_scale`].
pub fn scaled(quick: u64, full: u64) -> u64 {
    if full_scale() {
        full
    } else {
        quick
    }
}
