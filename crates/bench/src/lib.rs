//! Benchmark harness: workload generators, dictionary constructors over
//! each storage backend, measurement loops for the paper's figures, and
//! the scenario subsystem — mixed read/write workloads with latency
//! percentiles, per-phase block-transfer counts, and a machine-readable
//! `BENCH_*.json` trajectory gated by `bench compare`.
//!
//! Every figure/table of the paper's Section 4 and every bound of
//! Sections 2–3 has a bench target in `benches/` built from these pieces.
//! The `bench` binary is the one entry point: `bench run` executes a
//! scenario × matrix cell, `bench compare` is the CI perf gate, and
//! `bench figures` drives the paper's parameter sweeps. CSV/JSON output
//! lands in `results/`; the README's "Benchmarking" section is the tour.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod histogram;
pub mod json;
pub mod measure;
pub mod scenario;
pub mod setup;
pub mod workloads;

pub use histogram::Histogram;
pub use measure::{Checkpoint, Series};
pub use scenario::{Scenario, ScenarioReport, SCENARIOS, SCHEMA_VERSION};
pub use setup::{DictKind, OutOfCore};
pub use workloads::{
    ascending, descending, random_keys, search_probes, KeyDist, Op, OpMix, OpStream,
};

/// Scale knob: `COSBT_SCALE=full` enlarges every experiment; default is a
/// laptop-quick configuration.
pub fn full_scale() -> bool {
    std::env::var("COSBT_SCALE")
        .map(|v| v == "full")
        .unwrap_or(false)
}

/// Picks `quick` or `full` based on [`full_scale`].
pub fn scaled(quick: u64, full: u64) -> u64 {
    if full_scale() {
        full
    } else {
        quick
    }
}
