//! A fixed-bucket, HDR-style latency histogram with no dependencies.
//!
//! Latencies span six orders of magnitude (a cache-hit `get` is tens of
//! nanoseconds; a COLA merge cascade that rewrites the largest level can
//! stall an insert for milliseconds), so a linear histogram either wastes
//! memory or loses the tail. This is the standard log-linear compromise
//! (the layout popularized by HdrHistogram): values below [`LINEAR_MAX`]
//! are recorded exactly; above that, each power-of-two octave is split
//! into [`SUBS`] equal sub-buckets, bounding the relative quantile error
//! at `1/SUBS` ≈ 3% while the whole table stays a fixed ~15 KiB — small
//! enough to keep one histogram per op class without perturbing the run.
//!
//! DESIGN.md ("Scenario harness") records why these constants were
//! chosen; the regression gate compares quantiles produced here.

/// Values below this are their own bucket (exact counts).
pub const LINEAR_MAX: u64 = 64;
/// Sub-buckets per power-of-two octave above the linear region.
pub const SUBS: u64 = 32;
/// Total bucket count: the linear region plus 32 sub-buckets for each of
/// the 58 octaves `[2^6, 2^64)`.
const BUCKETS: usize = LINEAR_MAX as usize + 58 * SUBS as usize;

/// A latency histogram over `u64` values (nanoseconds by convention).
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("p50", &self.value_at_quantile(0.50))
            .field("p95", &self.value_at_quantile(0.95))
            .field("p99", &self.value_at_quantile(0.99))
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index of `v`: identity below [`LINEAR_MAX`], log-linear above.
fn index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // ≥ 6
    let sub = (v - (1 << msb)) >> (msb - 5); // top 5 bits below the msb
    (LINEAR_MAX + (msb - 6) * SUBS + sub) as usize
}

/// Inclusive upper bound of bucket `i` — the value quantiles report, so a
/// quantile never under-states a latency.
fn bucket_high(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_MAX {
        return i;
    }
    let msb = (i - LINEAR_MAX) / SUBS + 6;
    let sub = (i - LINEAR_MAX) % SUBS;
    let width = 1u128 << (msb - 5);
    // The very last sub-bucket of the top octave ends past u64::MAX.
    let hi = (1u128 << msb) + (u128::from(sub) + 1) * width - 1;
    hi.min(u128::from(u64::MAX)) as u64
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded values (exact, from the running
    /// sum rather than the buckets).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The smallest value `x` such that at least `q` of the recorded
    /// values are ≤ `x`, up to the bucket resolution (≤ ~3% relative
    /// error above the linear region; exact below it). `q` is clamped to
    /// `[0, 1]`; returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Never report past the true maximum.
                return bucket_high(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.value_at_quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// 99.9th percentile — the contended-tier headline: one reader in a
    /// thousand stalling behind a writer's merge shows up here first.
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// Adds every count of `other` into `self` (shard/thread merge).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let mut h = Histogram::new();
        for v in 0..LINEAR_MAX {
            h.record(v);
        }
        assert_eq!(h.count(), LINEAR_MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), LINEAR_MAX - 1);
        // Exact quantiles below the linear bound.
        assert_eq!(h.value_at_quantile(0.5), 31);
        assert_eq!(h.value_at_quantile(1.0), 63);
        assert_eq!(h.value_at_quantile(0.0), 0);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value indexes into a bucket whose range contains it, and
        // bucket upper bounds are strictly increasing.
        let mut rng = cosbt_testkit::Rng::new(42);
        for _ in 0..100_000 {
            let v = rng.next_u64() >> rng.below(64) as u32;
            let i = index(v);
            assert!(v <= bucket_high(i), "v={v} above bucket {i} high");
            if i > 0 {
                assert!(v > bucket_high(i - 1), "v={v} not above bucket {}", i - 1);
            }
        }
        for i in 1..BUCKETS {
            assert!(bucket_high(i) > bucket_high(i - 1));
        }
        assert_eq!(index(u64::MAX), BUCKETS - 1, "top bucket covers u64::MAX");
    }

    #[test]
    fn quantile_error_is_bounded() {
        // Against an exactly-sorted reference, the reported quantile is
        // never below the true one and at most one sub-bucket above.
        let mut rng = cosbt_testkit::Rng::new(7);
        let mut h = Histogram::new();
        let mut vals: Vec<u64> = (0..10_000).map(|_| rng.below(1 << 40)).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999] {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let truth = vals[rank - 1];
            let got = h.value_at_quantile(q);
            assert!(got >= truth, "q={q}: {got} < true {truth}");
            assert!(
                got as f64 <= truth as f64 * (1.0 + 2.0 / SUBS as f64) + LINEAR_MAX as f64,
                "q={q}: {got} too far above true {truth}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut rng = cosbt_testkit::Rng::new(9);
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for i in 0..5000u64 {
            let v = rng.below(1 << 30);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for q in [0.1, 0.5, 0.95, 0.99] {
            assert_eq!(a.value_at_quantile(q), all.value_at_quantile(q));
        }
        assert!((a.mean() - all.mean()).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
