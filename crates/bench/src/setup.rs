//! Dictionary constructors over the out-of-core file backend, mirroring
//! the paper's experimental setup: 32-byte elements for the COLAs, 4 KiB
//! blocks for the trees, data on disk, and an explicit (user-space)
//! memory budget standing in for the machine's RAM.
//!
//! Everything here is a thin layer over [`cosbt::DbBuilder`] — the bench
//! harness configures structures exactly the way library users do, plus
//! delete-on-drop data files and the paper's legend labels.

use std::path::{Path, PathBuf};

use cosbt::{Backend, Db, DbBuilder, IoHandle, Structure};
use cosbt_dam::IoStats;

/// Which dictionary to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictKind {
    /// g-COLA with the paper's pointer density 0.1.
    GCola(usize),
    /// Basic COLA (no lookahead pointers).
    Basic,
    /// Deamortized basic COLA.
    DeamortBasic,
    /// Fully deamortized COLA.
    Deamort,
    /// Baseline B+-tree.
    BTree,
    /// Buffered repository tree.
    Brt,
}

impl DictKind {
    /// The [`DbBuilder`] configuration for this kind (memory backend;
    /// callers override the backend).
    pub fn builder(&self) -> DbBuilder {
        match *self {
            DictKind::GCola(g) => DbBuilder::new().structure(Structure::GCola { g }),
            DictKind::Basic => DbBuilder::new().structure(Structure::BasicCola),
            DictKind::DeamortBasic => DbBuilder::new()
                .structure(Structure::BasicCola)
                .deamortized(),
            DictKind::Deamort => DbBuilder::new()
                .structure(Structure::GCola { g: 2 })
                .deamortized(),
            DictKind::BTree => DbBuilder::new().structure(Structure::BTree),
            DictKind::Brt => DbBuilder::new().structure(Structure::Brt),
        }
    }

    /// Display label matching the paper's legends ("2-COLA", "B-tree", …).
    pub fn label(&self) -> String {
        match self {
            DictKind::GCola(g) => format!("{g}-COLA"),
            DictKind::Basic => "basic-COLA".into(),
            DictKind::DeamortBasic => "deamortized-basic-COLA".into(),
            DictKind::Deamort => "deamortized-COLA".into(),
            DictKind::BTree => "B-tree".into(),
            DictKind::Brt => "BRT".into(),
        }
    }
}

/// An out-of-core dictionary: file-backed storage behind a bounded
/// user-space page cache, plus a handle for I/O statistics and cache
/// control. The backing file is deleted on drop.
pub struct OutOfCore {
    /// The dictionary under test.
    pub dict: Db,
    path: PathBuf,
}

impl OutOfCore {
    /// Creates `kind` with its data file under `dir` and a memory budget
    /// of `cache_bytes`.
    pub fn create(kind: DictKind, dir: &Path, cache_bytes: usize) -> OutOfCore {
        Self::create_veb(kind, dir, cache_bytes, false)
    }

    /// [`OutOfCore::create`] with the vEB-layout toggle explicit, for
    /// experiments that compare the two read paths side by side.
    pub fn create_veb(kind: DictKind, dir: &Path, cache_bytes: usize, veb: bool) -> OutOfCore {
        std::fs::create_dir_all(dir).expect("create bench dir");
        let path = dir.join(format!(
            "cosbt-{}{}-{}.dat",
            kind.label().to_lowercase().replace(' ', "-"),
            if veb { "-veb" } else { "" },
            std::process::id()
        ));
        let dict = kind
            .builder()
            .backend(Backend::file(path.clone()))
            .cache_bytes(cache_bytes)
            .veb_layout(veb)
            .build()
            .expect("out-of-core configuration must build");
        OutOfCore { dict, path }
    }

    /// A cloneable counter reader decoupled from the dictionary borrow.
    pub fn probe(&self) -> IoHandle {
        self.dict.io()
    }

    /// Real-I/O counters of the backing store.
    pub fn io_stats(&self) -> IoStats {
        self.dict.io().snapshot()
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        self.dict.io().reset()
    }

    /// Empties the user-space page cache — the paper's "remounted the
    /// RAID array's file system … to clear the file cache".
    pub fn drop_cache(&self) {
        self.dict.drop_cache().expect("cache writeback failed")
    }
}

impl Drop for OutOfCore {
    fn drop(&mut self) {
        // A bench scratch store is deleted, not kept: skip the Db's
        // sync-on-drop commit before unlinking its file.
        self.dict.discard_on_drop();
        // Best-effort: scratch files live in a temp dir anyway.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs_and_roundtrips() {
        let dir = std::env::temp_dir().join("cosbt-setup-test");
        for kind in [
            DictKind::GCola(4),
            DictKind::Basic,
            DictKind::DeamortBasic,
            DictKind::Deamort,
            DictKind::BTree,
            DictKind::Brt,
        ] {
            let mut ooc = OutOfCore::create(kind, &dir, 64 * 1024);
            for k in 0..2000u64 {
                ooc.dict.insert(k * 3, k);
            }
            ooc.drop_cache();
            for k in (0..2000u64).step_by(97) {
                assert_eq!(ooc.dict.get(k * 3), Some(k), "{}", kind.label());
                assert_eq!(ooc.dict.get(k * 3 + 1), None, "{}", kind.label());
            }
            assert!(ooc.io_stats().accesses > 0, "{}", kind.label());
        }
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(DictKind::GCola(2).label(), "2-COLA");
        assert_eq!(DictKind::GCola(8).label(), "8-COLA");
        assert_eq!(DictKind::BTree.label(), "B-tree");
    }

    #[test]
    fn batched_updates_reach_disk() {
        let dir = std::env::temp_dir().join("cosbt-setup-test");
        for kind in [DictKind::GCola(4), DictKind::Basic, DictKind::Brt] {
            let mut ooc = OutOfCore::create(kind, &dir, 64 * 1024);
            let run: Vec<(u64, u64)> = (0..4096u64).map(|k| (k * 2, k)).collect();
            ooc.dict.insert_batch(&run);
            ooc.drop_cache();
            assert_eq!(ooc.dict.get(4096), Some(2048), "{}", kind.label());
        }
    }
}
