//! Dictionary constructors over the out-of-core file backend, mirroring
//! the paper's experimental setup: 32-byte elements for the COLAs, 4 KiB
//! blocks for the trees, data on disk, and an explicit (user-space)
//! memory budget standing in for the machine's RAM.

use std::path::{Path, PathBuf};

use cosbt_brt::Brt;
use cosbt_btree::BTree;
use cosbt_core::entry::Cell;
use cosbt_core::{BasicCola, DeamortBasicCola, DeamortCola, Dictionary, GCola};
use cosbt_dam::{FileMem, FilePages, IoStats, RcFileMem, RcFilePages, DEFAULT_PAGE_SIZE};

/// Which dictionary to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DictKind {
    /// g-COLA with the paper's pointer density 0.1.
    GCola(usize),
    /// Basic COLA (no lookahead pointers).
    Basic,
    /// Deamortized basic COLA.
    DeamortBasic,
    /// Fully deamortized COLA.
    Deamort,
    /// Baseline B+-tree.
    BTree,
    /// Buffered repository tree.
    Brt,
}

impl DictKind {
    /// Display label matching the paper's legends ("2-COLA", "B-tree", …).
    pub fn label(&self) -> String {
        match self {
            DictKind::GCola(g) => format!("{g}-COLA"),
            DictKind::Basic => "basic-COLA".into(),
            DictKind::DeamortBasic => "deamortized-basic-COLA".into(),
            DictKind::Deamort => "deamortized-COLA".into(),
            DictKind::BTree => "B-tree".into(),
            DictKind::Brt => "BRT".into(),
        }
    }
}

#[derive(Clone)]
enum IoHandle {
    Mem(RcFileMem<Cell>),
    Pages(RcFilePages),
}

/// A cheap cloneable reader of an [`OutOfCore`]'s I/O counters, usable
/// while the dictionary itself is mutably borrowed.
#[derive(Clone)]
pub struct IoProbe {
    inner: IoHandle,
}

impl IoProbe {
    /// Current counters.
    pub fn stats(&self) -> IoStats {
        match &self.inner {
            IoHandle::Mem(m) => m.stats(),
            IoHandle::Pages(p) => p.stats(),
        }
    }

    /// Cumulative block transfers (fetches + writebacks).
    pub fn transfers(&self) -> u64 {
        self.stats().transfers()
    }
}

/// An out-of-core dictionary: file-backed storage behind a bounded
/// user-space page cache, plus a handle for I/O statistics and cache
/// control. The backing file is deleted on drop.
pub struct OutOfCore {
    /// The dictionary under test.
    pub dict: Box<dyn Dictionary>,
    handle: IoHandle,
    path: PathBuf,
}

impl OutOfCore {
    /// Creates `kind` with its data file under `dir` and a memory budget
    /// of `cache_bytes`.
    pub fn create(kind: DictKind, dir: &Path, cache_bytes: usize) -> OutOfCore {
        std::fs::create_dir_all(dir).expect("create bench dir");
        let path = dir.join(format!(
            "cosbt-{}-{}.dat",
            kind.label().to_lowercase().replace(' ', "-"),
            std::process::id()
        ));
        let cache_pages = (cache_bytes / DEFAULT_PAGE_SIZE).max(2);
        match kind {
            DictKind::BTree => {
                let store = RcFilePages::new(
                    FilePages::create(&path, DEFAULT_PAGE_SIZE, cache_pages).expect("file store"),
                );
                let dict = Box::new(BTree::new(store.clone()));
                OutOfCore {
                    dict,
                    handle: IoHandle::Pages(store),
                    path,
                }
            }
            DictKind::Brt => {
                let store = RcFilePages::new(
                    FilePages::create(&path, DEFAULT_PAGE_SIZE, cache_pages).expect("file store"),
                );
                let dict = Box::new(Brt::new(store.clone()));
                OutOfCore {
                    dict,
                    handle: IoHandle::Pages(store),
                    path,
                }
            }
            _ => {
                let mem = RcFileMem::new(
                    FileMem::<Cell>::create(&path, DEFAULT_PAGE_SIZE, cache_pages, 32)
                        .expect("file store"),
                );
                let dict: Box<dyn Dictionary> = match kind {
                    DictKind::GCola(g) => Box::new(GCola::new(mem.clone(), g, 0.1)),
                    DictKind::Basic => Box::new(BasicCola::new(mem.clone())),
                    DictKind::DeamortBasic => Box::new(DeamortBasicCola::new(mem.clone())),
                    DictKind::Deamort => Box::new(DeamortCola::new(mem.clone())),
                    DictKind::BTree | DictKind::Brt => unreachable!(),
                };
                OutOfCore {
                    dict,
                    handle: IoHandle::Mem(mem),
                    path,
                }
            }
        }
    }

    /// A cloneable counter reader decoupled from the dictionary borrow.
    pub fn probe(&self) -> IoProbe {
        IoProbe {
            inner: self.handle.clone(),
        }
    }

    /// Real-I/O counters of the backing store.
    pub fn io_stats(&self) -> IoStats {
        match &self.handle {
            IoHandle::Mem(m) => m.stats(),
            IoHandle::Pages(p) => p.stats(),
        }
    }

    /// Resets the I/O counters.
    pub fn reset_stats(&self) {
        match &self.handle {
            IoHandle::Mem(m) => m.reset_stats(),
            IoHandle::Pages(p) => p.reset_stats(),
        }
    }

    /// Empties the user-space page cache — the paper's "remounted the
    /// RAID array's file system … to clear the file cache".
    pub fn drop_cache(&self) {
        match &self.handle {
            IoHandle::Mem(m) => m.drop_cache(),
            IoHandle::Pages(p) => p.drop_cache(),
        }
    }
}

impl Drop for OutOfCore {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_constructs_and_roundtrips() {
        let dir = std::env::temp_dir().join("cosbt-setup-test");
        for kind in [
            DictKind::GCola(4),
            DictKind::Basic,
            DictKind::DeamortBasic,
            DictKind::Deamort,
            DictKind::BTree,
            DictKind::Brt,
        ] {
            let mut ooc = OutOfCore::create(kind, &dir, 64 * 1024);
            for k in 0..2000u64 {
                ooc.dict.insert(k * 3, k);
            }
            ooc.drop_cache();
            for k in (0..2000u64).step_by(97) {
                assert_eq!(ooc.dict.get(k * 3), Some(k), "{}", kind.label());
                assert_eq!(ooc.dict.get(k * 3 + 1), None, "{}", kind.label());
            }
            assert!(ooc.io_stats().accesses > 0, "{}", kind.label());
        }
    }

    #[test]
    fn labels_match_paper_legends() {
        assert_eq!(DictKind::GCola(2).label(), "2-COLA");
        assert_eq!(DictKind::GCola(8).label(), "8-COLA");
        assert_eq!(DictKind::BTree.label(), "B-tree");
    }
}
