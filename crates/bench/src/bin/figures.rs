//! `figures` — one entry point for regenerating every figure/table of the
//! paper and every bound-validation experiment (see EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p cosbt-bench --bin figures -- <experiment>...
//! cargo run --release -p cosbt-bench --bin figures -- all
//! COSBT_SCALE=full cargo run --release -p cosbt-bench --bin figures -- fig2
//! ```
//!
//! Each experiment maps to a standalone bench target (so `cargo bench`
//! regenerates everything too); this binary is a convenience dispatcher.

use std::process::Command;

const EXPERIMENTS: &[(&str, &str, &str)] = &[
    (
        "fig2",
        "fig2_random_inserts",
        "Figure 2: random inserts, COLAs vs B-tree (E1)",
    ),
    (
        "fig3",
        "fig3_sorted_inserts",
        "Figure 3: sorted inserts (E2)",
    ),
    ("fig4", "fig4_searches", "Figure 4: random searches (E3)"),
    (
        "fig5",
        "fig5_insert_patterns",
        "Figure 5: insert patterns (E4)",
    ),
    (
        "bounds-cola",
        "bounds_cola",
        "E6: COLA transfer bounds (Lemmas 19/20)",
    ),
    (
        "bounds-baselines",
        "bounds_baselines",
        "E7: B-tree & BRT bounds",
    ),
    (
        "tradeoff",
        "bounds_tradeoff",
        "E8: B^eps growth-factor tradeoff",
    ),
    (
        "deamort",
        "deamort_worst_case",
        "E9: deamortized worst case (Thms 22/24)",
    ),
    (
        "shuttle",
        "bounds_shuttle",
        "E10: shuttle tree layout & inserts",
    ),
    ("pma", "pma_moves", "E11: PMA amortized moves"),
];

fn usage() -> ! {
    eprintln!("usage: figures <experiment>... | all | list");
    eprintln!("experiments (table ratios of E5 are printed by fig2-fig4):");
    for (name, _, desc) in EXPERIMENTS {
        eprintln!("  {name:<18} {desc}");
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" || args[0] == "--help" {
        usage();
    }
    let selected: Vec<&(&str, &str, &str)> = if args.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        args.iter()
            .map(|a| {
                EXPERIMENTS
                    .iter()
                    .find(|(name, _, _)| name == a)
                    .unwrap_or_else(|| {
                        eprintln!("unknown experiment: {a}");
                        usage()
                    })
            })
            .collect()
    };
    for (name, bench, desc) in selected {
        println!("\n======== {name}: {desc} ========");
        let status = Command::new(env!("CARGO"))
            .args(["bench", "-p", "cosbt-bench", "--bench", bench])
            .status()
            .expect("failed to spawn cargo bench");
        if !status.success() {
            eprintln!("{name} failed");
            std::process::exit(1);
        }
    }
    println!("\nCSV outputs are under results/.");
}
