//! `bench` — the scenario benchmark CLI: one entry point to run mixed
//! workloads against any cell of the configuration matrix, maintain the
//! `BENCH_*.json` trajectory, gate on regressions, and regenerate the
//! paper's figures.
//!
//! ```text
//! bench list
//! bench run --scenario balanced --structure gcola --shards 2
//! bench run --scenario read_heavy --structure btree --backend file --n 50000
//! bench compare --current results --baseline results/baseline --threshold 0.15
//! bench figures fig2 deamort        # the paper's figure sweeps
//! ```
//!
//! `run` writes a schema-versioned `BENCH_<scenario>.json` (runs keyed by
//! cell identity are replaced; other cells' results survive, so the file
//! accumulates a trajectory) plus a companion CSV. `compare` diffs every
//! `BENCH_*.json` in `--current` against the same file in `--baseline`
//! and exits nonzero past the threshold — the CI perf gate. Invoke via
//! `cargo run --release -p cosbt-bench --bin bench -- <args>`.

use std::path::PathBuf;
use std::process::ExitCode;

use cosbt::{Backend, Db, DbBuilder, Structure};
use cosbt_bench::json::{self, Json};
use cosbt_bench::measure::{results_dir, write_atomic};
use cosbt_bench::scaled;
use cosbt_bench::scenario::{
    compare_documents, csv_from_document, merge_document, mix_of, run_concurrent, run_contended,
    run_reopen, run_resumable, RunMeta, Scenario, SCENARIOS,
};
use cosbt_bench::workloads::KeyDist;

/// The paper experiments `bench figures` dispatches to (each is a
/// standalone bench target, so `cargo bench` regenerates them too).
const EXPERIMENTS: &[(&str, &str, &str)] = &[
    (
        "fig2",
        "fig2_random_inserts",
        "Figure 2: random inserts, COLAs vs B-tree (E1)",
    ),
    (
        "fig3",
        "fig3_sorted_inserts",
        "Figure 3: sorted inserts (E2)",
    ),
    ("fig4", "fig4_searches", "Figure 4: random searches (E3)"),
    (
        "fig5",
        "fig5_insert_patterns",
        "Figure 5: insert patterns (E4)",
    ),
    (
        "bounds-cola",
        "bounds_cola",
        "E6: COLA transfer bounds (Lemmas 19/20)",
    ),
    (
        "bounds-baselines",
        "bounds_baselines",
        "E7: B-tree & BRT bounds",
    ),
    (
        "tradeoff",
        "bounds_tradeoff",
        "E8: B^eps growth-factor tradeoff",
    ),
    (
        "deamort",
        "deamort_worst_case",
        "E9: deamortized worst case (Thms 22/24)",
    ),
    (
        "shuttle",
        "bounds_shuttle",
        "E10: shuttle tree layout & inserts",
    ),
    ("pma", "pma_moves", "E11: PMA amortized moves"),
    ("batch", "bounds_batch", "E12: batched vs per-key ingest"),
    ("shards", "bounds_shards", "E13: sharded ingest scaling"),
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench <command>\n\
         \n\
         commands:\n\
         \x20 list                         scenarios, structures, experiments\n\
         \x20 run [options]                execute one scenario × cell, update BENCH_*.json\n\
         \x20 compare [options]            diff BENCH_*.json against a baseline (perf gate)\n\
         \x20 figures <exp>...|all         regenerate the paper's figure sweeps\n\
         \n\
         run options:\n\
         \x20 --scenario NAME              {} (required)\n\
         \x20 --structure NAME             gcola | basic | btree | brt | shuttle (default gcola)\n\
         \x20 --g N | --c N                growth factor / fanout (default 4)\n\
         \x20 --deamortized                worst-case COLA variant\n\
         \x20 --shards N                   shard count (default 1)\n\
         \x20 --parallel-ingest            apply batches on worker threads\n\
         \x20 --backend mem|file           storage backend (default mem)\n\
         \x20 --direct                     open the file backend with O_DIRECT (bypasses the\n\
         \x20                              kernel page cache; falls back to buffered with a\n\
         \x20                              warning where unsupported)\n\
         \x20 --cache-bytes N              file-backend page-cache budget (default 16 MiB)\n\
         \x20 --veb-layout                 vEB-packed static search layouts with branchless\n\
         \x20                              probes (runtime knob; default off)\n\
         \x20 --dist NAME                  uniform | zipfian | ascending | timeseries |\n\
         \x20                              shifting_hotspot\n\
         \x20 --n N                        measured ops (default {} / COSBT_SCALE=full {})\n\
         \x20 --scale quick|full|huge      n preset; huge = {} ops, out-of-core (cache << data)\n\
         \x20 --prefill N                  prefill ops (default: scenario fraction of n)\n\
         \x20 --prefill-only               stage 1 of a split run: prefill, sync, record a\n\
         \x20                              resume marker, keep the store (file backend)\n\
         \x20 --resume                     stage 2: reopen the --prefill-only store of the\n\
         \x20                              identical cell and skip straight to the measured\n\
         \x20                              phase (lets CI split huge out-of-core runs)\n\
         \x20 --seed N                     workload seed (default 42)\n\
         \x20 --reopen                     cold-start phase: sync, drop all process state,\n\
         \x20                              reopen from the files, measure first-read latency\n\
         \x20                              and transfers (file backend only)\n\
         \x20 --reopen-samples N           cold point reads in the reopen phase (default 2000)\n\
         \x20 --clients N                  contended phase: N reader threads on pinned\n\
         \x20                              snapshots vs the writer; records read p99 under\n\
         \x20                              contention and writer throughput\n\
         \x20 --client-writes N            writer ops in the --clients phase (default n/4)\n\
         \x20 --contended N                heavy-traffic phase: N client threads each run\n\
         \x20                              the scenario's full op mix against their own\n\
         \x20                              auto-refreshing reader, writes funnelled to the\n\
         \x20                              single writer; reports per-client p99/p999\n\
         \x20 --contended-ops N            ops per client in --contended (default n/clients)\n\
         \x20 --out DIR                    artifact directory (default results/)\n\
         \n\
         compare options:\n\
         \x20 --current DIR                directory of fresh BENCH_*.json (default results/)\n\
         \x20 --baseline DIR               checked-in baseline (default results/baseline/)\n\
         \x20 --threshold F                allowed fractional regression (default 0.15)\n\
         \x20 --check-throughput           gate wall-clock throughput too (dedicated runners)\n\
         \x20 --warn-only                  report findings but always exit 0",
        SCENARIOS
            .iter()
            .map(|s| s.name)
            .collect::<Vec<_>>()
            .join(" | "),
        DEFAULT_N_QUICK,
        DEFAULT_N_FULL,
        DEFAULT_N_HUGE,
    );
    ExitCode::from(2)
}

const DEFAULT_N_QUICK: u64 = 100_000;
const DEFAULT_N_FULL: u64 = 2_000_000;
/// `--scale huge`: the out-of-core tier. At ~32 bytes per resident
/// entry this puts the dataset an order of magnitude past the default
/// 16 MiB page-cache budget, so the DAM cache actually evicts.
const DEFAULT_N_HUGE: u64 = 10_000_000;

/// `--key value` and bare-flag argument scanner.
struct Args {
    argv: Vec<String>,
}

impl Args {
    fn opt(&mut self, key: &str) -> Option<String> {
        let i = self.argv.iter().position(|a| a == key)?;
        if i + 1 >= self.argv.len() {
            eprintln!("{key} needs a value");
            std::process::exit(2);
        }
        self.argv.remove(i);
        Some(self.argv.remove(i))
    }

    fn flag(&mut self, key: &str) -> bool {
        if let Some(i) = self.argv.iter().position(|a| a == key) {
            self.argv.remove(i);
            true
        } else {
            false
        }
    }

    fn num(&mut self, key: &str) -> Option<u64> {
        self.opt(key).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{key} expects a number, got '{v}'");
                std::process::exit(2);
            })
        })
    }

    fn finish(&self, command: &str) {
        if let Some(stray) = self.argv.first() {
            eprintln!("unknown argument for {command}: {stray}");
            std::process::exit(2);
        }
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let command = argv.remove(0);
    let mut args = Args { argv };
    match command.as_str() {
        "list" => {
            list();
            args.finish("list");
            ExitCode::SUCCESS
        }
        "run" => cmd_run(&mut args),
        "compare" => cmd_compare(&mut args),
        "figures" => cmd_figures(args),
        _ => usage(),
    }
}

fn list() {
    println!("scenarios:");
    for s in SCENARIOS {
        println!("  {:<18} {}", s.name, s.about);
    }
    println!("\nstructures: gcola (--g), basic, btree, brt, shuttle (--c); modifiers: --deamortized, --shards N, --parallel-ingest, --veb-layout, --backend mem|file [--direct]");
    println!("\nfigure experiments:");
    for (name, _, desc) in EXPERIMENTS {
        println!("  {name:<18} {desc}");
    }
}

/// One structure × backend × shards cell, as parsed from `run` flags.
struct CellSpec {
    structure: String,
    param: usize,
    deamortized: bool,
    shards: usize,
    parallel: bool,
    backend: String,
    direct: bool,
    cache_bytes: usize,
    veb_layout: bool,
}

impl CellSpec {
    fn from_args(args: &mut Args) -> CellSpec {
        let mut backend = args.opt("--backend").unwrap_or_else(|| "mem".into());
        let mut direct = args.flag("--direct");
        // `--backend file-direct` is the one-flag spelling of
        // `--backend file --direct` (matches the cell label in JSON).
        if backend == "file-direct" {
            backend = "file".into();
            direct = true;
        }
        CellSpec {
            structure: args.opt("--structure").unwrap_or_else(|| "gcola".into()),
            param: args.num("--g").or_else(|| args.num("--c")).unwrap_or(4) as usize,
            deamortized: args.flag("--deamortized"),
            shards: args.num("--shards").unwrap_or(1) as usize,
            parallel: args.flag("--parallel-ingest"),
            backend,
            direct,
            cache_bytes: args.num("--cache-bytes").unwrap_or(16 * 1024 * 1024) as usize,
            veb_layout: args.flag("--veb-layout"),
        }
    }
}

/// FNV-1a, for deriving a stable scratch-file name from a resume key.
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A `Db` plus its builder (for the `--reopen` phase), the file paths to
/// unlink when the run is done, and the resume marker (if staged runs
/// are in play).
struct BuiltCell {
    db: Db,
    builder: DbBuilder,
    cleanup: Vec<PathBuf>,
    /// `<data>.prefilled` marker path, when a stable key was supplied.
    marker: Option<PathBuf>,
    /// True when the store was reopened from a matching prefill marker,
    /// so the run can skip its prefill phase.
    resumed: bool,
}

/// Builds (or, under `--resume`, reopens) the cell. `stable_key` is the
/// staged-run identity: when present, the scratch file is named by its
/// hash instead of the pid so a later invocation finds the same store,
/// and `<data>.prefilled` holds the key for verification.
fn build_cell(
    spec: &CellSpec,
    stable_key: Option<&str>,
    resume: bool,
) -> Result<BuiltCell, String> {
    let s = match spec.structure.as_str() {
        "gcola" => Structure::GCola { g: spec.param },
        "basic" => Structure::BasicCola,
        "btree" => Structure::BTree,
        "brt" => Structure::Brt,
        "shuttle" => Structure::Shuttle { c: spec.param },
        other => return Err(format!("unknown structure '{other}'")),
    };
    let mut b = DbBuilder::new()
        .structure(s)
        .shards(spec.shards)
        .parallel_ingest(spec.parallel)
        .cache_bytes(spec.cache_bytes)
        .veb_layout(spec.veb_layout);
    if spec.deamortized {
        b = b.deamortized();
    }
    let mut marker = None;
    match spec.backend.as_str() {
        "file" => {
            // Scratch data lives under the system temp dir, never under
            // --out: the artifact directory (possibly the checked-in
            // results/baseline/) must only ever receive BENCH_* files.
            let dir = std::env::temp_dir().join("cosbt-bench-data");
            std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
            let path = match stable_key {
                Some(key) => {
                    let p = dir.join(format!("cell-{:016x}.dat", fnv64(key)));
                    marker = Some(dir.join(format!("cell-{:016x}.prefilled", fnv64(key))));
                    p
                }
                None => dir.join(format!("cell-{}.dat", std::process::id())),
            };
            b = b.backend(if spec.direct {
                Backend::file_direct(path)
            } else {
                Backend::file(path)
            });
        }
        "mem" => {
            if spec.direct {
                return Err(
                    "--direct needs --backend file (O_DIRECT is a file-device mode)".into(),
                );
            }
        }
        other => {
            return Err(format!(
                "unknown backend '{other}' (mem | file | file-direct)"
            ))
        }
    }
    let cleanup = b.data_paths();
    let mut resumed = false;
    let db = if resume {
        let (marker_path, key) = match (&marker, stable_key) {
            (Some(m), Some(k)) => (m, k),
            _ => return Err("--resume needs --backend file".into()),
        };
        match std::fs::read_to_string(marker_path) {
            Ok(found) if found.trim() == key => {
                resumed = true;
                b.clone().open().map_err(|e| e.to_string())?
            }
            Ok(_) => {
                return Err(format!(
                    "prefill marker {} belongs to a different cell — rerun --prefill-only",
                    marker_path.display()
                ))
            }
            Err(_) => {
                return Err(format!(
                    "no prefill marker at {} — run the same cell with --prefill-only first",
                    marker_path.display()
                ))
            }
        }
    } else {
        b.clone().build().map_err(|e| e.to_string())?
    };
    Ok(BuiltCell {
        db,
        builder: b,
        cleanup,
        marker,
        resumed,
    })
}

fn cmd_run(args: &mut Args) -> ExitCode {
    let Some(scenario_name) = args.opt("--scenario") else {
        eprintln!("run needs --scenario");
        return usage();
    };
    let Some(scenario) = Scenario::by_name(&scenario_name) else {
        eprintln!(
            "unknown scenario '{scenario_name}'; known: {}",
            SCENARIOS
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    };
    let spec = CellSpec::from_args(args);
    let n = match args.opt("--scale") {
        Some(scale) => match scale.as_str() {
            "quick" => DEFAULT_N_QUICK,
            "full" => DEFAULT_N_FULL,
            // The out-of-core tier: with the default 16 MiB cache the
            // working set is an order of magnitude past memory.
            "huge" => DEFAULT_N_HUGE,
            other => {
                eprintln!("unknown --scale '{other}' (quick | full | huge)");
                return ExitCode::from(2);
            }
        },
        None => scaled(DEFAULT_N_QUICK, DEFAULT_N_FULL),
    };
    let n = args.num("--n").unwrap_or(n);
    let prefill = args
        .num("--prefill")
        .unwrap_or((n as f64 * scenario.prefill_frac) as u64);
    let seed = args.num("--seed").unwrap_or(42);
    let reopen = args.flag("--reopen");
    let reopen_samples = args.num("--reopen-samples").unwrap_or(2000);
    let clients = args.num("--clients").unwrap_or(0) as usize;
    let client_writes = args.num("--client-writes").unwrap_or(n / 4);
    let contended = args.num("--contended").unwrap_or(0) as usize;
    let contended_ops = args
        .num("--contended-ops")
        .unwrap_or_else(|| (n / contended.max(1) as u64).max(1));
    let prefill_only = args.flag("--prefill-only");
    let resume = args.flag("--resume");
    let out = args
        .opt("--out")
        .map(PathBuf::from)
        .unwrap_or_else(results_dir);
    let dist = match args.opt("--dist") {
        Some(name) => match KeyDist::by_name(&name, (n / 4).max(16)) {
            Some(d) => d,
            None => {
                eprintln!(
                    "unknown dist '{name}' (uniform | zipfian | ascending | timeseries | \
                     shifting_hotspot)"
                );
                return ExitCode::from(2);
            }
        },
        None => scenario.dist_for(n),
    };
    args.finish("run");
    if reopen && spec.backend != "file" {
        eprintln!("--reopen needs --backend file (a memory cell has nothing to reopen)");
        return ExitCode::from(2);
    }
    if (prefill_only || resume) && spec.backend != "file" {
        eprintln!("--prefill-only/--resume need --backend file (staged runs live in the store)");
        return ExitCode::from(2);
    }
    if prefill_only && resume {
        eprintln!("--prefill-only and --resume are the two halves of a staged run; pick one");
        return ExitCode::from(2);
    }

    // Staged runs key the scratch store on everything that shapes the
    // prefill image, so --resume can only ever match a byte-identical
    // prefill phase.
    let stable_key = (prefill_only || resume).then(|| {
        format!(
            "{}|{}|g={}|deamortized={}|shards={}|parallel={}|direct={}|cache={}|veb={}|dist={}|prefill={}|seed={}",
            scenario.name,
            spec.structure,
            spec.param,
            spec.deamortized,
            spec.shards,
            spec.parallel,
            spec.direct,
            spec.cache_bytes,
            spec.veb_layout,
            dist.name(),
            prefill,
            seed,
        )
    });
    let built = match build_cell(&spec, stable_key.as_deref(), resume) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot build cell: {e}");
            return ExitCode::from(2);
        }
    };
    let mut db = built.db;
    let meta = RunMeta::for_cell(&spec.structure, db.config(), dist, n, prefill, seed);

    if prefill_only {
        cosbt_bench::scenario::prefill_into(&mut db, dist, prefill, seed);
        if let Err(e) = db.sync() {
            eprintln!("sync after prefill: {e}");
            return ExitCode::FAILURE;
        }
        drop(db);
        let marker = built.marker.expect("file backend has a marker path");
        if let Err(e) = std::fs::write(&marker, stable_key.unwrap()) {
            eprintln!("cannot write {}: {e}", marker.display());
            return ExitCode::FAILURE;
        }
        println!(
            "prefilled {} ({} backend) with {prefill} entries; resume with the same cell \
             flags plus --resume",
            meta.label, meta.backend
        );
        return ExitCode::SUCCESS;
    }

    println!(
        "running scenario '{}' on {} ({} backend, n = {n}, prefill = {prefill}{}, seed = {seed})",
        scenario.name,
        meta.label,
        meta.backend,
        if built.resumed { " [resumed]" } else { "" },
    );
    let mut report = run_resumable(scenario, dist, meta, &mut db, built.resumed);
    report.print();
    if contended > 0 {
        let c = run_contended(
            &mut db,
            mix_of(scenario.kind),
            dist,
            seed,
            contended,
            contended_ops,
        );
        println!(
            "contended {} clients × {contended_ops} ops: read p50 {} ns p99 {} ns p999 {} ns; \
             writer {:.0} ops/s ({} ops, {} batches); {} epochs, {} runs reclaimed",
            c.clients,
            c.read_latency.p50(),
            c.read_latency.p99(),
            c.read_latency.p999(),
            c.writer_throughput,
            c.writer_ops,
            c.writer_batches,
            c.epochs_published,
            c.runs_reclaimed,
        );
        for (i, cl) in c.per_client.iter().enumerate() {
            println!(
                "  client {i}: {} ops ({} reads, {} hits, {} scanned, {} writes) \
                 p50 {} ns p99 {} ns p999 {} ns",
                cl.ops,
                cl.reads,
                cl.read_hits,
                cl.scanned,
                cl.writes,
                cl.latency.p50(),
                cl.latency.p99(),
                cl.latency.p999(),
            );
        }
        report.contended = Some(c);
    }
    if clients > 0 {
        let conc = run_concurrent(&mut db, dist, seed, clients, client_writes);
        println!(
            "clients {}: {} reads ({} hits) p50 {} ns p99 {} ns; writer {:.0} ops/s \
             ({} ops, {} epochs)",
            conc.clients,
            conc.reads,
            conc.read_hits,
            conc.read_latency.p50(),
            conc.read_latency.p99(),
            conc.writer_throughput,
            conc.writer_ops,
            conc.epochs_published,
        );
        report.concurrent = Some(conc);
    }
    let reopen_result = if reopen {
        match run_reopen(built.builder.clone(), db, dist, seed, reopen_samples) {
            Ok((cold, reopened)) => {
                println!(
                    "reopen: open {:.1} ms, {} cold reads ({} hits): p50 {} ns p99 {} ns, \
                     transfers {}",
                    cold.open_s * 1e3,
                    cold.first_reads.count(),
                    cold.hits,
                    cold.first_reads.p50(),
                    cold.first_reads.p99(),
                    cold.io.transfers(),
                );
                report.reopen = Some(cold);
                drop(reopened);
                Ok(())
            }
            Err(e) => Err(e),
        }
    } else {
        // Scratch cell, files unlinked below: skip the sync-on-drop
        // commit (quiesce + fsync) that durability would otherwise pay.
        db.discard_on_drop();
        drop(db);
        Ok(())
    };
    // Scratch files go away on success *and* failure — a failed reopen
    // phase must not leak the cell's store files into the temp dir. The
    // measured phase mutated a resumed store, so its marker dies too.
    for path in built.cleanup {
        // Best-effort temp-dir hygiene; the file may be gone already.
        let _ = std::fs::remove_file(path);
    }
    if let Some(marker) = built.marker {
        let _ = std::fs::remove_file(marker);
    }
    if let Err(e) = reopen_result {
        eprintln!("reopen phase failed: {e}");
        return ExitCode::FAILURE;
    }

    // Merge into the trajectory and write both artifacts atomically.
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let json_path = out.join(format!("BENCH_{}.json", scenario.name));
    let existing = match std::fs::read_to_string(&json_path) {
        Ok(text) => match json::parse(&text) {
            Ok(doc) => Some(doc),
            Err(e) => {
                eprintln!(
                    "warning: {} is not valid JSON ({e}); starting a fresh trajectory",
                    json_path.display()
                );
                None
            }
        },
        Err(_) => None,
    };
    let doc = merge_document(scenario.name, existing.as_ref(), &[report.to_json()]);
    if let Err(e) = write_atomic(&json_path, &doc.to_pretty()) {
        eprintln!("cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    let csv_path = out.join(format!("BENCH_{}.csv", scenario.name));
    if let Err(e) = write_atomic(&csv_path, &csv_from_document(&doc)) {
        eprintln!("cannot write {}: {e}", csv_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} ({} runs) and {}",
        json_path.display(),
        doc.get("runs")
            .and_then(Json::as_arr)
            .map_or(0, <[Json]>::len),
        csv_path.display()
    );
    ExitCode::SUCCESS
}

fn cmd_compare(args: &mut Args) -> ExitCode {
    let current_dir = args
        .opt("--current")
        .map(PathBuf::from)
        .unwrap_or_else(results_dir);
    let baseline_dir = args
        .opt("--baseline")
        .map(PathBuf::from)
        .unwrap_or_else(|| results_dir().join("baseline"));
    let threshold = args
        .opt("--threshold")
        .map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("--threshold expects a fraction, got '{v}'");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.15);
    let check_throughput = args.flag("--check-throughput");
    let warn_only = args.flag("--warn-only");
    args.finish("compare");

    let mut bench_files: Vec<PathBuf> = match std::fs::read_dir(&current_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", current_dir.display());
            return ExitCode::from(2);
        }
    };
    bench_files.sort();
    if bench_files.is_empty() {
        eprintln!(
            "no BENCH_*.json in {} — run `bench run` first",
            current_dir.display()
        );
        return ExitCode::from(2);
    }

    let mut failed = false;
    for current_path in bench_files {
        let name = current_path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .to_string();
        let baseline_path = baseline_dir.join(&name);
        let current = match std::fs::read_to_string(&current_path)
            .map_err(|e| e.to_string())
            .and_then(|t| json::parse(&t))
        {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{name}: unreadable current file: {e}");
                failed = true;
                continue;
            }
        };
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => match json::parse(&text) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("{name}: unreadable baseline: {e}");
                    failed = true;
                    continue;
                }
            },
            Err(_) => {
                println!(
                    "{name}: no baseline at {} — skipped",
                    baseline_path.display()
                );
                continue;
            }
        };
        let findings = compare_documents(&current, &baseline, threshold, check_throughput);
        if findings.is_empty() {
            println!("{name}: ok (within {:.0}% of baseline)", threshold * 100.0);
        }
        for f in findings {
            if f.fails {
                eprintln!("{name}: REGRESSION: {}", f.message);
                failed = true;
            } else {
                println!("{name}: note: {}", f.message);
            }
        }
    }
    if failed && !warn_only {
        eprintln!("\nperf gate failed (re-run with --warn-only to report without failing; refresh results/baseline/ if the change is intentional)");
        return ExitCode::FAILURE;
    }
    if failed {
        println!("\nfindings above are warn-only");
    }
    ExitCode::SUCCESS
}

fn cmd_figures(args: Args) -> ExitCode {
    let names = args.argv;
    if names.is_empty() || names[0] == "list" {
        eprintln!("usage: bench figures <experiment>... | all  (see `bench list`)");
        return ExitCode::from(2);
    }
    let selected: Vec<&(&str, &str, &str)> = if names.iter().any(|a| a == "all") {
        EXPERIMENTS.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &names {
            match EXPERIMENTS.iter().find(|(name, _, _)| name == a) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment: {a} (see `bench list`)");
                    return ExitCode::from(2);
                }
            }
        }
        sel
    };
    for (name, bench, desc) in selected {
        println!("\n======== {name}: {desc} ========");
        let status = std::process::Command::new(env!("CARGO"))
            .args(["bench", "-p", "cosbt-bench", "--bench", bench])
            .status()
            .expect("failed to spawn cargo bench");
        if !status.success() {
            eprintln!("{name} failed");
            return ExitCode::FAILURE;
        }
    }
    println!("\nCSV outputs are under results/.");
    ExitCode::SUCCESS
}
