//! A minimal JSON value, writer, and parser — the workspace builds
//! offline with zero dependencies, so `BENCH_*.json` is produced and
//! consumed by this hand-rolled implementation instead of `serde`.
//!
//! The subset is exactly what the bench schema needs: objects keep
//! **insertion order** (so diffs of `BENCH_*.json` are stable across
//! runs), numbers are written as `u64`/`i64`/finite `f64`, and the parser
//! accepts any document the writer emits (plus arbitrary whitespace).
//! Non-finite floats serialize as `null`, matching `serde_json`.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 round-trip exactly through f64,
    /// which covers every counter the bench schema records.
    Num(f64),
    /// A string (escapes handled by the writer/parser).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Obj(fields) = self else {
            panic!("set on a non-object");
        };
        if let Some(f) = fields.iter_mut().find(|(k, _)| k == key) {
            f.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: &str, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Field lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this node is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer count.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The boolean value, if this node is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this node is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    v.write(out, depth + 1);
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Infinity/NaN
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry the byte offset and a short
/// description; there is no recovery (bench files are machine-written).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs don't occur in bench output;
                            // map them to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_bench_shapes() {
        let doc = Json::obj()
            .with("schema_version", 1u64.into())
            .with("scenario", "balanced".into())
            .with(
                "runs",
                Json::Arr(vec![Json::obj()
                    .with("throughput_ops_per_sec", 123456.789.into())
                    .with("transfers", 42u64.into())
                    .with("capped", Json::Bool(false))
                    .with("note", Json::Null)]),
            );
        let text = doc.to_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("schema_version").unwrap().as_u64(), Some(1));
        assert_eq!(
            back.get("runs").unwrap().as_arr().unwrap()[0]
                .get("transfers")
                .unwrap()
                .as_u64(),
            Some(42)
        );
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote \" backslash \\ newline \n tab \t unicode é";
        let doc = Json::Str(s.to_string());
        assert_eq!(parse(&doc.to_pretty()).unwrap().as_str(), Some(s));
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap().as_str(), Some("Aé"));
    }

    #[test]
    fn numbers_write_integers_cleanly() {
        let mut out = String::new();
        write_num(&mut out, 42.0);
        assert_eq!(out, "42");
        let mut out = String::new();
        write_num(&mut out, 1.5);
        assert_eq!(out, "1.5");
        let mut out = String::new();
        write_num(&mut out, f64::INFINITY);
        assert_eq!(out, "null");
        // Large counters survive the f64 roundtrip.
        let n = (1u64 << 52) + 12345;
        assert_eq!(parse(&Json::from(n).to_pretty()).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn set_replaces_in_place_preserving_order() {
        let mut o = Json::obj()
            .with("a", 1u64.into())
            .with("b", 2u64.into())
            .with("c", 3u64.into());
        o.set("b", 20u64.into());
        let Json::Obj(fields) = &o else {
            unreachable!()
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "b", "c"]);
        assert_eq!(o.get("b").unwrap().as_u64(), Some(20));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn whitespace_is_tolerated_everywhere() {
        let v = parse(" \n { \"a\" : [ 1 , 2 ] , \"b\" : { } } \t ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::obj()));
    }
}
