//! The scenario runner: executes a named workload against any cell of
//! the `DbBuilder` configuration matrix and produces a machine-readable
//! report — throughput, per-op-class latency percentiles, and DAM
//! block-transfer counts split by phase.
//!
//! A **scenario** is a key distribution × operation mix (see
//! [`crate::workloads`]) plus a prefill policy; a **cell** is one
//! structure × backend × shards configuration. The same `(scenario,
//! cell, n, seed)` tuple always executes the same operation sequence,
//! so results are comparable across structures, across commits (the
//! `BENCH_*.json` trajectory), and against a `BTreeMap` model replay
//! (the property suite in `tests/scenario_model.rs`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cosbt::testkit::Rng;
use cosbt::{CursorOps, Db, DbSnapshot};
use cosbt_dam::IoStats;

use crate::histogram::Histogram;
use crate::json::Json;
use crate::workloads::{prefill_run, KeyDist, KeyGen, Op, OpMix, OpStream};

/// Bump when the `BENCH_*.json` layout changes shape; `bench compare`
/// refuses to diff across schema versions.
pub const SCHEMA_VERSION: u64 = 1;

/// How a scenario drives the dictionary after prefill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScenarioKind {
    /// A stationary stream of mixed operations.
    Mixed(OpMix),
    /// Insert every op as a write, then drain the whole keyspace through
    /// one streaming cursor (chunked so the drain contributes scan-class
    /// latency samples) — the log-index build-then-read pattern.
    InsertThenDrain,
}

/// A named workload: kind plus its default key distribution (the CLI can
/// override the distribution per run).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// CLI name ("balanced", "read_heavy", …).
    pub name: &'static str,
    /// What the op stream looks like.
    pub kind: ScenarioKind,
    /// Default key distribution (per-run overridable).
    pub dist: KeyDist,
    /// Prefill size as a fraction of `n` (so reads have something to
    /// hit); applied before the measured phase.
    pub prefill_frac: f64,
    /// One-line description for `bench list`.
    pub about: &'static str,
}

/// The scenario catalog. Key spaces default to 1/4 of the op count so a
/// mixed run keeps revisiting keys (hit rate matters); the runner scales
/// them with `n`.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "read_heavy",
        kind: ScenarioKind::Mixed(OpMix::READ_HEAVY),
        dist: KeyDist::Zipfian {
            space: 0,
            theta: 0.99,
        },
        prefill_frac: 1.0,
        about: "95% zipfian gets / 5% inserts over a prefilled store",
    },
    Scenario {
        name: "balanced",
        kind: ScenarioKind::Mixed(OpMix::BALANCED),
        dist: KeyDist::Zipfian {
            space: 0,
            theta: 0.99,
        },
        prefill_frac: 0.5,
        about: "50% gets / 45% inserts / 5% deletes, zipfian keys",
    },
    Scenario {
        name: "write_heavy",
        kind: ScenarioKind::Mixed(OpMix::WRITE_HEAVY),
        dist: KeyDist::Uniform { space: 0 },
        prefill_frac: 0.25,
        about: "5% gets / 90% inserts / 5% deletes, uniform keys",
    },
    Scenario {
        name: "scan_heavy",
        kind: ScenarioKind::Mixed(OpMix::SCAN_HEAVY),
        dist: KeyDist::Uniform { space: 0 },
        prefill_frac: 1.0,
        about: "80% range scans (100 entries) over a trickle of writes",
    },
    Scenario {
        name: "miss_heavy",
        kind: ScenarioKind::Mixed(OpMix::MISS_HEAVY),
        dist: KeyDist::Zipfian {
            space: 0,
            theta: 0.99,
        },
        prefill_frac: 1.0,
        about: "90% zipfian negative lookups over a prefilled store — the filter showcase",
    },
    Scenario {
        name: "insert_then_drain",
        kind: ScenarioKind::InsertThenDrain,
        dist: KeyDist::TimeSeriesAppend { jitter: 64 },
        prefill_frac: 0.0,
        about: "append-ingest everything, then stream the whole keyspace",
    },
    Scenario {
        name: "shifting_hotspot",
        kind: ScenarioKind::Mixed(OpMix::READ_HEAVY),
        dist: KeyDist::ShiftingHotspot {
            space: 0,
            theta: 0.99,
            period: 0,
        },
        prefill_frac: 1.0,
        about: "95% zipfian gets whose hot set migrates every n/8 ops — cache re-warm under drift",
    },
    Scenario {
        name: "timeseries_retention",
        kind: ScenarioKind::Mixed(OpMix::TIMESERIES_RETENTION),
        dist: KeyDist::TimeSeriesAppend { jitter: 64 },
        prefill_frac: 0.0,
        about: "90% appends with periodic range-delete of expired prefixes — bounded live set",
    },
];

impl Scenario {
    /// Looks a scenario up by CLI name.
    pub fn by_name(name: &str) -> Option<&'static Scenario> {
        SCENARIOS.iter().find(|s| s.name == name)
    }

    /// The scenario's distribution with its key space sized to the run
    /// (`0` placeholders become `max(n/4, 16)`; a `0` hotspot period
    /// becomes `max(n/8, 16)`, several migrations per run).
    pub fn dist_for(&self, n: u64) -> KeyDist {
        let space = (n / 4).max(16);
        match self.dist {
            KeyDist::Uniform { space: 0 } => KeyDist::Uniform { space },
            KeyDist::Zipfian { space: 0, theta } => KeyDist::Zipfian { space, theta },
            KeyDist::ShiftingHotspot {
                space: 0,
                theta,
                period,
            } => KeyDist::ShiftingHotspot {
                space,
                theta,
                period: if period == 0 { (n / 8).max(16) } else { period },
            },
            d => d,
        }
    }
}

/// Run metadata identifying one cell execution; two runs with equal
/// identity executed the same op stream against the same configuration,
/// which is what `bench compare` matches on.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Structure CLI name ("gcola", "btree", …).
    pub structure: String,
    /// Human label from `DbBuilder::label` ("4-COLA ×2 shards").
    pub label: String,
    /// "mem" or "file".
    pub backend: String,
    /// Shard count.
    pub shards: usize,
    /// Page-cache budget of a file backend (0 for memory cells, where
    /// it has no effect).
    pub cache_bytes: u64,
    /// Whether batches were applied on worker threads.
    pub parallel_ingest: bool,
    /// Whether fractional cascading was enabled.
    pub cascade: bool,
    /// Whether vEB-packed search layouts were enabled.
    pub veb_layout: bool,
    /// Lookahead-pointer density of the COLA levels.
    pub pointer_density: f64,
    /// Key distribution CLI name.
    pub dist: String,
    /// Measured operations.
    pub ops: u64,
    /// Prefill operations.
    pub prefill: u64,
    /// Workload seed.
    pub seed: u64,
}

impl RunMeta {
    /// Meta for one cell, derived from the database's own recorded
    /// [`cosbt::DbConfig`] — the cell identity is whatever the database
    /// says it was configured as, not a hand-assembled string.
    pub fn for_cell(
        structure: &str,
        cfg: &cosbt::DbConfig,
        dist: KeyDist,
        ops: u64,
        prefill: u64,
        seed: u64,
    ) -> RunMeta {
        RunMeta {
            structure: structure.to_string(),
            label: cfg.label(),
            backend: cfg.backend_kind().to_string(),
            shards: cfg.shards,
            cache_bytes: match cfg.backend {
                cosbt::Backend::Mem => 0,
                cosbt::Backend::File { .. } => cfg.cache_bytes as u64,
            },
            parallel_ingest: cfg.parallel_ingest,
            cascade: cfg.cascade,
            veb_layout: cfg.veb_layout,
            pointer_density: cfg.pointer_density,
            dist: dist.name().to_string(),
            ops,
            prefill,
            seed,
        }
    }
}

/// Latency histograms of one run, by op class.
#[derive(Debug, Clone, Default)]
pub struct Latencies {
    /// Every measured op.
    pub overall: Histogram,
    /// Point lookups.
    pub get: Histogram,
    /// Upserts.
    pub insert: Histogram,
    /// Deletes.
    pub delete: Histogram,
    /// Range scans (one sample per scan op, not per entry).
    pub scan: Histogram,
    /// Retention trims (one sample per whole expiry pass).
    pub trim: Histogram,
}

impl Latencies {
    fn for_class(&mut self, class: &str) -> &mut Histogram {
        match class {
            "get" => &mut self.get,
            "insert" => &mut self.insert,
            "delete" => &mut self.delete,
            "trim" => &mut self.trim,
            _ => &mut self.scan,
        }
    }
}

/// The cold-start phase a `--reopen` run appends: sync, drop the whole
/// process-side state (handle, page caches), reopen from the files, and
/// measure first-read behaviour.
#[derive(Debug, Clone)]
pub struct ReopenReport {
    /// Wall-clock seconds from `DbBuilder::open` call to a usable `Db`
    /// (superblock validation, metadata recovery, structure
    /// reconstruction).
    pub open_s: f64,
    /// Latency of the cold point reads issued right after reopen.
    pub first_reads: Histogram,
    /// Reads found (sanity: the reopened store actually serves data).
    pub hits: u64,
    /// I/O during the cold reads (every fetch is a real file read — the
    /// reopened cache starts empty).
    pub io: IoStats,
}

/// What one client thread of the contended driver did: its reads (with
/// tail latency), scans, and the writes it shipped to the ingest queue.
#[derive(Debug, Clone)]
pub struct ClientStats {
    /// Operations the client executed (reads served + writes enqueued).
    pub ops: u64,
    /// Point lookups served off the client's [`cosbt::DbReader`].
    pub reads: u64,
    /// Reads that found a live key.
    pub read_hits: u64,
    /// Entries streamed by the client's range scans.
    pub scanned: u64,
    /// Write operations (inserts/deletes/trims) enqueued to the writer.
    pub writes: u64,
    /// Read-path latency (gets and scans; enqueueing a write is not a
    /// completed operation, so it is counted but not timed).
    pub latency: Histogram,
}

/// The `--contended N` phase: N client threads each running the
/// scenario's *full* op mix — reads and scans served locally off an
/// auto-refreshing [`cosbt::DbReader`], writes shipped to the single
/// writer through an ingest queue — while the writer applies batches and
/// publishes an epoch per batch. Per-client p99/p999 read tails, writer
/// throughput, and epoch/reclaim counters land in `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct ContendedReport {
    /// Client thread count.
    pub clients: usize,
    /// Wall-clock seconds of the contended phase.
    pub elapsed_s: f64,
    /// Per-client breakdown (tail latency is per client, so one stalled
    /// client cannot hide inside a merged histogram).
    pub per_client: Vec<ClientStats>,
    /// Read latency merged across clients.
    pub read_latency: Histogram,
    /// Write ops the writer applied (everything the clients enqueued).
    pub writer_ops: u64,
    /// Ingest batches (epoch publications) the writer processed.
    pub writer_batches: u64,
    /// Writer ops per second while every client hammers its reader.
    pub writer_throughput: f64,
    /// Epochs published during the phase.
    pub epochs_published: u64,
    /// Retired runs reclaimed during the phase (readers unpinning let
    /// the grace horizon advance under load).
    pub runs_reclaimed: u64,
}

/// The `--clients N` phase: N reader threads serving point lookups off
/// pinned snapshots while the writer keeps publishing epochs — the
/// contention cell recorded into `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct ConcurrentReport {
    /// Reader thread count.
    pub clients: usize,
    /// Wall-clock seconds of the contended phase.
    pub elapsed_s: f64,
    /// Point reads served across all readers.
    pub reads: u64,
    /// Reads that found a live key.
    pub read_hits: u64,
    /// Read latency under contention, merged across readers (the p99
    /// here is the headline number: snapshot reads must not stall while
    /// the writer publishes).
    pub read_latency: Histogram,
    /// Writes applied by the writer during the phase.
    pub writer_ops: u64,
    /// Writer ops per second while all readers hammer snapshots.
    pub writer_throughput: f64,
    /// Epochs the writer published during the phase.
    pub epochs_published: u64,
}

/// Everything one scenario × cell execution measured.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario CLI name.
    pub scenario: String,
    /// Cell + stream identity.
    pub meta: RunMeta,
    /// Wall-clock seconds of the measured phase (including the drain
    /// for `insert_then_drain`).
    pub elapsed_s: f64,
    /// Measured ops per second over `elapsed_s`. For
    /// `insert_then_drain` each drained entry counts as one op — the
    /// build-then-stream pipeline rate — since the drain is inside the
    /// measured window.
    pub throughput: f64,
    /// Per-class latency histograms.
    pub latency: Latencies,
    /// Entries streamed by scan ops (and the drain phase).
    pub scanned_entries: u64,
    /// Block transfers etc. during prefill (zeros for memory backends).
    pub io_prefill: IoStats,
    /// Block transfers etc. during the measured phase.
    pub io_run: IoStats,
    /// Cold-start measurements of the `--reopen` phase, when requested
    /// (file cells only). Optional, so trajectories with and without the
    /// phase keep one run identity.
    pub reopen: Option<ReopenReport>,
    /// Measurements of the `--clients N` contended phase, when
    /// requested. Optional for the same run-identity reason as `reopen`.
    pub concurrent: Option<ConcurrentReport>,
    /// Measurements of the `--contended N` full-mix multi-client phase,
    /// when requested. Optional for the same run-identity reason.
    pub contended: Option<ContendedReport>,
}

/// Batch size for prefill `insert_batch` runs and drain chunks.
const CHUNK: usize = 16 * 1024;

/// The seed of the prefill stream for a run seed — decorrelated from the
/// measured op stream so prefill keys do not replay as op keys. Public
/// so a model replay (`tests/scenario_model.rs`) regenerates the exact
/// prefill the runner used.
pub fn prefill_seed(seed: u64) -> u64 {
    seed ^ 0x5EED_F111
}

/// The op mix a scenario's measured phase executes.
pub fn mix_of(kind: ScenarioKind) -> OpMix {
    match kind {
        ScenarioKind::Mixed(mix) => mix,
        ScenarioKind::InsertThenDrain => OpMix::INSERT_ONLY,
    }
}

/// Loads the deterministic prefill stream for (`dist`, `prefill`,
/// `seed`) into `db` in ingest-sized chunks. Factored out of [`run`] so
/// the CLI's staged `--prefill-only` mode executes the *identical*
/// phase before syncing the store and recording a resume marker.
pub fn prefill_into(db: &mut Db, dist: KeyDist, prefill: u64, seed: u64) {
    let run = prefill_run(dist, prefill, prefill_seed(seed));
    for chunk in run.chunks(CHUNK) {
        db.insert_batch(chunk);
    }
}

/// Executes one retention trim: deletes every live key strictly below
/// `cutoff` as a single batch (the structures turn it into tombstones,
/// so the pass is one merge, not `k` point deletes). Public so a model
/// replay mirrors the exact semantics (`model.split_off(&cutoff)`).
pub fn trim_below(db: &mut Db, cutoff: u64) {
    if cutoff == 0 {
        return;
    }
    let expired = db.range(0, cutoff - 1);
    if expired.is_empty() {
        return;
    }
    let mut batch = cosbt::UpdateBatch::new();
    for (k, _) in expired {
        batch.delete(k);
    }
    db.apply(&mut batch);
}

/// Executes `scenario` against `db`: prefills (unmeasured, but its I/O
/// is reported), then runs `meta.ops` operations timing each one.
/// `meta.dist` must name the distribution actually passed in `dist` —
/// the CLI guarantees this; tests construct both from the same value.
pub fn run(scenario: &Scenario, dist: KeyDist, meta: RunMeta, db: &mut Db) -> ScenarioReport {
    run_resumable(scenario, dist, meta, db, false)
}

/// [`run`] with a resume switch: when `skip_prefill` is true the prefill
/// phase is skipped even though `meta.prefill` stays in the cell's
/// identity — the caller attests that `db` already holds the exact state
/// a fresh prefill with `meta.seed` would produce (the CLI's `--resume`
/// verifies this via a marker file keyed on the cell identity). Prefill
/// is deterministic, so the measured phase is identical either way; only
/// the unmeasured `io_prefill` counters differ.
pub fn run_resumable(
    scenario: &Scenario,
    dist: KeyDist,
    meta: RunMeta,
    db: &mut Db,
    skip_prefill: bool,
) -> ScenarioReport {
    // Phase 1: prefill (not latency-measured; I/O reported separately).
    if meta.prefill > 0 && !skip_prefill {
        prefill_into(db, dist, meta.prefill, meta.seed);
    }
    let io_prefill = db.io().take();

    // Phase 2: the measured op stream.
    let mix = mix_of(scenario.kind);
    let mut latency = Latencies::default();
    let mut scanned = 0u64;
    let started = Instant::now();
    for op in OpStream::new(mix, dist, meta.seed).take(meta.ops as usize) {
        let t = Instant::now();
        match op {
            Op::Get(k) => {
                std::hint::black_box(db.get(k));
            }
            Op::Insert(k, v) => db.insert(k, v),
            Op::Delete(k) => db.delete(k),
            Op::Scan(k, len) => {
                let mut cur = db.cursor(k, u64::MAX);
                for _ in 0..len {
                    match cur.next() {
                        Some(kv) => {
                            std::hint::black_box(kv);
                            scanned += 1;
                        }
                        None => break,
                    }
                }
            }
            Op::Trim(cutoff) => trim_below(db, cutoff),
        }
        let ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        latency.for_class(op.class()).record(ns);
        latency.overall.record(ns);
    }

    // Phase 2b (insert_then_drain): stream everything back out, one
    // scan-class latency sample per chunk of entries.
    if scenario.kind == ScenarioKind::InsertThenDrain {
        let mut cur = db.cursor(0, u64::MAX);
        loop {
            let t = Instant::now();
            let mut got = 0usize;
            while got < CHUNK {
                match cur.next() {
                    Some(kv) => {
                        std::hint::black_box(kv);
                        got += 1;
                    }
                    None => break,
                }
            }
            if got > 0 {
                scanned += got as u64;
                let ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                latency.scan.record(ns);
                latency.overall.record(ns);
            }
            if got < CHUNK {
                break;
            }
        }
    }

    let elapsed_s = started.elapsed().as_secs_f64();
    let io_run = db.io().take();
    // elapsed_s covers the drain too, so the drained entries must count
    // toward the rate — otherwise a drain-dominated run would understate
    // insert throughput and a slower drain would masquerade as one.
    let measured_ops = match scenario.kind {
        ScenarioKind::Mixed(_) => meta.ops,
        ScenarioKind::InsertThenDrain => meta.ops + scanned,
    };
    ScenarioReport {
        scenario: scenario.name.to_string(),
        throughput: measured_ops as f64 / elapsed_s.max(1e-9),
        meta,
        elapsed_s,
        latency,
        scanned_entries: scanned,
        io_prefill,
        io_run,
        reopen: None,
        concurrent: None,
        contended: None,
    }
}

/// The ingest-queue protocol between contended clients and the writer.
enum IngestMsg {
    /// Apply a batch of buffered upserts/deletes.
    Batch(cosbt::UpdateBatch),
    /// Expire everything strictly below the cutoff (a client rolled a
    /// retention trim; only the writer may mutate).
    Trim(u64),
}

/// Write ops a client buffers before shipping one batch to the writer.
const CLIENT_WRITE_CHUNK: usize = 256;

/// The `--contended N` phase: every client runs the full `mix` over
/// `dist` (salted per client so streams differ but stay deterministic),
/// serving gets/scans from its own auto-refreshing [`cosbt::DbReader`]
/// and shipping writes to the single writer via an mpsc ingest queue.
/// The writer drains the queue, applies each batch, and publishes an
/// epoch per batch so readers observe fresh data mid-run. Returns when
/// every client finished its `ops_per_client` stream and the queue is
/// drained.
pub fn run_contended(
    db: &mut Db,
    mix: OpMix,
    dist: KeyDist,
    seed: u64,
    clients: usize,
    ops_per_client: u64,
) -> ContendedReport {
    let epochs_before = db.snapshot_stats();
    let (tx, rx) = std::sync::mpsc::channel::<IngestMsg>();
    // One auto-refreshing reader per client, created up front (each
    // `reader()` call publishes the current state once; after that the
    // readers chase the writer's publications on their own).
    let mut readers: Vec<cosbt::DbReader> = (0..clients).map(|_| db.reader()).collect();

    let started = Instant::now();
    let (per_client, writer_ops, writer_batches) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let tx = tx.clone();
                let mut reader = readers.pop().expect("one reader per client");
                s.spawn(move || {
                    let mut stats = ClientStats {
                        ops: 0,
                        reads: 0,
                        read_hits: 0,
                        scanned: 0,
                        writes: 0,
                        latency: Histogram::new(),
                    };
                    let mut batch = cosbt::UpdateBatch::new();
                    let client_seed = seed ^ 0xC047_E4D0 ^ ((c as u64) << 32);
                    for op in OpStream::new(mix, dist, client_seed).take(ops_per_client as usize) {
                        stats.ops += 1;
                        match op {
                            Op::Get(k) => {
                                let t = Instant::now();
                                if std::hint::black_box(reader.get(k)).is_some() {
                                    stats.read_hits += 1;
                                }
                                let ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                                stats.latency.record(ns);
                                stats.reads += 1;
                            }
                            Op::Scan(k, len) => {
                                let t = Instant::now();
                                let mut cur = reader.cursor(k, u64::MAX);
                                for _ in 0..len {
                                    match cur.next() {
                                        Some(kv) => {
                                            std::hint::black_box(kv);
                                            stats.scanned += 1;
                                        }
                                        None => break,
                                    }
                                }
                                let ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                                stats.latency.record(ns);
                            }
                            Op::Insert(k, v) => {
                                batch.put(k, v);
                                stats.writes += 1;
                            }
                            Op::Delete(k) => {
                                batch.delete(k);
                                stats.writes += 1;
                            }
                            Op::Trim(cutoff) => {
                                // Order matters: buffered writes must land
                                // before the trim that may expire them.
                                if !batch.is_empty() {
                                    let full = std::mem::take(&mut batch);
                                    tx.send(IngestMsg::Batch(full)).expect("writer alive");
                                }
                                tx.send(IngestMsg::Trim(cutoff)).expect("writer alive");
                                stats.writes += 1;
                            }
                        }
                        if batch.len() >= CLIENT_WRITE_CHUNK {
                            let full = std::mem::take(&mut batch);
                            tx.send(IngestMsg::Batch(full)).expect("writer alive");
                        }
                    }
                    if !batch.is_empty() {
                        tx.send(IngestMsg::Batch(batch)).expect("writer alive");
                    }
                    stats
                })
            })
            .collect();
        drop(tx); // the writer's recv loop ends when the last client hangs up

        // The writer runs on this thread: drain the ingest queue, apply,
        // publish an epoch per message so readers refresh mid-run.
        let mut writer_ops = 0u64;
        let mut writer_batches = 0u64;
        while let Ok(msg) = rx.recv() {
            match msg {
                IngestMsg::Batch(mut b) => {
                    writer_ops += b.len() as u64;
                    db.apply(&mut b);
                }
                IngestMsg::Trim(cutoff) => {
                    writer_ops += 1;
                    trim_below(db, cutoff);
                }
            }
            writer_batches += 1;
            drop(db.snapshot());
        }

        let per_client: Vec<ClientStats> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect();
        (per_client, writer_ops, writer_batches)
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut read_latency = Histogram::new();
    for c in &per_client {
        read_latency.merge(&c.latency);
    }
    let epochs_after = db.snapshot_stats();
    ContendedReport {
        clients,
        elapsed_s,
        per_client,
        read_latency,
        writer_ops,
        writer_batches,
        writer_throughput: writer_ops as f64 / elapsed_s.max(1e-9),
        epochs_published: epochs_after.published - epochs_before.published,
        runs_reclaimed: epochs_after.reclaimed_runs - epochs_before.reclaimed_runs,
    }
}

/// The `--clients N` contended phase: `clients` reader threads run point
/// lookups against the freshest published snapshot (each iteration clones
/// the latest [`DbSnapshot`] out of a shared slot — one brief mutex touch,
/// then every read is lock-free against the pinned epoch) while the
/// writer applies `write_ops` upserts in chunks, publishing a new epoch
/// per chunk. Keys on both sides come from the run's distribution, so
/// readers mostly hit. Returns merged reader latency plus writer
/// throughput under contention.
pub fn run_concurrent(
    db: &mut Db,
    dist: KeyDist,
    seed: u64,
    clients: usize,
    write_ops: u64,
) -> ConcurrentReport {
    const WRITE_CHUNK: usize = 4 * 1024;
    let epochs_before = db.snapshot_stats().published;
    let latest: Arc<Mutex<DbSnapshot>> = Arc::new(Mutex::new(db.snapshot()));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..clients)
        .map(|c| {
            let latest = Arc::clone(&latest);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut keygen = KeyGen::new(dist);
                let mut rng = Rng::new(seed ^ 0xC11E_4700 ^ (c as u64) << 32);
                let mut hist = Histogram::new();
                let mut hits = 0u64;
                // ordering: Acquire pairs with the driver's Release
                // store so a client observing `stop` also observes the
                // final snapshot published before it.
                while !stop.load(Ordering::Acquire) {
                    let snap = latest.lock().unwrap().clone();
                    for _ in 0..256 {
                        let k = keygen.next_key(&mut rng);
                        let t = Instant::now();
                        if std::hint::black_box(snap.get(k)).is_some() {
                            hits += 1;
                        }
                        let ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                        hist.record(ns);
                    }
                }
                (hist, hits)
            })
        })
        .collect();

    let mut keygen = KeyGen::new(dist);
    let mut rng = Rng::new(seed ^ 0x3717_E400);
    let started = Instant::now();
    let mut written = 0u64;
    while written < write_ops {
        let n = WRITE_CHUNK.min((write_ops - written) as usize);
        let mut chunk: Vec<(u64, u64)> = (0..n)
            .map(|_| (keygen.next_key(&mut rng), rng.next_u64()))
            .collect();
        chunk.sort_unstable_by_key(|&(k, _)| k);
        db.insert_batch(&chunk);
        written += n as u64;
        *latest.lock().unwrap() = db.snapshot();
    }
    let elapsed_s = started.elapsed().as_secs_f64();
    // ordering: Release pairs with the clients' Acquire loads above.
    stop.store(true, Ordering::Release);

    let mut read_latency = Histogram::new();
    let mut reads = 0u64;
    let mut read_hits = 0u64;
    for r in readers {
        let (hist, hits) = r.join().expect("reader thread panicked");
        reads += hist.count();
        read_hits += hits;
        read_latency.merge(&hist);
    }
    ConcurrentReport {
        clients,
        elapsed_s,
        reads,
        read_hits,
        read_latency,
        writer_ops: written,
        writer_throughput: written as f64 / elapsed_s.max(1e-9),
        epochs_published: db.snapshot_stats().published - epochs_before,
    }
}

/// The `--reopen` cold-start phase: commits `db` durably, drops every
/// piece of process state (handle and user-space page caches), reopens
/// the store from its files via `builder`, and measures open latency
/// plus `samples` cold point reads against keys drawn from the run's
/// key distribution (the regenerated prefill stream — real hits whenever
/// the scenario prefills). Consumes and returns the database so the
/// caller keeps control of file cleanup.
pub fn run_reopen(
    builder: cosbt::DbBuilder,
    db: Db,
    dist: KeyDist,
    seed: u64,
    samples: u64,
) -> Result<(ReopenReport, Db), String> {
    let mut db = db;
    db.sync().map_err(|e| format!("sync before reopen: {e}"))?;
    drop(db);

    let started = Instant::now();
    let mut db = builder.open().map_err(|e| format!("reopen: {e}"))?;
    let open_s = started.elapsed().as_secs_f64();

    db.io().reset();
    let mut first_reads = Histogram::default();
    let mut hits = 0u64;
    let keys = prefill_run(dist, samples, prefill_seed(seed));
    for &(k, _) in &keys {
        let t = Instant::now();
        if std::hint::black_box(db.get(k)).is_some() {
            hits += 1;
        }
        let ns = t.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        first_reads.record(ns);
    }
    let io = db.io().take();
    Ok((
        ReopenReport {
            open_s,
            first_reads,
            hits,
            io,
        },
        db,
    ))
}

fn histogram_json(h: &Histogram) -> Json {
    Json::obj()
        .with("count", h.count().into())
        .with("mean_ns", h.mean().into())
        .with("min_ns", h.min().into())
        .with("p50_ns", h.p50().into())
        .with("p95_ns", h.p95().into())
        .with("p99_ns", h.p99().into())
        .with("p999_ns", h.p999().into())
        .with("max_ns", h.max().into())
}

fn io_json(s: &IoStats) -> Json {
    Json::obj()
        .with("transfers", s.transfers().into())
        .with("accesses", s.accesses.into())
        .with("hits", s.hits.into())
        .with("fetches", s.fetches.into())
        .with("writebacks", s.writebacks.into())
        .with("seeks", s.seeks.into())
}

impl ScenarioReport {
    /// The run as one entry of a `BENCH_*.json` `runs` array.
    pub fn to_json(&self) -> Json {
        let m = &self.meta;
        let reopen_json = self.reopen.as_ref().map(|r| {
            Json::obj()
                .with("open_s", r.open_s.into())
                .with("first_reads_ns", histogram_json(&r.first_reads))
                .with("hits", r.hits.into())
                .with("io", io_json(&r.io))
        });
        let concurrent_json = self.concurrent.as_ref().map(|c| {
            Json::obj()
                .with("clients", (c.clients as u64).into())
                .with("elapsed_s", c.elapsed_s.into())
                .with("reads", c.reads.into())
                .with("read_hits", c.read_hits.into())
                .with("read_latency_ns", histogram_json(&c.read_latency))
                .with("writer_ops", c.writer_ops.into())
                .with("writer_throughput_ops_per_sec", c.writer_throughput.into())
                .with("epochs_published", c.epochs_published.into())
        });
        let contended_json = self.contended.as_ref().map(|c| {
            let per_client: Vec<Json> = c
                .per_client
                .iter()
                .map(|cl| {
                    Json::obj()
                        .with("ops", cl.ops.into())
                        .with("reads", cl.reads.into())
                        .with("read_hits", cl.read_hits.into())
                        .with("scanned", cl.scanned.into())
                        .with("writes", cl.writes.into())
                        .with("read_latency_ns", histogram_json(&cl.latency))
                })
                .collect();
            Json::obj()
                .with("clients", (c.clients as u64).into())
                .with("elapsed_s", c.elapsed_s.into())
                .with("per_client", Json::Arr(per_client))
                .with("read_latency_ns", histogram_json(&c.read_latency))
                .with("writer_ops", c.writer_ops.into())
                .with("writer_batches", c.writer_batches.into())
                .with("writer_throughput_ops_per_sec", c.writer_throughput.into())
                .with("epochs_published", c.epochs_published.into())
                .with("runs_reclaimed", c.runs_reclaimed.into())
        });
        let base = Json::obj()
            .with(
                "meta",
                Json::obj()
                    .with("structure", m.structure.as_str().into())
                    .with("label", m.label.as_str().into())
                    .with("backend", m.backend.as_str().into())
                    .with("shards", m.shards.into())
                    .with("cache_bytes", m.cache_bytes.into())
                    .with("parallel_ingest", Json::Bool(m.parallel_ingest))
                    .with("cascade", Json::Bool(m.cascade))
                    .with("veb_layout", Json::Bool(m.veb_layout))
                    .with("pointer_density", m.pointer_density.into())
                    .with("dist", m.dist.as_str().into())
                    .with("ops", m.ops.into())
                    .with("prefill", m.prefill.into())
                    .with("seed", m.seed.into()),
            )
            .with("elapsed_s", self.elapsed_s.into())
            .with("throughput_ops_per_sec", self.throughput.into())
            .with(
                "latency_ns",
                Json::obj()
                    .with("overall", histogram_json(&self.latency.overall))
                    .with("get", histogram_json(&self.latency.get))
                    .with("insert", histogram_json(&self.latency.insert))
                    .with("delete", histogram_json(&self.latency.delete))
                    .with("scan", histogram_json(&self.latency.scan))
                    .with("trim", histogram_json(&self.latency.trim)),
            )
            .with("scanned_entries", self.scanned_entries.into())
            .with(
                "io",
                Json::obj()
                    .with("prefill", io_json(&self.io_prefill))
                    .with("run", io_json(&self.io_run)),
            );
        let base = match reopen_json {
            Some(r) => base.with("reopen", r),
            None => base,
        };
        let base = match concurrent_json {
            Some(c) => base.with("concurrent", c),
            None => base,
        };
        match contended_json {
            Some(c) => base.with("contended", c),
            None => base,
        }
    }

    /// Human console summary.
    pub fn print(&self) {
        println!(
            "{:<18} {:<24} {:>10.0} ops/s  p50 {:>8} ns  p95 {:>8} ns  p99 {:>8} ns  \
             transfers {:>8}",
            self.scenario,
            self.meta.label,
            self.throughput,
            self.latency.overall.p50(),
            self.latency.overall.p95(),
            self.latency.overall.p99(),
            self.io_run.transfers(),
        );
    }
}

/// Header of the `BENCH_*.csv` companion files.
pub fn csv_header() -> &'static str {
    "scenario,structure,backend,shards,dist,ops,prefill,seed,elapsed_s,\
     throughput_ops_per_sec,p50_ns,p95_ns,p99_ns,p999_ns,prefill_transfers,run_transfers"
}

/// Wraps run entries into a schema-versioned `BENCH_<scenario>.json`
/// document, replacing same-identity runs of `existing` (so re-running a
/// cell updates its row while other cells' results survive — the bench
/// trajectory accumulates instead of resetting).
pub fn merge_document(scenario: &str, existing: Option<&Json>, new_runs: &[Json]) -> Json {
    let mut runs: Vec<Json> = existing
        .filter(|doc| {
            doc.get("schema_version").and_then(Json::as_u64) == Some(SCHEMA_VERSION)
                && doc.get("scenario").and_then(Json::as_str) == Some(scenario)
        })
        .and_then(|doc| doc.get("runs"))
        .and_then(Json::as_arr)
        .map(<[Json]>::to_vec)
        .unwrap_or_default();
    for new_run in new_runs {
        let id = run_identity(new_run);
        if let Some(slot) = runs.iter_mut().find(|r| run_identity(r) == id) {
            *slot = new_run.clone();
        } else {
            runs.push(new_run.clone());
        }
    }
    Json::obj()
        .with("schema_version", SCHEMA_VERSION.into())
        .with("scenario", scenario.into())
        .with("runs", Json::Arr(runs))
}

/// The compare/merge key of a serialized run: every meta field that
/// pins the op stream and the cell's behaviour — the serialized form of
/// the cell's `DbConfig` plus the stream parameters. The label is
/// included because it encodes the structure parameters (growth factor,
/// fanout, deamortization) the bare structure name does not — a 2-COLA
/// and an 8-COLA must not replace each other's trajectory rows;
/// cache_bytes because it directly changes transfer counts on file
/// cells. `cascade`/`veb_layout`/`pointer_density` default to the
/// builder defaults when absent, so baselines recorded before those
/// fields existed keep matching runs that use the defaults.
pub fn run_identity(run: &Json) -> String {
    let meta = run.get("meta");
    let s = |k: &str| {
        meta.and_then(|m| m.get(k))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let n = |k: &str| {
        meta.and_then(|m| m.get(k))
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX)
    };
    let parallel = meta
        .and_then(|m| m.get("parallel_ingest"))
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let cascade = meta
        .and_then(|m| m.get("cascade"))
        .and_then(Json::as_bool)
        .unwrap_or(true);
    let veb = meta
        .and_then(|m| m.get("veb_layout"))
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let density = meta
        .and_then(|m| m.get("pointer_density"))
        .and_then(Json::as_f64)
        .unwrap_or(0.1);
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        s("structure"),
        s("label"),
        s("backend"),
        n("shards"),
        n("cache_bytes"),
        parallel,
        cascade,
        veb,
        density,
        s("dist"),
        n("ops"),
        n("prefill"),
        n("seed")
    )
}

/// Renders a merged `BENCH_*.json` document as its companion CSV (one
/// row per run, [`csv_header`] first) — regenerated wholesale from the
/// document so the two artifacts can never drift apart.
pub fn csv_from_document(doc: &Json) -> String {
    let scenario = doc.get("scenario").and_then(Json::as_str).unwrap_or("?");
    let mut out = format!("{}\n", csv_header());
    let empty: &[Json] = &[];
    for r in doc.get("runs").and_then(Json::as_arr).unwrap_or(empty) {
        let meta = r.get("meta");
        let ms = |k: &str| {
            meta.and_then(|m| m.get(k))
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string()
        };
        let mn = |k: &str| {
            meta.and_then(|m| m.get(k))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        let overall = r.get("latency_ns").and_then(|l| l.get("overall"));
        let q = |k: &str| {
            overall
                .and_then(|o| o.get(k))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        let io = |phase: &str| {
            r.get("io")
                .and_then(|io| io.get(phase))
                .and_then(|p| p.get("transfers"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{:.6},{:.1},{},{},{},{},{},{}",
            scenario,
            ms("structure"),
            ms("backend"),
            mn("shards"),
            ms("dist"),
            mn("ops"),
            mn("prefill"),
            mn("seed"),
            r.get("elapsed_s").and_then(Json::as_f64).unwrap_or(0.0),
            r.get("throughput_ops_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            q("p50_ns"),
            q("p95_ns"),
            q("p99_ns"),
            q("p999_ns"),
            io("prefill"),
            io("run"),
        );
    }
    out
}

/// One regression (or advisory) found by [`compare_documents`].
#[derive(Debug, Clone)]
pub struct Finding {
    /// Human description of the delta.
    pub message: String,
    /// Whether this finding should fail the gate.
    pub fails: bool,
}

/// Diffs a current `BENCH_*.json` document against a baseline.
///
/// Block transfers are deterministic for a fixed `(scenario, cell, n,
/// seed)` — same code, same count — so they gate hard: a current value
/// more than `threshold` (fractional) above baseline is a failing
/// finding. Wall-clock throughput depends on the machine, so it only
/// gates when `check_throughput` is set (useful on a dedicated runner);
/// otherwise it reports advisories. Runs missing from the baseline are
/// advisories, so adding a new cell never breaks the gate.
pub fn compare_documents(
    current: &Json,
    baseline: &Json,
    threshold: f64,
    check_throughput: bool,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let (cur_v, base_v) = (
        current.get("schema_version").and_then(Json::as_u64),
        baseline.get("schema_version").and_then(Json::as_u64),
    );
    if cur_v != Some(SCHEMA_VERSION) || base_v != Some(SCHEMA_VERSION) {
        findings.push(Finding {
            message: format!(
                "schema mismatch: current {cur_v:?}, baseline {base_v:?}, tool expects \
                 {SCHEMA_VERSION} — refresh the baseline"
            ),
            fails: true,
        });
        return findings;
    }
    let empty: &[Json] = &[];
    let base_runs = baseline.get("runs").and_then(Json::as_arr).unwrap_or(empty);
    let cur_runs = current.get("runs").and_then(Json::as_arr).unwrap_or(empty);
    for cur in cur_runs {
        let id = run_identity(cur);
        let label = cur
            .get("meta")
            .and_then(|m| m.get("label"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let Some(base) = base_runs.iter().find(|r| run_identity(r) == id) else {
            findings.push(Finding {
                message: format!("{label}: no baseline run (new cell?) — skipped"),
                fails: false,
            });
            continue;
        };
        let transfers = |r: &Json| -> u64 {
            r.get("io")
                .and_then(|io| io.get("run"))
                .and_then(|p| p.get("transfers"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        let (ct, bt) = (transfers(cur), transfers(base));
        if ct as f64 > bt as f64 * (1.0 + threshold) + 0.5 {
            findings.push(Finding {
                message: format!(
                    "{label}: block transfers regressed {bt} → {ct} \
                     (+{:.1}%, threshold {:.1}%)",
                    (ct as f64 / bt.max(1) as f64 - 1.0) * 100.0,
                    threshold * 100.0
                ),
                fails: true,
            });
        } else if (bt as f64) > ct as f64 * (1.0 + threshold) + 0.5 {
            findings.push(Finding {
                message: format!("{label}: block transfers improved {bt} → {ct}"),
                fails: false,
            });
        }
        let tput = |r: &Json| {
            r.get("throughput_ops_per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        let (cth, bth) = (tput(cur), tput(base));
        if cth < bth * (1.0 - threshold) && bth > 0.0 {
            findings.push(Finding {
                message: format!(
                    "{label}: throughput {} {bth:.0} → {cth:.0} ops/s (−{:.1}%)",
                    if check_throughput {
                        "regressed"
                    } else {
                        "lower (advisory)"
                    },
                    (1.0 - cth / bth) * 100.0
                ),
                fails: check_throughput,
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosbt::{DbBuilder, Structure};

    fn small_meta(scenario: &Scenario, n: u64) -> (KeyDist, RunMeta) {
        let dist = scenario.dist_for(n);
        let meta = RunMeta {
            structure: "gcola".into(),
            label: "4-COLA".into(),
            backend: "mem".into(),
            shards: 1,
            cache_bytes: 0,
            parallel_ingest: false,
            cascade: true,
            veb_layout: false,
            pointer_density: 0.1,
            dist: dist.name().into(),
            ops: n,
            prefill: (n as f64 * scenario.prefill_frac) as u64,
            seed: 42,
        };
        (dist, meta)
    }

    #[test]
    fn every_scenario_runs_and_reports() {
        for scenario in SCENARIOS {
            let (dist, meta) = small_meta(scenario, 2000);
            let mut db = DbBuilder::new()
                .structure(Structure::GCola { g: 4 })
                .build()
                .unwrap();
            let report = run(scenario, dist, meta, &mut db);
            // Every op contributes one overall sample; a drain adds one
            // more per streamed chunk on top of the 2000 ops.
            let want = match scenario.kind {
                ScenarioKind::Mixed(_) => 2000,
                ScenarioKind::InsertThenDrain => 2000 + report.latency.scan.count(),
            };
            assert_eq!(
                report.latency.overall.count(),
                want,
                "{}: every op sampled",
                scenario.name
            );
            assert!(report.throughput > 0.0, "{}", scenario.name);
            assert!(report.elapsed_s > 0.0, "{}", scenario.name);
            if scenario.kind == ScenarioKind::InsertThenDrain {
                assert!(
                    report.scanned_entries > 0,
                    "{}: drain streamed entries",
                    scenario.name
                );
            }
            let j = report.to_json();
            assert!(j.get("latency_ns").is_some());
            assert!(j
                .get("io")
                .unwrap()
                .get("run")
                .unwrap()
                .get("transfers")
                .is_some());
        }
    }

    #[test]
    fn merge_document_replaces_by_identity() {
        let scenario = Scenario::by_name("balanced").unwrap();
        let (dist, meta) = small_meta(scenario, 500);
        let mut db = DbBuilder::new().build().unwrap();
        let r1 = run(scenario, dist, meta.clone(), &mut db).to_json();
        let doc = merge_document("balanced", None, std::slice::from_ref(&r1));
        assert_eq!(doc.get("schema_version").unwrap().as_u64(), Some(1));
        // Same identity: replaced, not duplicated.
        let doc2 = merge_document("balanced", Some(&doc), std::slice::from_ref(&r1));
        assert_eq!(doc2.get("runs").unwrap().as_arr().unwrap().len(), 1);
        // Different identity: appended.
        let mut db2 = DbBuilder::new()
            .structure(Structure::BTree)
            .build()
            .unwrap();
        let meta2 = RunMeta {
            structure: "btree".into(),
            label: "B-tree".into(),
            ..meta
        };
        let r2 = run(scenario, dist, meta2, &mut db2).to_json();
        let doc3 = merge_document("balanced", Some(&doc2), &[r2]);
        assert_eq!(doc3.get("runs").unwrap().as_arr().unwrap().len(), 2);
        // Same structure name but different parameters (the label
        // carries g/fanout/deamortization): distinct identity, appended —
        // an 8-COLA must not overwrite the 4-COLA's trajectory row.
        let mut db3 = DbBuilder::new()
            .structure(Structure::GCola { g: 8 })
            .build()
            .unwrap();
        let (dist, meta8) = small_meta(scenario, 500);
        let meta8 = RunMeta {
            label: "8-COLA".into(),
            ..meta8
        };
        let r3 = run(scenario, dist, meta8, &mut db3).to_json();
        let doc4 = merge_document("balanced", Some(&doc3), &[r3]);
        assert_eq!(doc4.get("runs").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn compare_flags_transfer_regressions_not_improvements() {
        let scenario = Scenario::by_name("balanced").unwrap();
        let (dist, meta) = small_meta(scenario, 500);
        let mut db = DbBuilder::new().build().unwrap();
        let r = run(scenario, dist, meta, &mut db).to_json();
        let current = merge_document("balanced", None, std::slice::from_ref(&r));

        // Identical baseline: clean.
        let findings = compare_documents(&current, &current, 0.10, false);
        assert!(findings.iter().all(|f| !f.fails), "{findings:?}");

        // Baseline with *fewer* transfers than current → current regressed.
        // Memory cells report 0 transfers, so fabricate counts on both
        // sides through the JSON (what the CLI actually diffs).
        let inflate = |doc: &Json, t: u64| -> Json {
            let mut doc = doc.clone();
            let Json::Obj(fields) = &mut doc else {
                panic!()
            };
            let runs = fields.iter_mut().find(|(k, _)| k == "runs").unwrap();
            let Json::Arr(runs) = &mut runs.1 else {
                panic!()
            };
            for r in runs {
                let io = r.get("io").unwrap().clone();
                let run_io = io.get("run").unwrap().clone().with("transfers", t.into());
                r.set("io", io.with("run", run_io));
            }
            doc
        };
        let current_bad = inflate(&current, 150);
        let baseline = inflate(&current, 100);
        let findings = compare_documents(&current_bad, &baseline, 0.10, false);
        assert!(
            findings.iter().any(|f| f.fails),
            "50% above a 10% threshold must fail: {findings:?}"
        );
        // Within threshold: clean.
        let findings = compare_documents(&inflate(&current, 105), &baseline, 0.10, false);
        assert!(findings.iter().all(|f| !f.fails), "{findings:?}");
        // Improvement: advisory only.
        let findings = compare_documents(&inflate(&current, 50), &baseline, 0.10, false);
        assert!(findings.iter().all(|f| !f.fails), "{findings:?}");
        assert!(findings.iter().any(|f| f.message.contains("improved")));
        // Missing baseline run: advisory only.
        let empty = Json::obj()
            .with("schema_version", SCHEMA_VERSION.into())
            .with("scenario", "balanced".into())
            .with("runs", Json::Arr(vec![]));
        let findings = compare_documents(&current, &empty, 0.10, false);
        assert!(findings.iter().all(|f| !f.fails), "{findings:?}");
        // Schema mismatch: hard failure.
        let old = Json::obj().with("schema_version", 999u64.into());
        assert!(compare_documents(&current, &old, 0.10, false)[0].fails);
    }

    #[test]
    fn sharded_file_cell_reports_phase_io() {
        let scenario = Scenario::by_name("balanced").unwrap();
        let n = 4000u64;
        let dist = scenario.dist_for(n);
        let path = std::env::temp_dir().join(format!("cosbt-scen-{}.dat", std::process::id()));
        let meta = RunMeta {
            structure: "gcola".into(),
            label: "4-COLA ×2 shards".into(),
            backend: "file".into(),
            shards: 2,
            cache_bytes: 64 * 1024,
            parallel_ingest: false,
            cascade: true,
            veb_layout: false,
            pointer_density: 0.1,
            dist: dist.name().into(),
            ops: n,
            prefill: n / 2,
            seed: 7,
        };
        let builder = DbBuilder::new()
            .structure(Structure::GCola { g: 4 })
            .backend(cosbt::Backend::file(path))
            .cache_bytes(64 * 1024)
            .shards(2);
        let mut db = builder.clone().build().unwrap();
        let report = run(scenario, dist, meta, &mut db);
        assert!(report.io_prefill.transfers() > 0, "prefill hit the files");
        assert!(report.io_run.accesses > 0, "run phase touched the stores");
        drop(db);
        for p in builder.data_paths() {
            std::fs::remove_file(p).ok();
        }
    }
}
