//! Workload generators: the paper's key streams plus the composable
//! scenario layer (key distributions × operation mixes).
//!
//! The paper inserts 64-bit keys in three orders: uniformly random,
//! ascending `[0, …, N−1]`, and descending `[N−1, …, 0]`; search probes
//! are uniformly random existing keys. Those generators are kept
//! unchanged for the figure benches. On top of them, the scenario
//! harness composes a [`KeyDist`] (which keys) with an [`OpMix`] (which
//! operations) into one deterministic, seeded [`OpStream`] — the same
//! seed always yields the same operation sequence, so a run can be
//! replayed against a model for correctness or against a baseline for
//! performance.

use cosbt::testkit::{Rng, Zipf};

/// `n` pseudorandom 64-bit keys (duplicates possible, as in the paper's
/// "N random elements").
pub fn random_keys(n: u64, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Keys `0, 1, …, n−1`.
pub fn ascending(n: u64) -> Vec<u64> {
    (0..n).collect()
}

/// Keys `n−1, …, 1, 0` — the B-tree's best case (Figure 3 inserts the
/// keys in descending order).
pub fn descending(n: u64) -> Vec<u64> {
    (0..n).rev().collect()
}

/// `count` random probes drawn from `keys` (with replacement), as in the
/// paper's 2^15 random searches.
pub fn search_probes(keys: &[u64], count: u64, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    (0..count)
        .map(|_| rng.index(keys.len()))
        .map(|i| keys[i])
        .collect()
}

/// Which keys a scenario touches.
///
/// For the random distributions, key *identities* are drawn from a
/// bounded logical space of `space` distinct keys (so reads actually
/// hit earlier writes), then spread across the full `u64` range
/// order-preservingly — a sharded database with default even splitters
/// sees balanced partitions instead of every key landing in shard 0.
/// The append distributions ([`KeyDist::Ascending`],
/// [`KeyDist::TimeSeriesAppend`]) deliberately emit raw small
/// sequential keys: an append workload is *inherently* tail-heavy, and
/// under even splitters it will hammer shard 0 — measuring exactly the
/// hotspot a sharded deployment must solve with custom
/// `shard_splitters`, not a generator artifact to paper over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key in the space equally likely.
    Uniform {
        /// Number of distinct logical keys.
        space: u64,
    },
    /// YCSB-style zipfian popularity: a small hot set absorbs most
    /// operations. Hot ranks are scattered over the key space by a
    /// hash, so "popular" does not mean "adjacent" (or "same shard").
    Zipfian {
        /// Number of distinct logical keys.
        space: u64,
        /// Skew in `(0, 1)`; YCSB's default is 0.99.
        theta: f64,
    },
    /// Strictly ascending sequence — bulk-load / log-append pattern,
    /// the B-tree's best case and the COLA's carry-heavy case.
    Ascending,
    /// Time-series append: monotone timestamps with bounded out-of-order
    /// arrival (each key may land up to `jitter` behind the newest), the
    /// standard ingest pattern of metrics pipelines.
    TimeSeriesAppend {
        /// Maximum backward displacement of a key.
        jitter: u64,
    },
    /// Zipfian popularity whose hot set *migrates*: every `period` draws
    /// the rank→key mapping is re-scattered, so yesterday's hot keys go
    /// cold and a fresh set heats up — the cache-invalidation pattern of
    /// trending content, rotating dashboards, and diurnal traffic. A
    /// stationary zipfian rewards whoever happens to cache the hot set
    /// once; a shifting one measures how fast a structure re-warms.
    ShiftingHotspot {
        /// Number of distinct logical keys.
        space: u64,
        /// Skew in `(0, 1)`; YCSB's default is 0.99.
        theta: f64,
        /// Draws between hot-set migrations.
        period: u64,
    },
}

impl KeyDist {
    /// Parses the CLI spelling: `uniform`, `zipfian`, `ascending`,
    /// `timeseries`, `shifting_hotspot`.
    pub fn by_name(name: &str, space: u64) -> Option<KeyDist> {
        Some(match name {
            "uniform" => KeyDist::Uniform { space },
            "zipfian" => KeyDist::Zipfian { space, theta: 0.99 },
            "ascending" => KeyDist::Ascending,
            "timeseries" => KeyDist::TimeSeriesAppend { jitter: 64 },
            "shifting_hotspot" => KeyDist::ShiftingHotspot {
                space,
                theta: 0.99,
                period: (space / 2).max(16),
            },
            _ => return None,
        })
    }

    /// The CLI spelling of this distribution.
    pub fn name(&self) -> &'static str {
        match self {
            KeyDist::Uniform { .. } => "uniform",
            KeyDist::Zipfian { .. } => "zipfian",
            KeyDist::Ascending => "ascending",
            KeyDist::TimeSeriesAppend { .. } => "timeseries",
            KeyDist::ShiftingHotspot { .. } => "shifting_hotspot",
        }
    }
}

/// Spreads logical key `k` of a `space`-sized domain across the full
/// `u64` range, preserving order (so range scans and shard splitters
/// still see the logical ordering).
fn spread(k: u64, space: u64) -> u64 {
    k.saturating_mul(u64::MAX / space.max(1))
}

/// SplitMix64 finalizer: scatters zipfian ranks so the hot set is not a
/// contiguous key range.
fn scramble(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Stateful key generator for one [`KeyDist`].
#[derive(Debug, Clone)]
pub struct KeyGen {
    dist: KeyDist,
    zipf: Option<Zipf>,
    next_seq: u64,
}

impl KeyGen {
    /// A generator at the start of the distribution's sequence.
    pub fn new(dist: KeyDist) -> KeyGen {
        let zipf = match dist {
            KeyDist::Zipfian { space, theta } | KeyDist::ShiftingHotspot { space, theta, .. } => {
                Some(Zipf::new(space.max(1), theta))
            }
            _ => None,
        };
        KeyGen {
            dist,
            zipf,
            next_seq: 0,
        }
    }

    /// Draws a key guaranteed **absent** from anything `next_key` (or
    /// [`prefill_run`]) ever produced, while following the same
    /// popularity skew. The spread distributions only ever emit
    /// multiples of the spread step, so the mid-gap point beside a
    /// distribution-typical key is never written; the append
    /// distributions stay far below `2^63` for any realistic run, so a
    /// high-bit key is never written. This is what a negative-lookup
    /// workload probes: keys that fall *inside* the populated key range
    /// (fence checks can't reject them) but match no stored key.
    pub fn next_miss_key(&mut self, rng: &mut Rng) -> u64 {
        match self.dist {
            KeyDist::Uniform { space }
            | KeyDist::Zipfian { space, .. }
            | KeyDist::ShiftingHotspot { space, .. } => {
                self.next_key(rng) + u64::MAX / space.max(1) / 2
            }
            KeyDist::Ascending | KeyDist::TimeSeriesAppend { .. } => 1 << 63 | self.next_key(rng),
        }
    }

    /// The high-water mark of an append distribution: one past the
    /// newest key the generator has emitted (always 0 for the random
    /// distributions, which have no notion of "newest"). A retention
    /// trim expires everything more than a window behind this mark.
    pub fn watermark(&self) -> u64 {
        match self.dist {
            KeyDist::Ascending | KeyDist::TimeSeriesAppend { .. } => self.next_seq,
            _ => 0,
        }
    }

    /// Draws the next key (deterministic given the `rng` stream and the
    /// number of previous draws).
    pub fn next_key(&mut self, rng: &mut Rng) -> u64 {
        match self.dist {
            KeyDist::Uniform { space } => spread(rng.below(space.max(1)), space),
            KeyDist::Zipfian { space, .. } => {
                let rank = self.zipf.as_ref().expect("zipf built").sample(rng);
                spread(scramble(rank) % space.max(1), space)
            }
            KeyDist::Ascending => {
                let k = self.next_seq;
                self.next_seq += 1;
                k
            }
            KeyDist::TimeSeriesAppend { jitter } => {
                let base = self.next_seq;
                self.next_seq += 1;
                base.saturating_sub(if jitter == 0 {
                    0
                } else {
                    rng.below(jitter + 1)
                })
            }
            KeyDist::ShiftingHotspot { space, period, .. } => {
                // `next_seq` counts draws; every `period` draws the
                // epoch increments and the rank→key scatter changes, so
                // the whole hot set jumps to fresh (still scattered)
                // identities while the popularity *shape* stays zipfian.
                let epoch = self.next_seq / period.max(1);
                self.next_seq += 1;
                let rank = self.zipf.as_ref().expect("zipf built").sample(rng);
                let id = scramble(rank.wrapping_add(epoch.wrapping_mul(0x9E3779B9)));
                spread(id % space.max(1), space)
            }
        }
    }
}

/// One benchmark operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup.
    Get(u64),
    /// Upsert.
    Insert(u64, u64),
    /// Delete (tombstone for the log-structured structures).
    Delete(u64),
    /// Range scan: stream up to the given number of entries from the key.
    Scan(u64, usize),
    /// Retention trim: delete every live key strictly below the cutoff —
    /// the expiry pass of a time-series store dropping data older than
    /// its retention window.
    Trim(u64),
}

impl Op {
    /// The op-class label used in reports ("get", "insert", …).
    pub fn class(&self) -> &'static str {
        match self {
            Op::Get(_) => "get",
            Op::Insert(..) => "insert",
            Op::Delete(_) => "delete",
            Op::Scan(..) => "scan",
            Op::Trim(_) => "trim",
        }
    }
}

/// Relative operation weights of a stationary mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Point-lookup weight.
    pub get: u32,
    /// Negative point-lookup weight: gets against keys guaranteed absent
    /// (see [`KeyGen::next_miss_key`]) — the workload class per-level
    /// filters exist for.
    pub neg_get: u32,
    /// Upsert weight.
    pub insert: u32,
    /// Delete weight.
    pub delete: u32,
    /// Range-scan weight.
    pub scan: u32,
    /// Entries streamed per scan.
    pub scan_len: usize,
    /// Retention-trim weight: each trim op deletes everything more than
    /// `retention` keys behind the append watermark (a no-op for
    /// non-append distributions, whose watermark stays 0).
    pub trim: u32,
    /// Retention window in keys for trim ops.
    pub retention: u64,
}

impl OpMix {
    /// 95% reads / 5% writes — the serving-path mix where the B-tree
    /// should shine.
    pub const READ_HEAVY: OpMix = OpMix {
        get: 95,
        neg_get: 0,
        insert: 5,
        delete: 0,
        scan: 0,
        scan_len: 0,
        trim: 0,
        retention: 0,
    };
    /// 50% reads / 50% writes.
    pub const BALANCED: OpMix = OpMix {
        get: 50,
        neg_get: 0,
        insert: 45,
        delete: 5,
        scan: 0,
        scan_len: 0,
        trim: 0,
        retention: 0,
    };
    /// 5% reads / 95% writes — the streaming-ingest mix the COLA family
    /// is built for.
    pub const WRITE_HEAVY: OpMix = OpMix {
        get: 5,
        neg_get: 0,
        insert: 90,
        delete: 5,
        scan: 0,
        scan_len: 0,
        trim: 0,
        retention: 0,
    };
    /// Mostly range scans over a trickle of writes (analytics over a
    /// slowly changing table).
    pub const SCAN_HEAVY: OpMix = OpMix {
        get: 10,
        neg_get: 0,
        insert: 10,
        delete: 0,
        scan: 80,
        scan_len: 100,
        trim: 0,
        retention: 0,
    };
    /// Pure insertion — the drain phase of insert-then-range-drain is
    /// generated by the scenario runner, not by the mix.
    pub const INSERT_ONLY: OpMix = OpMix {
        get: 0,
        neg_get: 0,
        insert: 100,
        delete: 0,
        scan: 0,
        scan_len: 0,
        trim: 0,
        retention: 0,
    };
    /// 90% negative lookups over a trickle of hits and writes — the
    /// existence-check mix (dedup, cache-fill, join probes) where a read
    /// path that rejects misses without touching data wins outright.
    pub const MISS_HEAVY: OpMix = OpMix {
        get: 5,
        neg_get: 90,
        insert: 5,
        delete: 0,
        scan: 0,
        scan_len: 0,
        trim: 0,
        retention: 0,
    };
    /// Metrics-pipeline retention: heavy append, a few recent-window
    /// reads and scans, and periodic trims that expire everything more
    /// than `retention` keys behind the newest timestamp — the
    /// steady-state shape of a time-series store whose live set is
    /// bounded while its write volume is not.
    pub const TIMESERIES_RETENTION: OpMix = OpMix {
        get: 4,
        neg_get: 0,
        insert: 90,
        delete: 0,
        scan: 4,
        scan_len: 100,
        trim: 2,
        retention: 4096,
    };

    fn total(&self) -> u32 {
        self.get + self.neg_get + self.insert + self.delete + self.scan + self.trim
    }
}

/// A deterministic operation stream: `mix` × `dist`, seeded. Equal
/// parameters yield equal streams, which is what lets a scenario run be
/// replayed against a `BTreeMap` model or compared across structures.
#[derive(Debug, Clone)]
pub struct OpStream {
    mix: OpMix,
    keys: KeyGen,
    rng: Rng,
    produced: u64,
}

impl OpStream {
    /// A stream at its start.
    pub fn new(mix: OpMix, dist: KeyDist, seed: u64) -> OpStream {
        assert!(mix.total() > 0, "an op mix needs at least one weight");
        OpStream {
            mix,
            keys: KeyGen::new(dist),
            rng: Rng::new(seed),
            produced: 0,
        }
    }
}

impl Iterator for OpStream {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let roll = self.rng.below(self.mix.total() as u64) as u32;
        self.produced += 1;
        // One key draw per op, after the roll, so mixes without a
        // `neg_get` band replay the exact streams they always produced.
        let m = self.mix;
        Some(if roll < m.get {
            Op::Get(self.keys.next_key(&mut self.rng))
        } else if roll < m.get + m.neg_get {
            Op::Get(self.keys.next_miss_key(&mut self.rng))
        } else if roll < m.get + m.neg_get + m.insert {
            // Values encode the op index, so replay divergence is visible.
            Op::Insert(self.keys.next_key(&mut self.rng), self.produced)
        } else if roll < m.get + m.neg_get + m.insert + m.delete {
            Op::Delete(self.keys.next_key(&mut self.rng))
        } else if roll < m.get + m.neg_get + m.insert + m.delete + m.scan {
            Op::Scan(self.keys.next_key(&mut self.rng), m.scan_len.max(1))
        } else {
            // A trim consumes no rng draw: its cutoff is a function of
            // the generator's watermark, so the key stream around it is
            // unchanged whether or not the trim band exists.
            Op::Trim(self.keys.watermark().saturating_sub(m.retention))
        })
    }
}

/// A key-sorted unique run of `n` prefill pairs drawn from `dist`
/// (values are the draw index; later draws win on duplicate keys, as
/// `insert_batch` requires sorted-stable runs).
pub fn prefill_run(dist: KeyDist, n: u64, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = Rng::new(seed);
    let mut keys = KeyGen::new(dist);
    let mut run: Vec<(u64, u64)> = (0..n).map(|i| (keys.next_key(&mut rng), i)).collect();
    run.sort_by_key(|&(k, _)| k); // stable: later draws stay later
    run.dedup_by(|later, earlier| {
        if later.0 == earlier.0 {
            earlier.1 = later.1; // keep the newest value per key
            true
        } else {
            false
        }
    });
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_deterministic_and_sized() {
        assert_eq!(random_keys(100, 1), random_keys(100, 1));
        assert_ne!(random_keys(100, 1), random_keys(100, 2));
        assert_eq!(ascending(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(descending(5), vec![4, 3, 2, 1, 0]);
        let keys = random_keys(50, 3);
        let probes = search_probes(&keys, 200, 4);
        assert_eq!(probes.len(), 200);
        assert!(probes.iter().all(|p| keys.contains(p)));
    }

    #[test]
    fn op_streams_replay_exactly() {
        for dist in [
            KeyDist::Uniform { space: 1000 },
            KeyDist::Zipfian {
                space: 1000,
                theta: 0.99,
            },
            KeyDist::Ascending,
            KeyDist::TimeSeriesAppend { jitter: 16 },
        ] {
            let a: Vec<Op> = OpStream::new(OpMix::BALANCED, dist, 42)
                .take(2000)
                .collect();
            let b: Vec<Op> = OpStream::new(OpMix::BALANCED, dist, 42)
                .take(2000)
                .collect();
            assert_eq!(a, b, "{dist:?} must replay");
            let c: Vec<Op> = OpStream::new(OpMix::BALANCED, dist, 43)
                .take(2000)
                .collect();
            assert_ne!(a, c, "{dist:?} must vary with the seed");
        }
    }

    #[test]
    fn mixes_are_roughly_calibrated() {
        let ops: Vec<Op> = OpStream::new(OpMix::READ_HEAVY, KeyDist::Uniform { space: 100 }, 7)
            .take(10_000)
            .collect();
        let gets = ops.iter().filter(|o| matches!(o, Op::Get(_))).count();
        assert!(
            (9_000..10_000).contains(&gets),
            "95/5 mix produced {gets} gets"
        );
        let ops: Vec<Op> = OpStream::new(OpMix::SCAN_HEAVY, KeyDist::Uniform { space: 100 }, 7)
            .take(10_000)
            .collect();
        let scans = ops.iter().filter(|o| matches!(o, Op::Scan(..))).count();
        assert!((7_000..9_000).contains(&scans), "{scans} scans");
    }

    #[test]
    fn ascending_and_timeseries_stay_monotoneish() {
        let mut rng = Rng::new(1);
        let mut g = KeyGen::new(KeyDist::Ascending);
        let keys: Vec<u64> = (0..100).map(|_| g.next_key(&mut rng)).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));

        let mut g = KeyGen::new(KeyDist::TimeSeriesAppend { jitter: 8 });
        let mut hi = 0u64;
        for i in 0..10_000u64 {
            let k = g.next_key(&mut rng);
            assert!(k + 8 >= i, "key {k} fell more than jitter behind {i}");
            hi = hi.max(k);
        }
        assert!(hi >= 10_000 - 9, "the sequence advances");
    }

    #[test]
    fn zipfian_keys_are_skewed_but_spread() {
        let mut rng = Rng::new(5);
        let mut g = KeyGen::new(KeyDist::Zipfian {
            space: 10_000,
            theta: 0.99,
        });
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.next_key(&mut rng)).or_insert(0u64) += 1;
        }
        let mut freq: Vec<u64> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        assert!(freq[0] > 1000, "hottest key absorbs >5% of traffic");
        // Hot keys are scattered: the two hottest are not adjacent ranks
        // of the spread domain.
        let mut hot: Vec<u64> = counts
            .iter()
            .filter(|(_, &c)| c >= freq[1])
            .map(|(&k, _)| k)
            .collect();
        hot.sort_unstable();
        assert!(hot.len() >= 2);
        assert!(
            hot[1] - hot[0] > u64::MAX / 10_000,
            "hot set not contiguous"
        );
    }

    #[test]
    fn prefill_runs_are_sorted_unique_newest_wins() {
        let run = prefill_run(KeyDist::Uniform { space: 500 }, 2000, 11);
        assert!(run.windows(2).all(|w| w[0].0 < w[1].0), "sorted unique");
        assert!(run.len() <= 500);
        // Replay by hand: the kept value per key is the latest draw.
        let mut rng = Rng::new(11);
        let mut keys = KeyGen::new(KeyDist::Uniform { space: 500 });
        let mut model = std::collections::BTreeMap::new();
        for i in 0..2000u64 {
            model.insert(keys.next_key(&mut rng), i);
        }
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(run, want);
    }

    #[test]
    fn miss_keys_never_collide_with_generated_keys() {
        for dist in [
            KeyDist::Uniform { space: 1000 },
            KeyDist::Zipfian {
                space: 1000,
                theta: 0.99,
            },
            KeyDist::Ascending,
            KeyDist::TimeSeriesAppend { jitter: 16 },
        ] {
            // Everything next_key can emit: the spread dists produce
            // multiples of the spread step only; the append dists stay
            // tiny. Misses sit mid-gap / above the high bit — provably
            // disjoint, not just improbably so.
            let mut produced = std::collections::HashSet::new();
            let mut rng = Rng::new(9);
            let mut g = KeyGen::new(dist);
            for _ in 0..20_000 {
                produced.insert(g.next_key(&mut rng));
            }
            let mut rng = Rng::new(10);
            let mut g = KeyGen::new(dist);
            for _ in 0..5_000 {
                let miss = g.next_miss_key(&mut rng);
                assert!(!produced.contains(&miss), "{dist:?}: {miss} collided");
            }
        }
    }

    #[test]
    fn miss_heavy_mix_is_mostly_negative_gets() {
        let dist = KeyDist::Zipfian {
            space: 1000,
            theta: 0.99,
        };
        let mut live = std::collections::HashSet::new();
        let mut rng = Rng::new(3);
        let mut g = KeyGen::new(dist);
        for _ in 0..100_000 {
            live.insert(g.next_key(&mut rng));
        }
        let ops: Vec<Op> = OpStream::new(OpMix::MISS_HEAVY, dist, 7)
            .take(10_000)
            .collect();
        let (mut neg, mut gets) = (0, 0);
        for op in &ops {
            if let Op::Get(k) = op {
                gets += 1;
                if !live.contains(k) {
                    neg += 1;
                }
            }
        }
        assert!(
            (9_200..10_000).contains(&gets),
            "95% gets expected, got {gets}"
        );
        assert!(
            neg as f64 >= gets as f64 * 0.9,
            "negative lookups should dominate: {neg}/{gets}"
        );
    }

    #[test]
    fn dist_names_roundtrip() {
        for name in [
            "uniform",
            "zipfian",
            "ascending",
            "timeseries",
            "shifting_hotspot",
        ] {
            assert_eq!(KeyDist::by_name(name, 10).unwrap().name(), name);
        }
        assert!(KeyDist::by_name("nope", 10).is_none());
    }

    #[test]
    fn new_workload_streams_replay_exactly() {
        // The determinism contract extends to the heavy-traffic tier:
        // same (mix, dist, seed) → byte-identical op stream.
        let cases = [
            (
                OpMix::READ_HEAVY,
                KeyDist::ShiftingHotspot {
                    space: 1000,
                    theta: 0.99,
                    period: 500,
                },
            ),
            (
                OpMix::TIMESERIES_RETENTION,
                KeyDist::TimeSeriesAppend { jitter: 16 },
            ),
        ];
        for (mix, dist) in cases {
            let a: Vec<Op> = OpStream::new(mix, dist, 42).take(5000).collect();
            let b: Vec<Op> = OpStream::new(mix, dist, 42).take(5000).collect();
            assert_eq!(a, b, "{dist:?} must replay");
            let c: Vec<Op> = OpStream::new(mix, dist, 43).take(5000).collect();
            assert_ne!(a, c, "{dist:?} must vary with the seed");
        }
    }

    #[test]
    fn zero_trim_weight_keeps_legacy_streams_identical() {
        // A mix that never rolls a trim must replay the exact stream the
        // pre-trim OpMix produced — `retention` must be inert at weight 0
        // and the roll/draw sequence unchanged.
        let dist = KeyDist::TimeSeriesAppend { jitter: 16 };
        let with_window = OpMix {
            retention: 12345,
            ..OpMix::BALANCED
        };
        let a: Vec<Op> = OpStream::new(OpMix::BALANCED, dist, 42)
            .take(5000)
            .collect();
        let b: Vec<Op> = OpStream::new(with_window, dist, 42).take(5000).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|op| !matches!(op, Op::Trim(_))));
    }

    #[test]
    fn shifting_hotspot_migrates_its_hot_set() {
        let dist = KeyDist::ShiftingHotspot {
            space: 10_000,
            theta: 0.99,
            period: 20_000,
        };
        let mut rng = Rng::new(5);
        let mut g = KeyGen::new(dist);
        let hot = |g: &mut KeyGen, rng: &mut Rng| -> Vec<u64> {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..20_000 {
                *counts.entry(g.next_key(rng)).or_insert(0u64) += 1;
            }
            let mut by_freq: Vec<(u64, u64)> = counts.into_iter().collect();
            by_freq.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
            by_freq.truncate(10);
            by_freq.into_iter().map(|(k, _)| k).collect()
        };
        // One full period per sample: the first epoch's top-10 and the
        // second epoch's top-10 must be (almost entirely) different keys,
        // while each epoch alone is as skewed as a stationary zipfian.
        let first = hot(&mut g, &mut rng);
        let second = hot(&mut g, &mut rng);
        let overlap = first.iter().filter(|k| second.contains(k)).count();
        assert!(
            overlap <= 2,
            "hot sets should migrate between periods, {overlap}/10 overlapped"
        );
    }

    #[test]
    fn timeseries_retention_trims_behind_the_watermark() {
        let dist = KeyDist::TimeSeriesAppend { jitter: 16 };
        let ops: Vec<Op> = OpStream::new(OpMix::TIMESERIES_RETENTION, dist, 7)
            .take(50_000)
            .collect();
        let trims: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Trim(c) => Some(*c),
                _ => None,
            })
            .collect();
        assert!(
            (500..2000).contains(&trims.len()),
            "2% trim weight produced {} trims",
            trims.len()
        );
        // Cutoffs are monotone (the watermark only advances) and, once
        // the stream outgrows the window, sit exactly `retention` behind
        // the number of keys drawn so far.
        assert!(trims.windows(2).all(|w| w[0] <= w[1]));
        assert!(*trims.last().unwrap() > 0, "late trims expire data");
        let mut drawn = 0u64;
        for op in &ops {
            match op {
                Op::Trim(c) => {
                    assert_eq!(*c, drawn.saturating_sub(4096));
                }
                _ => drawn += 1,
            }
        }
        // Replaying the ops against a model keeps the live set bounded
        // by window + in-flight jitter, despite unbounded appends.
        let mut model = std::collections::BTreeMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    model.insert(*k, *v);
                }
                Op::Trim(c) => {
                    model = model.split_off(c);
                }
                _ => {}
            }
        }
        assert!(
            model.len() as u64 <= 4096 + 17,
            "live set must stay near the retention window, got {}",
            model.len()
        );
    }
}
