//! Key-stream generators matching the paper's experiments.
//!
//! The paper inserts 64-bit keys in three orders: uniformly random,
//! ascending `[0, …, N−1]`, and descending `[N−1, …, 0]`. Search probes
//! are uniformly random existing keys.

use cosbt::testkit::Rng;

/// `n` pseudorandom 64-bit keys (duplicates possible, as in the paper's
/// "N random elements").
pub fn random_keys(n: u64, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Keys `0, 1, …, n−1`.
pub fn ascending(n: u64) -> Vec<u64> {
    (0..n).collect()
}

/// Keys `n−1, …, 1, 0` — the B-tree's best case (Figure 3 inserts the
/// keys in descending order).
pub fn descending(n: u64) -> Vec<u64> {
    (0..n).rev().collect()
}

/// `count` random probes drawn from `keys` (with replacement), as in the
/// paper's 2^15 random searches.
pub fn search_probes(keys: &[u64], count: u64, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    (0..count).map(|_| keys[rng.index(keys.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_deterministic_and_sized() {
        assert_eq!(random_keys(100, 1), random_keys(100, 1));
        assert_ne!(random_keys(100, 1), random_keys(100, 2));
        assert_eq!(ascending(5), vec![0, 1, 2, 3, 4]);
        assert_eq!(descending(5), vec![4, 3, 2, 1, 0]);
        let keys = random_keys(50, 3);
        let probes = search_probes(&keys, 200, 4);
        assert_eq!(probes.len(), 200);
        assert!(probes.iter().all(|p| keys.contains(p)));
    }
}
