//! Measurement loops and reporting.
//!
//! The paper measures "the time once every 2^20 inserts" and plots
//! average inserts/second against N on a log-log scale; searches are
//! timed after search number 2^x. These helpers reproduce those series at
//! configurable checkpoints and emit both a human-readable table and CSV.

use std::io::Write as _;
use std::time::{Duration, Instant};

use cosbt_core::Dictionary;
use cosbt_dam::IoStats;

/// Disk model matching the paper's testbed: 120 MiB/s streaming (their
/// measured raw bandwidth) and ~8 ms per random access.
pub const DISK_BW: f64 = 120.0 * 1024.0 * 1024.0;
/// Seek cost of the modeled 2007 disk, in milliseconds.
pub const DISK_SEEK_MS: f64 = 8.0;
/// Page size used by the out-of-core stores.
pub const DISK_BLOCK: usize = 4096;

/// One plotted point.
#[derive(Debug, Clone, Copy)]
pub struct Checkpoint {
    /// Operations completed so far (the paper's N).
    pub n: u64,
    /// Seconds since the measurement started.
    pub elapsed_s: f64,
    /// Cumulative average operations/second (what the paper plots).
    pub avg_ops_per_sec: f64,
    /// Operations/second within the last window.
    pub window_ops_per_sec: f64,
    /// Cumulative real block transfers (0 when not instrumented).
    pub transfers: u64,
    /// Cumulative non-sequential device accesses.
    pub seeks: u64,
    /// Ops/second under the rotating-disk model (CPU time + modeled disk
    /// time); the figure the paper's hardware would have shown.
    pub disk_model_ops_per_sec: f64,
}

/// One structure's series for a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label ("4-COLA", "B-tree", …).
    pub name: String,
    /// Checkpointed measurements.
    pub points: Vec<Checkpoint>,
    /// Whether the run stopped early on the time cap (the paper stopped
    /// its B-tree run after 87 hours at ~2^28 of 2^38 inserts).
    pub capped: bool,
}

impl Series {
    /// The final cumulative rate, for the ratio table.
    pub fn final_rate(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.avg_ops_per_sec)
    }

    /// The final disk-model rate (paper-comparable).
    pub fn final_disk_rate(&self) -> f64 {
        self.points.last().map_or(0.0, |p| p.disk_model_ops_per_sec)
    }

    /// Prints a table in the paper's axes (N, avg ops/sec).
    pub fn print(&self) {
        println!(
            "# {}{}",
            self.name,
            if self.capped { "  (time-capped)" } else { "" }
        );
        println!(
            "{:>12} {:>12} {:>14} {:>14} {:>12} {:>10} {:>14}",
            "N", "elapsed_s", "avg_ops/s", "window_ops/s", "transfers", "seeks", "disk-model/s"
        );
        for p in &self.points {
            println!(
                "{:>12} {:>12.3} {:>14.0} {:>14.0} {:>12} {:>10} {:>14.0}",
                p.n,
                p.elapsed_s,
                p.avg_ops_per_sec,
                p.window_ops_per_sec,
                p.transfers,
                p.seeks,
                p.disk_model_ops_per_sec
            );
        }
    }

    /// Appends this series to a CSV file (creating it with a header).
    ///
    /// The update is atomic — the existing content plus the new rows are
    /// written to a temporary sibling which then replaces the file — so a
    /// crash mid-write can never truncate previously collected results,
    /// and every I/O error propagates instead of being swallowed.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut content = match std::fs::read_to_string(path) {
            Ok(existing) => existing,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                "series,n,elapsed_s,avg_ops_per_sec,window_ops_per_sec,transfers,seeks,\
                 disk_model_ops_per_sec\n"
                    .to_string()
            }
            Err(e) => return Err(e),
        };
        for p in &self.points {
            use std::fmt::Write as _;
            let _ = writeln!(
                content,
                "{},{},{:.6},{:.1},{:.1},{},{},{:.1}",
                self.name,
                p.n,
                p.elapsed_s,
                p.avg_ops_per_sec,
                p.window_ops_per_sec,
                p.transfers,
                p.seeks,
                p.disk_model_ops_per_sec
            );
        }
        write_atomic(path, &content)
    }
}

/// Writes `content` to `path` atomically: a temporary sibling in the
/// same directory (so the rename cannot cross filesystems) is written,
/// then renamed over the target. Used for every results artifact — CSV
/// and `BENCH_*.json` — so partial writes never corrupt the trajectory.
pub fn write_atomic(path: &std::path::Path, content: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(content.as_bytes())?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort: drop the half-written temp file on failure.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Power-of-two checkpoints from `lo` to `hi` inclusive.
pub fn pow2_checkpoints(lo: u64, hi: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut n = lo;
    while n <= hi {
        out.push(n);
        n *= 2;
    }
    out
}

/// Feeds `keys` into `dict`, checkpointing at the given counts, stopping
/// early when `time_cap` elapses (reporting `capped`). `transfers` reads
/// the cumulative real-I/O counter (return 0 if not instrumented).
pub fn insert_throughput(
    name: &str,
    dict: &mut dyn Dictionary,
    keys: &[u64],
    checkpoints: &[u64],
    time_cap: Duration,
    io: &dyn Fn() -> IoStats,
) -> Series {
    let start = Instant::now();
    let mut points = Vec::new();
    let mut next_cp = 0usize;
    let mut last_t = 0.0f64;
    let mut last_n = 0u64;
    let mut capped = false;
    for (i, &k) in keys.iter().enumerate() {
        dict.insert(k, i as u64);
        let n = i as u64 + 1;
        if next_cp < checkpoints.len() && n == checkpoints[next_cp] {
            let t = start.elapsed().as_secs_f64();
            let st = io();
            let disk = st.modeled_disk_seconds(DISK_BLOCK, DISK_SEEK_MS, DISK_BW);
            points.push(Checkpoint {
                n,
                elapsed_s: t,
                avg_ops_per_sec: n as f64 / t.max(1e-9),
                window_ops_per_sec: (n - last_n) as f64 / (t - last_t).max(1e-9),
                transfers: st.transfers(),
                seeks: st.seeks,
                disk_model_ops_per_sec: n as f64 / (t + disk).max(1e-9),
            });
            last_t = t;
            last_n = n;
            next_cp += 1;
            if start.elapsed() > time_cap {
                capped = true;
                break;
            }
        }
    }
    Series {
        name: name.to_string(),
        points,
        capped,
    }
}

/// Runs point lookups, checkpointing after probe number 2^x as in
/// Figure 4 (the first searches are slow because the cache is cold).
pub fn search_throughput(
    name: &str,
    dict: &mut dyn Dictionary,
    probes: &[u64],
    io: &dyn Fn() -> IoStats,
) -> Series {
    let start = Instant::now();
    let mut points = Vec::new();
    let mut hits = 0u64;
    let mut last_t = 0.0f64;
    let mut last_n = 0u64;
    let mut next_cp = 1u64;
    for (i, &k) in probes.iter().enumerate() {
        if dict.get(k).is_some() {
            hits += 1;
        }
        let n = i as u64 + 1;
        if n == next_cp {
            let t = start.elapsed().as_secs_f64();
            let st = io();
            let disk = st.modeled_disk_seconds(DISK_BLOCK, DISK_SEEK_MS, DISK_BW);
            points.push(Checkpoint {
                n,
                elapsed_s: t,
                avg_ops_per_sec: n as f64 / t.max(1e-9),
                window_ops_per_sec: (n - last_n) as f64 / (t - last_t).max(1e-9),
                transfers: st.transfers(),
                seeks: st.seeks,
                disk_model_ops_per_sec: n as f64 / (t + disk).max(1e-9),
            });
            last_t = t;
            last_n = n;
            next_cp *= 2;
        }
    }
    let _ = hits;
    Series {
        name: name.to_string(),
        points,
        capped: false,
    }
}

/// Prints the headline ratio line used by the in-text table (E5).
pub fn print_ratio(label: &str, a_name: &str, a: f64, b_name: &str, b: f64) {
    if a <= 0.0 || b <= 0.0 {
        println!("{label}: insufficient data");
        return;
    }
    if a >= b {
        println!("{label}: {a_name} is {:.1}x faster than {b_name}", a / b);
    } else {
        println!("{label}: {a_name} is {:.1}x slower than {b_name}", b / a);
    }
}

/// Directory for CSV outputs: `<workspace>/results`.
pub fn results_dir() -> std::path::PathBuf {
    let mut d = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    d.pop();
    d.pop();
    d.push("results");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop(std::collections::BTreeMap<u64, u64>);
    impl Dictionary for Nop {
        fn insert(&mut self, key: u64, val: u64) {
            self.0.insert(key, val);
        }
        fn delete(&mut self, key: u64) {
            self.0.remove(&key);
        }
        fn get(&mut self, key: u64) -> Option<u64> {
            self.0.get(&key).copied()
        }
        fn cursor(&mut self, lo: u64, hi: u64) -> cosbt_core::Cursor<'_> {
            cosbt_core::Cursor::new(cosbt_core::VecCursor::new(
                self.0.range(lo..=hi).map(|(&k, &v)| (k, v)).collect(),
            ))
        }
        fn physical_len(&self) -> usize {
            self.0.len()
        }
        fn name(&self) -> &'static str {
            "nop"
        }
    }

    #[test]
    fn checkpoints_and_series() {
        assert_eq!(pow2_checkpoints(4, 32), vec![4, 8, 16, 32]);
        let mut d = Nop(Default::default());
        let keys: Vec<u64> = (0..64).collect();
        let s = insert_throughput(
            "nop",
            &mut d,
            &keys,
            &pow2_checkpoints(4, 64),
            Duration::from_secs(60),
            &|| IoStats {
                fetches: 7,
                seeks: 2,
                ..Default::default()
            },
        );
        assert_eq!(s.points.len(), 5);
        assert_eq!(s.points.last().unwrap().n, 64);
        assert!(!s.capped);
        assert!(s.final_rate() > 0.0);
        assert_eq!(s.points[0].transfers, 7);
        assert_eq!(s.points[0].seeks, 2);
        assert!(s.final_disk_rate() > 0.0);
        assert!(
            s.final_disk_rate() < s.final_rate(),
            "disk model must slow things down"
        );
    }

    #[test]
    fn write_csv_appends_atomically_and_propagates_errors() {
        let dir = std::env::temp_dir().join(format!("cosbt-csv-{}", std::process::id()));
        let path = dir.join("series.csv");
        std::fs::remove_file(&path).ok();
        let s = Series {
            name: "a".into(),
            points: vec![Checkpoint {
                n: 8,
                elapsed_s: 0.5,
                avg_ops_per_sec: 16.0,
                window_ops_per_sec: 16.0,
                transfers: 3,
                seeks: 1,
                disk_model_ops_per_sec: 10.0,
            }],
            capped: false,
        };
        s.write_csv(&path).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(first.starts_with("series,n,"), "header written once");
        assert_eq!(first.lines().count(), 2);
        // A second series appends; prior rows survive.
        let mut t = s.clone();
        t.name = "b".into();
        t.write_csv(&path).unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(second.lines().count(), 3);
        assert!(second.contains("a,8,") && second.contains("b,8,"));
        assert_eq!(second.matches("series,n,").count(), 1);
        // No temp droppings left behind.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // Errors propagate: the target's parent is an existing *file*.
        let bad = path.join("sub").join("x.csv");
        assert!(s.write_csv(&bad).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn search_series_checkpoints_at_powers_of_two() {
        let mut d = Nop(Default::default());
        for k in 0..100u64 {
            d.insert(k, k);
        }
        let probes: Vec<u64> = (0..33u64).map(|i| i % 100).collect();
        let s = search_throughput("nop", &mut d, &probes, &IoStats::default);
        let ns: Vec<u64> = s.points.iter().map(|p| p.n).collect();
        assert_eq!(ns, vec![1, 2, 4, 8, 16, 32]);
    }
}
