//! **E9** — deamortization (Theorems 22 & 24): the amortized COLA's
//! worst-case insert touches Θ(N) cells (a full-structure merge), while
//! the deamortized variants bound every insert by O(log N) moves with the
//! same amortized totals.
//!
//! Prints, for each structure: total cells written per insert (amortized
//! cost), the worst single insert, and a tail profile of per-insert cell
//! movement.

use cosbt_bench::measure::results_dir;
use cosbt_bench::{random_keys, scaled};
use cosbt_core::{BasicCola, DeamortBasicCola, DeamortCola, Dictionary};
use std::io::Write as _;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p) as usize;
    sorted[idx]
}

fn profile(
    name: &str,
    mut writes_of: impl FnMut(u64) -> u64,
    keys: &[u64],
) -> (f64, u64, u64, u64) {
    let mut deltas = Vec::with_capacity(keys.len());
    let mut prev = 0u64;
    for (i, &_k) in keys.iter().enumerate() {
        let now = writes_of(i as u64);
        deltas.push(now - prev);
        prev = now;
    }
    deltas.sort_unstable();
    let total: u64 = deltas.iter().sum();
    let avg = total as f64 / keys.len() as f64;
    let p99 = percentile(&deltas, 0.99);
    let p999 = percentile(&deltas, 0.999);
    let max = *deltas.last().unwrap();
    println!(
        "{:>26} {:>12.2} {:>10} {:>10} {:>12}",
        name, avg, p99, p999, max
    );
    (avg, p99, p999, max)
}

fn main() {
    let n = scaled(1 << 16, 1 << 20);
    let keys = random_keys(n, 0xE9);
    let lg = (n as f64).log2();
    let csv_path = results_dir().join("deamort_worst_case.csv");
    std::fs::create_dir_all(results_dir()).ok();
    let mut csv = std::fs::File::create(&csv_path).unwrap();
    writeln!(csv, "structure,avg_writes,p99,p999,max,log_n").unwrap();

    println!("== E9: per-insert cell movement, N = {n} (log N = {lg:.0}) ==");
    println!(
        "{:>26} {:>12} {:>10} {:>10} {:>12}",
        "structure", "avg", "p99", "p99.9", "worst"
    );

    let mut amort = BasicCola::new_plain();
    let mut i = 0usize;
    let r = profile(
        "amortized basic COLA",
        |_| {
            let k = keys[i];
            amort.insert(k, i as u64);
            i += 1;
            amort.stats().cells_written
        },
        &keys,
    );
    writeln!(csv, "basic,{},{},{},{},{lg:.1}", r.0, r.1, r.2, r.3).unwrap();

    let mut dba = DeamortBasicCola::new_plain();
    let mut i = 0usize;
    let r = profile(
        "deamortized basic COLA",
        |_| {
            let k = keys[i];
            dba.insert(k, i as u64);
            i += 1;
            dba.stats().cells_written
        },
        &keys,
    );
    writeln!(csv, "deamort-basic,{},{},{},{},{lg:.1}", r.0, r.1, r.2, r.3).unwrap();
    let worst_basic = r.3;

    let mut dc = DeamortCola::new_plain();
    let mut i = 0usize;
    let r = profile(
        "deamortized COLA",
        |_| {
            let k = keys[i];
            dc.insert(k, i as u64);
            i += 1;
            dc.stats().cells_written
        },
        &keys,
    );
    writeln!(csv, "deamort,{},{},{},{},{lg:.1}", r.0, r.1, r.2, r.3).unwrap();

    println!(
        "\nshape check: the amortized COLA's worst insert moves ~N cells;\n\
         the deamortized variants stay within m = O(log N) ≈ {:.0}–{:.0}\n\
         (measured deamortized-basic worst: {worst_basic}).",
        2.0 * lg + 2.0,
        6.0 * lg + 16.0
    );
    println!("csv: {}", csv_path.display());
}
