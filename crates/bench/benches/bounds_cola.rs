//! **E6** — COLA theory bounds in the DAM simulator (Lemmas 19 & 20).
//!
//! * amortized insert transfers = O((log N)/B);
//! * COLA (with lookahead pointers) search transfers = O(log N);
//! * basic COLA search transfers = O(log² N).
//!
//! The table prints, per N, the measured transfers per operation next to
//! the predicted shape (a constant times log N/B, log N, log² N); the
//! ratio column should stay roughly flat as N doubles.

use cosbt_bench::measure::results_dir;
use cosbt_bench::{random_keys, scaled, search_probes};
use cosbt_core::entry::Cell;
use cosbt_core::{BasicCola, Dictionary, GCola};
use cosbt_dam::{new_shared_sim, CacheConfig, SimMem};
use std::io::Write as _;

const BLOCK: usize = 4096; // bytes; B = 128 cells of 32 bytes
const MEM_BLOCKS: usize = 64;

fn main() {
    let max_n = scaled(1 << 16, 1 << 20);
    let csv_path = results_dir().join("bounds_cola.csv");
    std::fs::create_dir_all(results_dir()).ok();
    let mut csv = std::fs::File::create(&csv_path).unwrap();
    writeln!(csv, "structure,n,insert_tpi,search_tps,log_n,b_cells").unwrap();

    println!("== E6: COLA transfer bounds (B = 128 cells, M = {MEM_BLOCKS} blocks) ==");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>16} {:>16}",
        "N", "logN", "ins tpi", "ins tpi/(lgN/B)", "search tps", "search shape"
    );
    let mut n = 1u64 << 12;
    while n <= max_n {
        let keys = random_keys(n, 0xE6);
        let probes = search_probes(&keys, 512, 0xE61);
        let lg = (n as f64).log2();
        let b_cells = (BLOCK / 32) as f64;

        // COLA with lookahead pointers (growth 2, every-8th sampling).
        let sim = new_shared_sim(CacheConfig::new(BLOCK, MEM_BLOCKS));
        let mem: SimMem<Cell> = SimMem::with_elem_bytes(sim.clone(), 32);
        let mut cola = GCola::new(mem, 2, 0.125);
        for (i, &k) in keys.iter().enumerate() {
            cola.insert(k, i as u64);
        }
        let ins_t = sim.borrow().stats().transfers() as f64 / n as f64;
        sim.borrow_mut().drop_cache();
        sim.borrow_mut().reset_stats();
        for &p in &probes {
            cola.get(p);
        }
        let search_t = sim.borrow().stats().fetches as f64 / probes.len() as f64;
        println!(
            "{:>10} {:>12.1} {:>14.4} {:>14.3} {:>16.2} {:>16.3}",
            n,
            lg,
            ins_t,
            ins_t / (lg / b_cells),
            search_t,
            search_t / lg
        );
        writeln!(csv, "cola,{n},{ins_t:.6},{search_t:.4},{lg:.2},{b_cells}").unwrap();

        // Basic COLA: same inserts, O(log^2 N) searches.
        let sim = new_shared_sim(CacheConfig::new(BLOCK, MEM_BLOCKS));
        let mem: SimMem<Cell> = SimMem::with_elem_bytes(sim.clone(), 32);
        let mut basic = BasicCola::new(mem);
        for (i, &k) in keys.iter().enumerate() {
            basic.insert(k, i as u64);
        }
        let ins_b = sim.borrow().stats().transfers() as f64 / n as f64;
        sim.borrow_mut().drop_cache();
        sim.borrow_mut().reset_stats();
        for &p in &probes {
            basic.get(p);
        }
        let search_b = sim.borrow().stats().fetches as f64 / probes.len() as f64;
        println!(
            "{:>10} {:>12} {:>14.4} {:>14} {:>16.2} {:>16.3}  (basic; shape = tps/lg^2)",
            "",
            "",
            ins_b,
            "",
            search_b,
            search_b / (lg * lg)
        );
        writeln!(csv, "basic,{n},{ins_b:.6},{search_b:.4},{lg:.2},{b_cells}").unwrap();

        n *= 4;
    }
    println!("csv: {}", csv_path.display());
}
