//! **Figure 3** — sorted (descending) inserts (experiment E2).
//!
//! "Data is inserted in sorted order, which gives best-case performance
//! for the B-tree. The 4-COLA is 3.1 times slower than the B-tree for
//! N = 2^30 − 1." The B-tree wins here because it only touches its
//! leftmost root-to-leaf path, which stays in memory.

use std::time::Duration;

use cosbt_bench::measure::{insert_throughput, pow2_checkpoints, print_ratio, results_dir};
use cosbt_bench::{descending, scaled, DictKind, OutOfCore};

fn main() {
    let n = scaled(1 << 18, 1 << 22);
    let cache = scaled(1 << 20, 8 << 20) as usize;
    let cap = Duration::from_secs(scaled(60, 900));
    let keys = descending(n);
    let cps = pow2_checkpoints(1 << 12, n);
    let dir = std::env::temp_dir().join("cosbt-fig3");
    let csv = results_dir().join("fig3_sorted_inserts.csv");
    std::fs::remove_file(&csv).ok();

    println!("== Figure 3: sorted (descending) inserts, N = {n} ==");
    let mut finals: Vec<(String, f64)> = Vec::new();
    for kind in [
        DictKind::GCola(2),
        DictKind::GCola(4),
        DictKind::GCola(8),
        DictKind::BTree,
    ] {
        let mut ooc = OutOfCore::create(kind, &dir, cache);
        let probe = ooc.probe();
        let series = insert_throughput(&kind.label(), &mut ooc.dict, &keys, &cps, cap, &|| {
            probe.snapshot()
        });
        series.print();
        series.write_csv(&csv).expect("write results csv");
        finals.push((kind.label(), series.final_disk_rate()));
        println!();
    }
    let cola = finals.iter().find(|(n, _)| n == "4-COLA").unwrap().1;
    let btree = finals.iter().find(|(n, _)| n == "B-tree").unwrap().1;
    print_ratio(
        "sorted inserts (paper: 3.1x)",
        "4-COLA",
        cola,
        "B-tree",
        btree,
    );
    println!("csv: {}", csv.display());
}
