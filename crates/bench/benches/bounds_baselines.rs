//! **E7** — baseline bounds in the DAM simulator: the B-tree's
//! O(log_{B+1} N) searches/inserts and the BRT's O((log N)/B) inserts
//! with O(log N) searches — the two endpoints of the insert/search
//! tradeoff that Section 1 frames the paper around.

use cosbt_bench::measure::results_dir;
use cosbt_bench::{random_keys, scaled, search_probes};
use cosbt_brt::Brt;
use cosbt_btree::BTree;
use cosbt_core::Dictionary;
use cosbt_dam::{new_shared_sim, CacheConfig, SimPages};
use std::io::Write as _;

const PAGE: usize = 4096;
const MEM_BLOCKS: usize = 64;

fn main() {
    let max_n = scaled(1 << 17, 1 << 21);
    let csv_path = results_dir().join("bounds_baselines.csv");
    std::fs::create_dir_all(results_dir()).ok();
    let mut csv = std::fs::File::create(&csv_path).unwrap();
    writeln!(csv, "structure,n,insert_tpi,search_tps,log_n,log_b_n").unwrap();

    println!("== E7: B-tree vs BRT transfer bounds (4 KiB pages, M = {MEM_BLOCKS} pages) ==");
    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>14} {:>14}",
        "N", "struct", "ins tpi", "search tps", "tps/log_B N", "tps/log2 N"
    );
    let mut n = 1u64 << 13;
    while n <= max_n {
        let keys = random_keys(n, 0xE7);
        let probes = search_probes(&keys, 512, 0xE71);
        let lg = (n as f64).log2();
        // Fanout of a 4 KiB branch ≈ 339; height ≈ log_B N.
        let log_b = (n as f64).ln() / 339f64.ln();

        let sim = new_shared_sim(CacheConfig::new(PAGE, MEM_BLOCKS));
        let mut bt = BTree::new(SimPages::new(sim.clone(), PAGE));
        for (i, &k) in keys.iter().enumerate() {
            bt.insert(k, i as u64);
        }
        let ins_bt = sim.borrow().stats().transfers() as f64 / n as f64;
        sim.borrow_mut().drop_cache();
        sim.borrow_mut().reset_stats();
        for &p in &probes {
            bt.get(p);
        }
        let s_bt = sim.borrow().stats().fetches as f64 / probes.len() as f64;
        println!(
            "{:>10} {:>10} {:>14.4} {:>14.2} {:>14.3} {:>14.3}",
            n,
            "B-tree",
            ins_bt,
            s_bt,
            s_bt / log_b,
            s_bt / lg
        );
        writeln!(csv, "btree,{n},{ins_bt:.6},{s_bt:.4},{lg:.2},{log_b:.3}").unwrap();

        let sim = new_shared_sim(CacheConfig::new(PAGE, MEM_BLOCKS));
        let mut brt = Brt::new(SimPages::new(sim.clone(), PAGE));
        for (i, &k) in keys.iter().enumerate() {
            brt.insert(k, i as u64);
        }
        let ins_brt = sim.borrow().stats().transfers() as f64 / n as f64;
        sim.borrow_mut().drop_cache();
        sim.borrow_mut().reset_stats();
        for &p in &probes {
            brt.get(p);
        }
        let s_brt = sim.borrow().stats().fetches as f64 / probes.len() as f64;
        println!(
            "{:>10} {:>10} {:>14.4} {:>14.2} {:>14.3} {:>14.3}",
            n,
            "BRT",
            ins_brt,
            s_brt,
            s_brt / log_b,
            s_brt / lg
        );
        writeln!(csv, "brt,{n},{ins_brt:.6},{s_brt:.4},{lg:.2},{log_b:.3}").unwrap();

        n *= 4;
    }
    println!(
        "\nShape check: B-tree inserts cost ~1 transfer each out of core;\n\
         BRT inserts are ~B times cheaper; BRT searches pay ~log2 N vs the\n\
         B-tree's log_B N."
    );
    println!("csv: {}", csv_path.display());
}
