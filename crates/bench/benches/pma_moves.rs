//! **E11** — packed-memory array substrate: amortized element moves per
//! insertion are O(log² N) (the bound quoted in Section 2's "Making space
//! for insertions"), under random, sorted, and single-hotspot insertion
//! patterns.

use cosbt_bench::measure::results_dir;
use cosbt_bench::{random_keys, scaled};
use cosbt_pma::Pma;
use std::io::Write as _;

fn run(keys: &[u64]) -> (f64, f64) {
    let mut pma = Pma::new_plain();
    for &k in keys {
        pma.insert(k);
    }
    let per = pma.stats().moved as f64 / keys.len() as f64;
    let lg = (keys.len() as f64).log2();
    (per, per / (lg * lg))
}

fn main() {
    let max_n = scaled(1 << 16, 1 << 20);
    let csv_path = results_dir().join("pma_moves.csv");
    std::fs::create_dir_all(results_dir()).ok();
    let mut csv = std::fs::File::create(&csv_path).unwrap();
    writeln!(csv, "pattern,n,moves_per_insert,normalized_log2").unwrap();

    println!("== E11: PMA amortized moves per insert ==");
    println!(
        "{:>10} {:>12} {:>16} {:>18}",
        "N", "pattern", "moves/insert", "moves/(log N)^2"
    );
    let mut n = 1u64 << 12;
    while n <= max_n {
        let patterns: Vec<(&str, Vec<u64>)> = vec![
            ("random", random_keys(n, 0xE11)),
            ("ascending", (0..n).collect()),
            // Hotspot: every insert lands between two fixed keys — the
            // PMA's adversarial case.
            ("hotspot", (0..n).map(|i| 1_000_000 + (i % 2)).collect()),
        ];
        for (name, keys) in patterns {
            let (per, norm) = run(&keys);
            println!("{:>10} {:>12} {:>16.2} {:>18.4}", n, name, per, norm);
            writeln!(csv, "{name},{n},{per:.4},{norm:.5}").unwrap();
        }
        n *= 4;
    }
    println!("\nshape check: the normalized column stays bounded as N grows.");
    println!("csv: {}", csv_path.display());
}
