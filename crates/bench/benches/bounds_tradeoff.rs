//! **E8** — the insert/search tradeoff of the cache-aware lookahead
//! array (Section 3, "Cache-aware update/query tradeoff"; Brodal &
//! Fagerberg's Bᵉ-tree curve).
//!
//! Sweeping the growth factor g from 2 (COLA/BRT point) toward B (B-tree
//! point) must trade amortized insert transfers up against search
//! transfers down: inserts cost O((log_{g} N)·g/B) while searches cost
//! O(log_g N) blocks.

use cosbt_bench::measure::results_dir;
use cosbt_bench::{random_keys, scaled, search_probes};
use cosbt_core::entry::Cell;
use cosbt_core::{Dictionary, GCola};
use cosbt_dam::{new_shared_sim, CacheConfig, SimMem};
use std::io::Write as _;

const BLOCK: usize = 4096; // B = 128 cells
const MEM_BLOCKS: usize = 64;

fn main() {
    let n = scaled(1 << 16, 1 << 19);
    let keys = random_keys(n, 0xE8);
    let probes = search_probes(&keys, 512, 0xE81);
    let csv_path = results_dir().join("bounds_tradeoff.csv");
    std::fs::create_dir_all(results_dir()).ok();
    let mut csv = std::fs::File::create(&csv_path).unwrap();
    writeln!(csv, "g,insert_tpi,search_tps").unwrap();

    println!("== E8: growth-factor tradeoff, N = {n}, B = 128 cells ==");
    println!("{:>6} {:>16} {:>16}", "g", "insert tpi", "search tps");
    let mut rows: Vec<(usize, f64, f64)> = Vec::new();
    for g in [2usize, 4, 8, 16, 32, 64, 128] {
        let sim = new_shared_sim(CacheConfig::new(BLOCK, MEM_BLOCKS));
        let mem: SimMem<Cell> = SimMem::with_elem_bytes(sim.clone(), 32);
        // Lookahead density 1/g, as in the cache-aware construction.
        let mut la = GCola::new(mem, g, (1.0 / g as f64).min(0.5));
        for (i, &k) in keys.iter().enumerate() {
            la.insert(k, i as u64);
        }
        let ins = sim.borrow().stats().transfers() as f64 / n as f64;
        sim.borrow_mut().drop_cache();
        sim.borrow_mut().reset_stats();
        for &p in &probes {
            la.get(p);
        }
        let srch = sim.borrow().stats().fetches as f64 / probes.len() as f64;
        println!("{:>6} {:>16.4} {:>16.2}", g, ins, srch);
        writeln!(csv, "{g},{ins:.6},{srch:.4}").unwrap();
        rows.push((g, ins, srch));
    }
    // Monotonicity check of the tradeoff's two ends.
    let first = rows.first().unwrap();
    let last = rows.last().unwrap();
    println!(
        "\ntradeoff endpoints: g=2 (write-optimized) ins={:.4} srch={:.2}; \
         g=B (read-optimized) ins={:.4} srch={:.2}",
        first.1, first.2, last.1, last.2
    );
    println!("csv: {}", csv_path.display());
}
