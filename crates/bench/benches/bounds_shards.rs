//! **E13** — sharded parallel ingest vs a single merge machine.
//!
//! The ROADMAP's scaling claim, measured: range-partitioning the keyspace
//! across `S` independent 4-COLAs and applying sorted sub-batches on a
//! scoped thread pool should scale batch ingestion with cores while
//! leaving the read path (point gets, spliced cursors) intact. The table
//! reports wall-clock ingest throughput for 1/2/4(/8 at full scale)
//! shards with parallel ingest on and off, plus a read-back column so a
//! routing bug cannot masquerade as a speedup.

use std::time::Instant;

use cosbt::{DbBuilder, Structure};
use cosbt_bench::measure::results_dir;
use cosbt_bench::{random_keys, scaled};
use std::io::Write as _;

const BATCH: usize = 16 * 1024;

struct Row {
    shards: usize,
    parallel: bool,
    ingest_mops: f64,
    get_mops: f64,
    scan_len: usize,
}

/// Ingests `keys` in sorted batches of [`BATCH`], then reads back a probe
/// set and drains one full cursor.
fn measure(keys: &[u64], shards: usize, parallel: bool) -> Row {
    let mut db = DbBuilder::new()
        .structure(Structure::GCola { g: 4 })
        .shards(shards)
        .parallel_ingest(parallel)
        .build()
        .unwrap();

    let t = Instant::now();
    for (c, chunk) in keys.chunks(BATCH).enumerate() {
        let mut run: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, c as u64)).collect();
        run.sort_unstable_by_key(|&(k, _)| k);
        db.insert_batch(&run);
    }
    let ingest = t.elapsed().as_secs_f64();

    let probes: Vec<u64> = keys.iter().step_by(64).copied().collect();
    let t = Instant::now();
    let mut hits = 0usize;
    for &k in &probes {
        if db.get(k).is_some() {
            hits += 1;
        }
    }
    let get = t.elapsed().as_secs_f64();
    assert_eq!(hits, probes.len(), "every ingested key must be found");

    // Full spliced scan: validates the cross-shard merge and yields the
    // live count (duplicate keys collapse, so it's ≤ keys.len()).
    let scan_len = db.range(0, u64::MAX).len();

    Row {
        shards,
        parallel,
        ingest_mops: keys.len() as f64 / ingest / 1e6,
        get_mops: probes.len() as f64 / get / 1e6,
        scan_len,
    }
}

fn main() {
    let n = scaled(1 << 19, 1 << 22);
    let keys = random_keys(n, 0x5A4D);
    let shard_counts: &[usize] = if cosbt_bench::full_scale() {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4]
    };

    let csv_path = results_dir().join("bounds_shards.csv");
    std::fs::create_dir_all(results_dir()).ok();
    let mut csv = std::fs::File::create(&csv_path).unwrap();
    writeln!(csv, "shards,parallel,ingest_mops,get_mops,scan_len").unwrap();

    println!(
        "== E13: sharded ingest scaling (N = {n}, batch = {BATCH}, 4-COLA per shard, \
         {} cores) ==",
        std::thread::available_parallelism().map_or(0, |p| p.get())
    );
    println!(
        "{:>7} {:>9} {:>16} {:>13} {:>10}",
        "shards", "parallel", "ingest Mops/s", "get Mops/s", "scan len"
    );
    let mut rows = Vec::new();
    for &s in shard_counts {
        for parallel in [false, true] {
            if s == 1 && parallel {
                continue; // one shard has nothing to parallelize
            }
            let r = measure(&keys, s, parallel);
            println!(
                "{:>7} {:>9} {:>16.2} {:>13.2} {:>10}",
                r.shards, r.parallel, r.ingest_mops, r.get_mops, r.scan_len
            );
            writeln!(
                csv,
                "{},{},{:.4},{:.4},{}",
                r.shards, r.parallel, r.ingest_mops, r.get_mops, r.scan_len
            )
            .unwrap();
            rows.push(r);
        }
    }

    // Every configuration must agree on the live-entry count: the shard
    // router is a routing layer, not a different dictionary.
    let scan0 = rows[0].scan_len;
    assert!(
        rows.iter().all(|r| r.scan_len == scan0),
        "sharded scans disagree on the live count"
    );

    let single = rows
        .iter()
        .find(|r| r.shards == 1)
        .expect("single-shard baseline ran");
    if let Some(best) = rows
        .iter()
        .filter(|r| r.parallel)
        .max_by(|a, b| a.ingest_mops.total_cmp(&b.ingest_mops))
    {
        println!(
            "\nbest parallel config ({} shards): {:.2}x single-shard ingest \
             ({:.2} vs {:.2} Mops/s)",
            best.shards,
            best.ingest_mops / single.ingest_mops.max(1e-12),
            best.ingest_mops,
            single.ingest_mops
        );
    }
    println!("csv: {}", csv_path.display());
}
