//! **Figure 4** — random searches (experiment E3).
//!
//! "When N = 2^30 − 1, the 4-COLA performs 2^15 searches 3.5 times slower
//! than the B-tree. Initial searches are slow due to the cache being
//! empty. The source data was created from the test in Figure 3."
//!
//! Following the paper: build each structure with descending inserts
//! (Figure 3's workload), clear the cache ("remounted the RAID array"),
//! then time 2^15 random searches, checkpointing after search 2^x.

use cosbt_bench::measure::{print_ratio, results_dir, search_throughput};
use cosbt_bench::{descending, scaled, search_probes, DictKind, OutOfCore};

fn main() {
    let n = scaled(1 << 18, 1 << 22);
    let cache = scaled(1 << 20, 8 << 20) as usize;
    let probes_n = scaled(1 << 13, 1 << 15);
    let keys = descending(n);
    let probes = search_probes(&keys, probes_n, 0xF164);
    let dir = std::env::temp_dir().join("cosbt-fig4");
    let csv = results_dir().join("fig4_searches.csv");
    std::fs::remove_file(&csv).ok();

    println!("== Figure 4: {probes_n} random searches after sorted build, N = {n} ==");
    let mut finals: Vec<(String, f64)> = Vec::new();
    // The vEB rows measure the PR's read-path accelerator on the same
    // workload: the B-tree routes through its DRAM leaf directory (one
    // leaf fetch per cold search), the 4-COLA through vEB ghost mirrors.
    for (kind, veb) in [
        (DictKind::GCola(2), false),
        (DictKind::GCola(4), false),
        (DictKind::GCola(4), true),
        (DictKind::GCola(8), false),
        (DictKind::BTree, false),
        (DictKind::BTree, true),
    ] {
        let label = if veb {
            format!("{} +vEB", kind.label())
        } else {
            kind.label()
        };
        let mut ooc = OutOfCore::create_veb(kind, &dir, cache, veb);
        for (i, &k) in keys.iter().enumerate() {
            ooc.dict.insert(k, i as u64);
        }
        ooc.drop_cache();
        ooc.reset_stats();
        let probe = ooc.probe();
        let series = search_throughput(&label, &mut ooc.dict, &probes, &|| probe.snapshot());
        series.print();
        series.write_csv(&csv).expect("write results csv");
        finals.push((label, series.final_disk_rate()));
        println!();
    }
    let cola = finals.iter().find(|(n, _)| n == "4-COLA").unwrap().1;
    let btree = finals.iter().find(|(n, _)| n == "B-tree").unwrap().1;
    let btree_veb = finals.iter().find(|(n, _)| n == "B-tree +vEB").unwrap().1;
    print_ratio("searches (paper: 3.5x)", "4-COLA", cola, "B-tree", btree);
    print_ratio("vEB read path", "B-tree +vEB", btree_veb, "B-tree", btree);
    println!("csv: {}", csv.display());
}
