//! **E12** — batched updates vs per-key inserts.
//!
//! The API-level payoff of the streaming structures: `insert_batch`
//! absorbs a sorted run in one carry cascade (g-COLA) or one buffer-chunk
//! walk (BRT), where per-key `insert` pays one cascade per key. The
//! B-tree baseline has no merge path (its batch is the per-key loop), so
//! it anchors the comparison.
//!
//! For each structure and batch size the table prints wall-clock
//! throughput over plain memory and DAM-simulator transfers per key, for
//! sorted and random batches.

use std::time::Instant;

use cosbt_bench::measure::results_dir;
use cosbt_bench::{random_keys, scaled};
use cosbt_core::entry::Cell;
use cosbt_core::{Dictionary, GCola};
use cosbt_dam::{new_shared_sim, CacheConfig, SimMem, SimPages};
use std::io::Write as _;

const BLOCK: usize = 4096;
const MEM_BLOCKS: usize = 64;

/// Splits `keys` into batches of `batch` and feeds them through
/// `insert_batch` (sorting each batch first when `sort` is set) or, for
/// `batch == 1`, through per-key `insert`.
fn drive(dict: &mut dyn Dictionary, keys: &[u64], batch: usize, sort: bool) {
    if batch <= 1 {
        for (i, &k) in keys.iter().enumerate() {
            dict.insert(k, i as u64);
        }
        return;
    }
    for (c, chunk) in keys.chunks(batch).enumerate() {
        let mut run: Vec<(u64, u64)> = chunk.iter().map(|&k| (k, c as u64)).collect();
        if sort {
            run.sort_unstable_by_key(|&(k, _)| k);
        }
        dict.insert_batch(&run);
    }
}

struct Row {
    structure: &'static str,
    order: &'static str,
    batch: usize,
    wall_mops: f64,
    transfers_per_key: f64,
}

fn measure_gcola(keys: &[u64], batch: usize, sort: bool, order: &'static str) -> Row {
    // Wall clock over plain memory.
    let mut plain = GCola::new_plain(4);
    let t = Instant::now();
    drive(&mut plain, keys, batch, sort);
    let wall = t.elapsed().as_secs_f64();

    // Transfers in the DAM simulator.
    let sim = new_shared_sim(CacheConfig::new(BLOCK, MEM_BLOCKS));
    let mem: SimMem<Cell> = SimMem::with_elem_bytes(sim.clone(), 32);
    let mut cola = GCola::new(mem, 4, 0.1);
    drive(&mut cola, keys, batch, sort);
    let transfers = sim.borrow().stats().transfers();
    Row {
        structure: "4-COLA",
        order,
        batch,
        wall_mops: keys.len() as f64 / wall / 1e6,
        transfers_per_key: transfers as f64 / keys.len() as f64,
    }
}

fn measure_btree(keys: &[u64], batch: usize, sort: bool, order: &'static str) -> Row {
    let mut plain = cosbt_btree::BTree::new_plain();
    let t = Instant::now();
    drive(&mut plain, keys, batch, sort);
    let wall = t.elapsed().as_secs_f64();

    let sim = new_shared_sim(CacheConfig::new(BLOCK, MEM_BLOCKS));
    let mut bt = cosbt_btree::BTree::new(SimPages::new(sim.clone(), BLOCK));
    drive(&mut bt, keys, batch, sort);
    let transfers = sim.borrow().stats().transfers();
    Row {
        structure: "B-tree",
        order,
        batch,
        wall_mops: keys.len() as f64 / wall / 1e6,
        transfers_per_key: transfers as f64 / keys.len() as f64,
    }
}

fn main() {
    let n = scaled(1 << 16, 1 << 20);
    let keys = random_keys(n, 0xBA7C);
    let sorted: Vec<u64> = {
        let mut s = keys.clone();
        s.sort_unstable();
        s
    };

    let csv_path = results_dir().join("bounds_batch.csv");
    std::fs::create_dir_all(results_dir()).ok();
    let mut csv = std::fs::File::create(&csv_path).unwrap();
    writeln!(csv, "structure,order,batch,wall_mops,transfers_per_key").unwrap();

    println!("== E12: insert_batch vs per-key insert (N = {n}, B = 128 cells / 4 KiB pages) ==");
    println!(
        "{:>10} {:>8} {:>8} {:>14} {:>18}",
        "structure", "order", "batch", "wall Mops/s", "transfers/key"
    );
    let mut rows = Vec::new();
    for &batch in &[1usize, 64, 1024, 16 * 1024] {
        // Random key stream, batches sorted locally before ingestion.
        rows.push(measure_gcola(&keys, batch, true, "random"));
        rows.push(measure_btree(&keys, batch, true, "random"));
        // Globally sorted stream (bulk-load shape).
        rows.push(measure_gcola(&sorted, batch, false, "sorted"));
        rows.push(measure_btree(&sorted, batch, false, "sorted"));
    }
    for r in &rows {
        println!(
            "{:>10} {:>8} {:>8} {:>14.2} {:>18.4}",
            r.structure, r.order, r.batch, r.wall_mops, r.transfers_per_key
        );
        writeln!(
            csv,
            "{},{},{},{:.4},{:.6}",
            r.structure, r.order, r.batch, r.wall_mops, r.transfers_per_key
        )
        .unwrap();
    }

    // Headline: the batched COLA vs its own per-key path.
    let per_key = rows
        .iter()
        .find(|r| r.structure == "4-COLA" && r.order == "random" && r.batch == 1)
        .unwrap();
    let batched = rows
        .iter()
        .find(|r| r.structure == "4-COLA" && r.order == "random" && r.batch == 16 * 1024)
        .unwrap();
    println!(
        "\n4-COLA random inserts: 16k-batches move {:.1}x fewer blocks than per-key \
         ({:.4} vs {:.4} transfers/key)",
        per_key.transfers_per_key / batched.transfers_per_key.max(1e-12),
        batched.transfers_per_key,
        per_key.transfers_per_key
    );
    println!("csv: {}", csv_path.display());
}
