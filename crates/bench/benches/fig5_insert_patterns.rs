//! **Figure 5** — ascending vs descending vs random inserts into a
//! 4-COLA (experiment E4).
//!
//! "Inserting 2^30 − 1 keys sorted in descending order is 1.1 times
//! faster than inserting in ascending order, and 1.1 times faster than
//! inserting in random order." The paper attributes this to the final
//! merge: with descending keys the elements already in the target level
//! do not move.

use std::time::Duration;

use cosbt_bench::measure::{insert_throughput, pow2_checkpoints, print_ratio, results_dir};
use cosbt_bench::{ascending, descending, random_keys, scaled, DictKind, OutOfCore};

fn main() {
    let n = scaled(1 << 18, 1 << 22);
    let cache = scaled(1 << 20, 8 << 20) as usize;
    let cap = Duration::from_secs(scaled(60, 900));
    let cps = pow2_checkpoints(1 << 12, n);
    let dir = std::env::temp_dir().join("cosbt-fig5");
    let csv = results_dir().join("fig5_insert_patterns.csv");
    std::fs::remove_file(&csv).ok();

    println!("== Figure 5: 4-COLA insert patterns, N = {n} ==");
    let workloads: Vec<(&str, Vec<u64>)> = vec![
        ("4-COLA (Ascending)", ascending(n)),
        ("4-COLA (Descending)", descending(n)),
        ("4-COLA (Random)", random_keys(n, 0xF165)),
    ];
    let mut finals: Vec<(String, f64)> = Vec::new();
    for (name, keys) in workloads {
        let mut ooc = OutOfCore::create(DictKind::GCola(4), &dir, cache);
        let probe = ooc.probe();
        let series = insert_throughput(name, &mut ooc.dict, &keys, &cps, cap, &|| probe.snapshot());
        series.print();
        series.write_csv(&csv).expect("write results csv");
        finals.push((name.to_string(), series.final_disk_rate()));
        println!();
    }
    let asc = finals[0].1;
    let desc = finals[1].1;
    let rnd = finals[2].1;
    print_ratio(
        "descending vs ascending (paper: 1.1x)",
        "descending",
        desc,
        "ascending",
        asc,
    );
    print_ratio(
        "descending vs random (paper: 1.1x)",
        "descending",
        desc,
        "random",
        rnd,
    );
    print_ratio(
        "ascending vs random (paper: 1.02x)",
        "ascending",
        asc,
        "random",
        rnd,
    );
    println!("csv: {}", csv.display());
}
