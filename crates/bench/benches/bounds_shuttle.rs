//! **E10** — shuttle tree (Section 2): search transfers under the
//! vEB/Fibonacci layout stay O(log_{B+1} N) (Lemma 4) and beat a random
//! (pointer-machine) placement of the same tree; the buffer hierarchy
//! keeps amortized insert work per element far below a root-to-leaf
//! rewrite (Theorem 17's regime).

use cosbt_bench::measure::results_dir;
use cosbt_bench::{random_keys, scaled, search_probes};
use cosbt_dam::CacheConfig;
use cosbt_shuttle::layout::measure_searches;
use cosbt_shuttle::{LayoutImage, ShuttleTree};
use std::io::Write as _;

const BLOCK: usize = 4096;
const MEM_BLOCKS: usize = 16;

fn main() {
    let max_n = scaled(1 << 16, 1 << 19);
    let csv_path = results_dir().join("bounds_shuttle.csv");
    std::fs::create_dir_all(results_dir()).ok();
    let mut csv = std::fs::File::create(&csv_path).unwrap();
    writeln!(
        csv,
        "n,veb_tps,random_tps,height,shuttled_per_insert,splits"
    )
    .unwrap();

    println!("== E10: shuttle tree layout & insert shape (B = {BLOCK} B) ==");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "N", "height", "vEB tps", "random tps", "shuttled/ins", "splits"
    );
    let mut n = 1u64 << 13;
    while n <= max_n {
        let keys = random_keys(n, 0xE10);
        let mut t = ShuttleTree::new(4);
        for (i, &k) in keys.iter().enumerate() {
            t.insert(k, i as u64);
        }
        let shuttled = t.stats().msgs_shuttled as f64 / n as f64;
        let splits = t.stats().splits;
        let probes = search_probes(&keys, 400, 0xE101);
        let cfg = CacheConfig::new(BLOCK, MEM_BLOCKS);

        LayoutImage::assign(&mut t);
        let veb = measure_searches(&t, &probes, cfg);
        let veb_tps = veb.fetches as f64 / probes.len() as f64;

        LayoutImage::assign_random(&mut t, 0xBADC0DE);
        let rnd = measure_searches(&t, &probes, cfg);
        let rnd_tps = rnd.fetches as f64 / probes.len() as f64;

        println!(
            "{:>10} {:>10} {:>12.2} {:>12.2} {:>14.2} {:>10}",
            n,
            t.height(),
            veb_tps,
            rnd_tps,
            shuttled,
            splits
        );
        writeln!(
            csv,
            "{n},{veb_tps:.4},{rnd_tps:.4},{},{shuttled:.3},{splits}",
            t.height()
        )
        .unwrap();
        n *= 4;
    }
    println!(
        "\nshape check: vEB transfers grow ~log_B N and stay below the\n\
         random layout's (which pays ~1 block per tree node on the path)."
    );
    println!("csv: {}", csv_path.display());
}
