//! **Figure 2** — COLA vs B-tree, random inserts (experiment E1).
//!
//! Paper setup: keys inserted in uniformly random order into 2-, 4-, and
//! 8-COLAs and a traditional B-tree, all out of core; average inserts per
//! second plotted against N. Headline: "The 2-COLA is 790 times faster
//! than the B-tree for N = (256 × 2^20) − 1"; the paper's B-tree run was
//! stopped after 87 hours. Here N and the memory budget are scaled down
//! together (the data stays ≫ the cache budget, keeping the out-of-core
//! regime) and the B-tree run is time-capped just as the paper's was.
//!
//! Run with `COSBT_SCALE=full` for the larger configuration.

use std::time::Duration;

use cosbt_bench::measure::{insert_throughput, pow2_checkpoints, print_ratio, results_dir};
use cosbt_bench::{random_keys, scaled, DictKind, OutOfCore};

fn main() {
    let n = scaled(1 << 18, 1 << 22);
    let cache = scaled(1 << 20, 8 << 20) as usize;
    let cap = Duration::from_secs(scaled(30, 600));
    let keys = random_keys(n, 0xF162);
    let cps = pow2_checkpoints(1 << 12, n);
    let dir = std::env::temp_dir().join("cosbt-fig2");
    let csv = results_dir().join("fig2_random_inserts.csv");
    std::fs::remove_file(&csv).ok();

    println!("== Figure 2: random inserts, N = {n}, memory budget = {cache} B ==");
    let mut finals: Vec<(String, f64)> = Vec::new();
    for kind in [
        DictKind::GCola(2),
        DictKind::GCola(4),
        DictKind::GCola(8),
        DictKind::BTree,
    ] {
        let mut ooc = OutOfCore::create(kind, &dir, cache);
        let probe = ooc.probe();
        let series = insert_throughput(&kind.label(), &mut ooc.dict, &keys, &cps, cap, &|| {
            probe.snapshot()
        });
        series.print();
        series.write_csv(&csv).expect("write results csv");
        finals.push((kind.label(), series.final_disk_rate()));
        println!();
    }
    let cola = finals.iter().find(|(n, _)| n == "2-COLA").unwrap().1;
    let btree = finals.iter().find(|(n, _)| n == "B-tree").unwrap().1;
    print_ratio(
        "random inserts (paper: 790x)",
        "2-COLA",
        cola,
        "B-tree",
        btree,
    );
    println!("csv: {}", csv.display());
}
