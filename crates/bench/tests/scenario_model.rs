//! Correctness net under the benchmark harness: a scenario run is only a
//! valid measurement if it computed the right answer, so every scenario
//! over every cell of the configuration matrix must leave the dictionary
//! **exactly** equal to a `BTreeMap` model replay of the same seeded op
//! stream. A structure that dropped or duplicated a write under a mixed
//! workload would otherwise report excellent throughput.

use std::collections::BTreeMap;

use cosbt::{Backend, DbBuilder, Structure};
use cosbt_bench::scenario::{self, mix_of, prefill_seed, RunMeta, Scenario, SCENARIOS};
use cosbt_bench::workloads::{prefill_run, Op, OpStream};

/// Replays the exact streams the runner executes into a model.
fn model_replay(scenario: &Scenario, n: u64, prefill: u64, seed: u64) -> BTreeMap<u64, u64> {
    let dist = scenario.dist_for(n);
    let mut model = BTreeMap::new();
    for (k, v) in prefill_run(dist, prefill, prefill_seed(seed)) {
        model.insert(k, v);
    }
    for op in OpStream::new(mix_of(scenario.kind), dist, seed).take(n as usize) {
        match op {
            Op::Insert(k, v) => {
                model.insert(k, v);
            }
            Op::Delete(k) => {
                model.remove(&k);
            }
            Op::Trim(cutoff) => {
                // Mirrors `scenario::trim_below`: everything strictly
                // below the cutoff expires.
                model = model.split_off(&cutoff);
            }
            Op::Get(_) | Op::Scan(..) => {}
        }
    }
    model
}

fn check_cell(scenario: &Scenario, builder: DbBuilder, n: u64, seed: u64) {
    let label = builder.label();
    let dist = scenario.dist_for(n);
    let prefill = (n as f64 * scenario.prefill_frac) as u64;
    let meta = RunMeta {
        structure: "?".into(),
        label: label.clone(),
        backend: "?".into(),
        shards: 1,
        cache_bytes: 0,
        parallel_ingest: false,
        cascade: true,
        veb_layout: false,
        pointer_density: 0.1,
        dist: dist.name().into(),
        ops: n,
        prefill,
        seed,
    };
    let mut db = builder.build().expect("matrix cell builds");
    let report = scenario::run(scenario, dist, meta, &mut db);
    assert!(
        report.latency.overall.count() > 0,
        "{}/{label}: ops were measured",
        scenario.name
    );

    let want: Vec<(u64, u64)> = model_replay(scenario, n, prefill, seed)
        .into_iter()
        .collect();
    let got = db.range(0, u64::MAX);
    assert_eq!(
        got, want,
        "{}/{label}: dictionary diverged from the model replay (seed {seed})",
        scenario.name
    );
}

#[test]
fn every_scenario_matches_model_on_every_mem_matrix_cell() {
    // Unsharded and sharded cells of the shared matrix; small n keeps the
    // full 5-scenario × 18-cell product testable in debug builds.
    let n = 1500u64;
    for scenario in SCENARIOS {
        for builder in DbBuilder::matrix(&[1, 3]) {
            check_cell(scenario, builder, n, 0xBEEF);
        }
    }
}

#[test]
fn scenarios_match_model_on_file_backed_cells() {
    let n = 2000u64;
    let dir = std::env::temp_dir().join(format!("cosbt-scenmodel-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (i, structure) in [Structure::GCola { g: 4 }, Structure::BTree, Structure::Brt]
        .into_iter()
        .enumerate()
    {
        let path = dir.join(format!("cell{i}.dat"));
        let builder = DbBuilder::new()
            .structure(structure)
            .backend(Backend::file(path))
            .cache_bytes(64 * 1024);
        check_cell(Scenario::by_name("balanced").unwrap(), builder, n, 0xF00D);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_sharded_run_matches_model() {
    // Parallel ingest must not reorder a key's operations observably.
    let builder = DbBuilder::new()
        .structure(Structure::GCola { g: 4 })
        .shards(4)
        .parallel_ingest(true);
    for seed in [1u64, 2, 3] {
        check_cell(
            Scenario::by_name("write_heavy").unwrap(),
            builder.clone(),
            3000,
            seed,
        );
    }
}

#[test]
fn drain_scenario_streams_exactly_the_live_set() {
    // insert_then_drain's scanned_entries must equal the model's live
    // count: the drain is a full-keyspace cursor pass.
    let scenario = Scenario::by_name("insert_then_drain").unwrap();
    let n = 4000u64;
    let dist = scenario.dist_for(n);
    let meta = RunMeta {
        structure: "gcola".into(),
        label: "4-COLA".into(),
        backend: "mem".into(),
        shards: 1,
        cache_bytes: 0,
        parallel_ingest: false,
        cascade: true,
        veb_layout: false,
        pointer_density: 0.1,
        dist: dist.name().into(),
        ops: n,
        prefill: 0,
        seed: 99,
    };
    let mut db = DbBuilder::new().build().unwrap();
    let report = scenario::run(scenario, dist, meta, &mut db);
    let model = model_replay(scenario, n, 0, 99);
    assert_eq!(report.scanned_entries, model.len() as u64);
}
