//! Stress and property tests of the baseline B+-tree: deep trees,
//! boundary splits, bulk-load vs incremental equivalence under
//! randomized inputs, and leaf-chain integrity after heavy deletion.

use cosbt_btree::BTree;
use cosbt_testkit::{check_cases, Rng};

#[test]
fn three_level_tree_and_full_scan() {
    // Force ≥ 3 levels: > 255 * 339 entries would be level 4; 150k gives
    // a solid 3-level tree.
    let mut t = BTree::new_plain();
    let n = 150_000u64;
    for i in 0..n {
        t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
    }
    assert!(t.height() >= 3, "height {}", t.height());
    t.check_invariants();
    let all = t.range(0, u64::MAX);
    assert_eq!(all.len() as u64, n);
    for w in all.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
}

#[test]
fn delete_everything_then_rebuild() {
    let mut t = BTree::new_plain();
    for k in 0..30_000u64 {
        t.insert(k, k);
    }
    for k in 0..30_000u64 {
        assert!(t.delete(k), "delete {k}");
    }
    assert_eq!(t.len(), 0);
    assert_eq!(t.range(0, u64::MAX), vec![]);
    t.check_invariants();
    for k in 0..5_000u64 {
        t.insert(k, k + 1);
    }
    assert_eq!(t.len(), 5_000);
    assert_eq!(t.get(4_999), Some(5_000));
    t.check_invariants();
}

#[test]
fn boundary_separator_keys() {
    // Keys around branch separators: equal-to-separator routes right.
    let mut t = BTree::new_plain();
    for k in 0..100_000u64 {
        t.insert(k, k);
    }
    t.check_invariants();
    // Every key findable including the ones that became separators.
    for k in (0..100_000u64).step_by(127) {
        assert_eq!(t.get(k), Some(k));
    }
}

#[test]
fn bulk_load_equals_incremental_random() {
    check_cases(
        "bulk_load_equals_incremental_random",
        24,
        |rng: &mut Rng| {
            let n = 1 + rng.index(2999);
            let keys: std::collections::BTreeSet<u64> = (0..n).map(|_| rng.next_u64()).collect();
            let pairs: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k ^ 0xFF)).collect();
            let mut bulk = BTree::new_plain();
            bulk.bulk_load(&pairs);
            let mut inc = BTree::new_plain();
            // Insert in a scrambled order.
            let mut scrambled = pairs.clone();
            scrambled.sort_by_key(|&(k, _)| k.wrapping_mul(0x9E3779B97F4A7C15));
            for &(k, v) in &scrambled {
                inc.insert(k, v);
            }
            bulk.check_invariants();
            inc.check_invariants();
            assert_eq!(bulk.range(0, u64::MAX), inc.range(0, u64::MAX));
            if let Some(&first) = keys.iter().next() {
                assert_eq!(bulk.get(first), inc.get(first));
            }
        },
    );
}

#[test]
fn random_ops_match_model() {
    check_cases("random_ops_match_model", 24, |rng: &mut Rng| {
        let len = 1 + rng.index(799);
        let mut t = BTree::new_plain();
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..len {
            let (ins, k, v) = (rng.flag(), rng.below(512), rng.next_u64());
            if ins {
                t.insert(k, v);
                model.insert(k, v);
            } else {
                let got = t.delete(k);
                assert_eq!(got, model.remove(&k).is_some());
            }
        }
        assert_eq!(t.len(), model.len());
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(t.range(0, u64::MAX), want);
        t.check_invariants();
    });
}
