//! The B+-tree proper.

use cosbt_core::{Cursor, CursorOps, VebIndex};
use cosbt_dam::{PageStore, VecPages, DEFAULT_PAGE_SIZE};

use crate::node::*;

/// DRAM directory of the leaf level, active while the vEB toggle is on.
///
/// `seps` is every branch separator in key order — exactly the keys a
/// root-to-leaf descent would compare against, flattened — and `pages`
/// the leaf pages in key order (`seps.len() + 1` of them). The vEB-packed
/// mirror of `seps` routes a point lookup to its leaf without touching
/// any branch page, so a cold search costs one leaf fetch instead of
/// `height` fetches. Pure DRAM state: never persisted, rebuilt from the
/// branch level on open or toggle-on, and patched in place at leaf
/// splits (branch splits only re-shard the same separator multiset, so
/// the flattened sequence is unaffected).
#[derive(Debug)]
struct LeafDir {
    /// All branch separators in key order; keys ≥ `seps[i]` route past
    /// leaf `i`.
    seps: Vec<u64>,
    /// Leaf pages in key order.
    pages: Vec<u32>,
    /// vEB-packed mirror of `seps`; stale while `dirty` is set.
    veb: VebIndex,
    /// Set by leaf splits; the next lookup rebuilds `veb` first.
    dirty: bool,
}

/// A B+-tree over any page store. Keys and values are `u64`, matching the
/// paper's experimental setup.
///
/// Deletion is *lazy* (entries are removed from leaves, but underfull
/// leaves are not rebalanced), the common practical choice — e.g. the
/// paper's own comparison target workload never shrinks. All other
/// operations keep nodes within classic B-tree bounds.
#[derive(Debug)]
pub struct BTree<P: PageStore> {
    store: P,
    root: u32,
    height: u32, // 1 = root is a leaf
    len: usize,
    inserted_flag: bool,
    /// vEB leaf directory; `Some` iff the layout toggle is on.
    dir: Option<LeafDir>,
}

impl BTree<VecPages> {
    /// A B+-tree over plain heap pages of 4 KiB.
    pub fn new_plain() -> Self {
        Self::new(VecPages::new(DEFAULT_PAGE_SIZE))
    }
}

impl<P: PageStore> BTree<P> {
    /// Creates an empty tree over `store` (must be empty).
    pub fn new(mut store: P) -> Self {
        assert_eq!(store.num_pages(), 0, "store must be empty");
        let root = store.alloc_page();
        store.with_page_mut(root, |pg| {
            set_node_type(pg, LEAF);
            set_count(pg, 0);
            set_next_leaf(pg, NO_PAGE);
        });
        BTree {
            store,
            root,
            height: 1,
            len: 0,
            inserted_flag: false,
            dir: None,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u32 {
        self.store.num_pages()
    }

    /// Borrow the backing store (for I/O statistics).
    pub fn store(&self) -> &P {
        &self.store
    }

    /// Mutably borrow the backing store (to drop caches etc.).
    pub fn store_mut(&mut self) -> &mut P {
        &mut self.store
    }

    fn leaf_for(&mut self, key: u64) -> u32 {
        let mut page = self.root;
        for _ in 1..self.height {
            page = self
                .store
                .with_page(page, |pg| branch_child(pg, branch_descend(pg, key)));
        }
        page
    }

    /// Enables or disables the vEB leaf directory (off by default).
    ///
    /// Runtime-only, like the cascade toggle: nothing on disk changes, so
    /// the flag can flip freely, including across reopens. Enabling costs
    /// one full traversal of the branch level to flatten the separators;
    /// thereafter the directory is patched in place at leaf splits.
    pub fn set_veb_layout(&mut self, enabled: bool) {
        if enabled == self.dir.is_some() {
            return;
        }
        self.dir = enabled.then(|| self.build_dir());
    }

    /// Whether the vEB leaf directory is active.
    pub fn veb_layout_enabled(&self) -> bool {
        self.dir.is_some()
    }

    fn build_dir(&mut self) -> LeafDir {
        let mut seps = Vec::new();
        let mut pages = Vec::new();
        self.collect_dir(self.root, self.height, &mut seps, &mut pages);
        LeafDir {
            veb: VebIndex::build(&seps),
            seps,
            pages,
            dirty: false,
        }
    }

    /// In-order walk of the branch level: child, separator, child, … —
    /// yielding the separators flattened in key order and the leaves in
    /// key order.
    fn collect_dir(&mut self, page: u32, height: u32, seps: &mut Vec<u64>, pages: &mut Vec<u32>) {
        if height == 1 {
            pages.push(page);
            return;
        }
        let (keys, kids): (Vec<u64>, Vec<u32>) = self.store.with_page(page, |pg| {
            let n = count(pg);
            (
                (0..n).map(|i| branch_key(pg, i)).collect(),
                (0..=n).map(|i| branch_child(pg, i)).collect(),
            )
        });
        for (i, &child) in kids.iter().enumerate() {
            if i > 0 {
                seps.push(keys[i - 1]);
            }
            self.collect_dir(child, height - 1, seps, pages);
        }
    }

    /// Routes `key` to its leaf through the vEB directory: a branchless
    /// DRAM descent replaces the `height - 1` branch-page fetches.
    fn dir_leaf_for(&mut self, key: u64) -> u32 {
        let dir = self.dir.as_mut().expect("vEB directory enabled");
        if dir.dirty {
            dir.veb = VebIndex::build(&dir.seps);
            dir.dirty = false;
        }
        // upper_bound ≡ branch_descend: key == separator goes right.
        dir.pages[dir.veb.upper_bound(key)]
    }

    /// Point lookup.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        if self.dir.is_some() {
            let leaf = self.dir_leaf_for(key);
            return self.store.with_page(leaf, |pg| {
                let i = leaf_lower_bound_branchless(pg, key);
                if i < count(pg) && leaf_key(pg, i) == key {
                    Some(leaf_val(pg, i))
                } else {
                    None
                }
            });
        }
        let leaf = self.leaf_for(key);
        self.store.with_page(leaf, |pg| {
            let i = leaf_lower_bound(pg, key);
            if i < count(pg) && leaf_key(pg, i) == key {
                Some(leaf_val(pg, i))
            } else {
                None
            }
        })
    }

    /// Inserts or overwrites `key`.
    pub fn insert(&mut self, key: u64, val: u64) {
        self.inserted_flag = false;
        if let Some((sep, right)) = self.insert_rec(self.root, self.height, key, val) {
            let new_root = self.store.alloc_page();
            let old_root = self.root;
            self.store.with_page_mut(new_root, |pg| {
                set_node_type(pg, BRANCH);
                set_count(pg, 1);
                set_branch_key(pg, 0, sep);
                set_branch_child(pg, 0, old_root);
                set_branch_child(pg, 1, right);
            });
            self.root = new_root;
            self.height += 1;
        }
        if self.inserted_flag {
            self.len += 1;
        }
    }

    fn insert_rec(&mut self, page: u32, height: u32, key: u64, val: u64) -> Option<(u64, u32)> {
        if height == 1 {
            return self.insert_leaf(page, key, val);
        }
        let ps = self.store.page_size();
        let (idx, child) = self.store.with_page(page, |pg| {
            let i = branch_descend(pg, key);
            (i, branch_child(pg, i))
        });
        let (sep, right) = self.insert_rec(child, height - 1, key, val)?;
        let fits = self.store.with_page_mut(page, |pg| {
            if count(pg) < branch_cap(ps) {
                branch_insert_at(pg, idx, sep, right);
                true
            } else {
                false
            }
        });
        if fits {
            return None;
        }
        // Split the branch: gather, splice in the new separator, split.
        let (mut keys, mut kids) = self.store.with_page(page, |pg| {
            let n = count(pg);
            let keys: Vec<u64> = (0..n).map(|i| branch_key(pg, i)).collect();
            let kids: Vec<u32> = (0..=n).map(|i| branch_child(pg, i)).collect();
            (keys, kids)
        });
        keys.insert(idx, sep);
        kids.insert(idx + 1, right);
        let mid = keys.len() / 2;
        let promoted = keys[mid];
        let right_page = self.store.alloc_page();
        let (rkeys, rkids) = (keys.split_off(mid + 1), kids.split_off(mid + 1));
        keys.pop(); // the promoted key moves up
        self.store.with_page_mut(page, |pg| {
            set_count(pg, keys.len());
            for (i, &k) in keys.iter().enumerate() {
                set_branch_key(pg, i, k);
            }
            for (i, &c) in kids.iter().enumerate() {
                set_branch_child(pg, i, c);
            }
        });
        self.store.with_page_mut(right_page, |pg| {
            set_node_type(pg, BRANCH);
            set_count(pg, rkeys.len());
            for (i, &k) in rkeys.iter().enumerate() {
                set_branch_key(pg, i, k);
            }
            for (i, &c) in rkids.iter().enumerate() {
                set_branch_child(pg, i, c);
            }
        });
        Some((promoted, right_page))
    }

    fn insert_leaf(&mut self, page: u32, key: u64, val: u64) -> Option<(u64, u32)> {
        let ps = self.store.page_size();
        let cap = leaf_cap(ps);
        #[derive(PartialEq)]
        enum Outcome {
            Done { new: bool },
            Split,
        }
        let outcome = self.store.with_page_mut(page, |pg| {
            let i = leaf_lower_bound(pg, key);
            let n = count(pg);
            if i < n && leaf_key(pg, i) == key {
                set_leaf_pair(pg, i, key, val);
                return Outcome::Done { new: false };
            }
            if n < cap {
                leaf_make_room(pg, i);
                set_leaf_pair(pg, i, key, val);
                set_count(pg, n + 1);
                return Outcome::Done { new: true };
            }
            Outcome::Split
        });
        match outcome {
            Outcome::Done { new } => {
                self.inserted_flag = new;
                None
            }
            Outcome::Split => {
                let right = self.store.alloc_page();
                let (tail, old_next) = self.store.with_page_mut(page, |pg| {
                    let n = count(pg);
                    let mid = n / 2;
                    let tail: Vec<(u64, u64)> = (mid..n)
                        .map(|i| (leaf_key(pg, i), leaf_val(pg, i)))
                        .collect();
                    set_count(pg, mid);
                    let nx = next_leaf(pg);
                    set_next_leaf(pg, right);
                    (tail, nx)
                });
                let sep = tail[0].0;
                self.store.with_page_mut(right, |pg| {
                    set_node_type(pg, LEAF);
                    set_count(pg, tail.len());
                    for (i, &(k, v)) in tail.iter().enumerate() {
                        set_leaf_pair(pg, i, k, v);
                    }
                    set_next_leaf(pg, old_next);
                });
                let target = if key < sep { page } else { right };
                self.store.with_page_mut(target, |pg| {
                    let i = leaf_lower_bound(pg, key);
                    leaf_make_room(pg, i);
                    set_leaf_pair(pg, i, key, val);
                    set_count(pg, count(pg) + 1);
                });
                self.inserted_flag = true;
                if let Some(dir) = &mut self.dir {
                    // `sep` sits strictly between its neighbours (leaf
                    // keys are globally strict), so its sorted insertion
                    // point is exactly the split leaf's directory slot.
                    let p = dir.seps.partition_point(|&s| s < sep);
                    debug_assert_eq!(dir.pages[p], page, "split leaf mislocated");
                    dir.seps.insert(p, sep);
                    dir.pages.insert(p + 1, right);
                    dir.dirty = true;
                }
                Some((sep, right))
            }
        }
    }

    /// Deletes `key` if present; returns whether it was.
    pub fn delete(&mut self, key: u64) -> bool {
        let leaf = self.leaf_for(key);
        let removed = self.store.with_page_mut(leaf, |pg| {
            let i = leaf_lower_bound(pg, key);
            if i < count(pg) && leaf_key(pg, i) == key {
                leaf_remove(pg, i);
                true
            } else {
                false
            }
        });
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// All pairs with `lo <= key <= hi`, in key order — the materializing
    /// convenience over [`BTreeCursor`]'s leaf-chain walk.
    pub fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        if lo > hi {
            return Vec::new();
        }
        Cursor::new(BTreeCursor::new(self, lo, hi)).collect()
    }

    /// The last entry with key ≤ `ub`, if any — the backward-step
    /// primitive of [`BTreeCursor`]. Descends one root-to-leaf path,
    /// falling back to earlier siblings when lazy deletion left leaves
    /// empty.
    fn last_le(&mut self, ub: u64) -> Option<(u64, u64)> {
        self.last_le_rec(self.root, self.height, ub)
    }

    fn last_le_rec(&mut self, page: u32, height: u32, ub: u64) -> Option<(u64, u64)> {
        if height == 1 {
            return self.store.with_page(page, |pg| {
                // First index with key > ub.
                let (mut lo, mut hi) = (0usize, count(pg));
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if leaf_key(pg, mid) <= ub {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                (lo > 0).then(|| (leaf_key(pg, lo - 1), leaf_val(pg, lo - 1)))
            });
        }
        let kids: Vec<u32> = self.store.with_page(page, |pg| {
            let start = branch_descend(pg, ub);
            (0..=start).map(|i| branch_child(pg, i)).collect()
        });
        for &child in kids.iter().rev() {
            if let Some(hit) = self.last_le_rec(child, height - 1, ub) {
                return Some(hit);
            }
        }
        None
    }

    /// Builds a tree from sorted, strictly-increasing `(key, value)` pairs
    /// by packing full leaves left to right and stacking branch levels —
    /// the proper form of the paper's "we first sorted the N random
    /// elements then inserted them" Figure 4 preparation.
    ///
    /// # Panics
    /// If the tree is not empty or `pairs` is not strictly increasing.
    pub fn bulk_load(&mut self, pairs: &[(u64, u64)]) {
        assert_eq!(self.len, 0, "bulk_load requires an empty tree");
        if pairs.is_empty() {
            return;
        }
        for w in pairs.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "bulk_load input must be strictly increasing"
            );
        }
        let ps = self.store.page_size();
        let lcap = leaf_cap(ps);
        let bcap = branch_cap(ps);

        // Level 0: leaves. Reuse the existing (empty) root page first.
        let mut nodes: Vec<(u64, u32)> = Vec::new(); // (first key, page)
        let mut prev_leaf: Option<u32> = None;
        for chunk in pairs.chunks(lcap) {
            let page = if nodes.is_empty() {
                self.root
            } else {
                self.store.alloc_page()
            };
            self.store.with_page_mut(page, |pg| {
                set_node_type(pg, LEAF);
                set_count(pg, chunk.len());
                for (i, &(k, v)) in chunk.iter().enumerate() {
                    set_leaf_pair(pg, i, k, v);
                }
                set_next_leaf(pg, NO_PAGE);
            });
            if let Some(prev) = prev_leaf {
                self.store.with_page_mut(prev, |pg| set_next_leaf(pg, page));
            }
            prev_leaf = Some(page);
            nodes.push((chunk[0].0, page));
        }

        // Stack branch levels until one node remains.
        let mut height = 1u32;
        while nodes.len() > 1 {
            let mut next_level: Vec<(u64, u32)> = Vec::new();
            for group in nodes.chunks(bcap + 1) {
                let page = self.store.alloc_page();
                self.store.with_page_mut(page, |pg| {
                    set_node_type(pg, BRANCH);
                    set_count(pg, group.len() - 1);
                    for (i, &(first_key, child)) in group.iter().enumerate() {
                        set_branch_child(pg, i, child);
                        if i > 0 {
                            set_branch_key(pg, i - 1, first_key);
                        }
                    }
                });
                next_level.push((group[0].0, page));
            }
            nodes = next_level;
            height += 1;
        }
        self.root = nodes[0].1;
        self.height = height;
        self.len = pairs.len();
        if self.dir.is_some() {
            self.dir = Some(self.build_dir());
        }
    }

    /// Verifies tree invariants (for tests): key ordering within and
    /// across nodes, leaf-chain consistency, and entry count.
    pub fn check_invariants(&mut self) {
        let root = self.root;
        let height = self.height;
        let counted = self.check_node(root, height, None, None);
        assert_eq!(counted, self.len, "entry count mismatch");
        if let Some(dir) = self.dir.take() {
            let fresh = self.build_dir();
            assert_eq!(dir.seps, fresh.seps, "vEB directory separators stale");
            assert_eq!(dir.pages, fresh.pages, "vEB directory leaf pages stale");
            if !dir.dirty {
                dir.veb
                    .check_against(&dir.seps)
                    .expect("vEB directory mirror");
            }
            self.dir = Some(dir);
        }
    }

    fn check_node(&mut self, page: u32, height: u32, lo: Option<u64>, hi: Option<u64>) -> usize {
        if height == 1 {
            let pairs: Vec<u64> = self.store.with_page(page, |pg| {
                assert_eq!(node_type(pg), LEAF);
                (0..count(pg)).map(|i| leaf_key(pg, i)).collect()
            });
            for w in pairs.windows(2) {
                assert!(w[0] < w[1], "leaf keys not strictly increasing");
            }
            for &k in &pairs {
                if let Some(l) = lo {
                    assert!(k >= l, "leaf key below subtree bound");
                }
                if let Some(h) = hi {
                    assert!(k < h, "leaf key above subtree bound");
                }
            }
            return pairs.len();
        }
        let (keys, kids): (Vec<u64>, Vec<u32>) = self.store.with_page(page, |pg| {
            assert_eq!(node_type(pg), BRANCH);
            let n = count(pg);
            assert!(n >= 1, "branch must have at least one key");
            (
                (0..n).map(|i| branch_key(pg, i)).collect(),
                (0..=n).map(|i| branch_child(pg, i)).collect(),
            )
        });
        for w in keys.windows(2) {
            assert!(w[0] < w[1], "branch keys not strictly increasing");
        }
        let mut total = 0;
        for (i, &child) in kids.iter().enumerate() {
            let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
            let chi = if i == keys.len() { hi } else { Some(keys[i]) };
            total += self.check_node(child, height - 1, clo, chi);
        }
        total
    }
}

/// A streaming cursor over a [`BTree`]'s entries in `[lo, hi]`.
///
/// Forward steps walk the leaf chain in place — `O(1)` amortized page
/// touches per entry. Backward steps re-descend from the root (the leaf
/// chain is singly linked), costing `O(log_B N)` page touches each.
pub struct BTreeCursor<'a, P: PageStore> {
    tree: &'a mut BTree<P>,
    lo: u64,
    hi: u64,
    /// Gap bound: the next ascending result has key ≥ this (`None` = past
    /// the end of the key space).
    gap: Option<u64>,
    /// Cached forward position: leaf page + entry index for the gap.
    fwd: Option<(u32, usize)>,
}

impl<'a, P: PageStore> BTreeCursor<'a, P> {
    fn new(tree: &'a mut BTree<P>, lo: u64, hi: u64) -> Self {
        BTreeCursor {
            tree,
            lo,
            hi,
            gap: Some(lo),
            fwd: None,
        }
    }
}

impl<P: PageStore> CursorOps for BTreeCursor<'_, P> {
    fn seek(&mut self, key: u64) {
        self.gap = Some(key.max(self.lo));
        self.fwd = None;
    }

    fn next(&mut self) -> Option<(u64, u64)> {
        let g = self.gap?;
        let (mut page, mut idx) = match self.fwd {
            Some(pos) => pos,
            None => {
                let leaf = self.tree.leaf_for(g);
                let idx = self
                    .tree
                    .store
                    .with_page(leaf, |pg| leaf_lower_bound(pg, g));
                (leaf, idx)
            }
        };
        loop {
            let (entry, next) = self.tree.store.with_page(page, |pg| {
                let entry = (idx < count(pg)).then(|| (leaf_key(pg, idx), leaf_val(pg, idx)));
                (entry, next_leaf(pg))
            });
            match entry {
                Some((k, v)) if k <= self.hi => {
                    self.fwd = Some((page, idx + 1));
                    self.gap = k.checked_add(1);
                    return Some((k, v));
                }
                Some(_) => {
                    self.fwd = Some((page, idx));
                    return None;
                }
                None if next == NO_PAGE => {
                    self.fwd = Some((page, idx));
                    return None;
                }
                None => {
                    page = next;
                    idx = 0;
                }
            }
        }
    }

    fn prev(&mut self) -> Option<(u64, u64)> {
        self.fwd = None;
        let ub = match self.gap {
            None => self.hi,
            Some(0) => return None,
            Some(g) => self.hi.min(g - 1),
        };
        match self.tree.last_le(ub) {
            Some((k, v)) if k >= self.lo => {
                self.gap = Some(k);
                Some((k, v))
            }
            _ => None,
        }
    }
}

/// Per-structure metadata format version (see `cosbt_core::persist`).
const META_VERSION: u8 = 1;

impl<P: PageStore> BTree<P> {
    /// Reconstructs a B-tree over an already-populated `store` from
    /// persisted control state (root page, height, entry count).
    pub fn from_parts(store: P, meta: &[u8]) -> Result<Self, cosbt_core::MetaError> {
        use cosbt_core::{persist::TAG_BTREE, MetaError, MetaReader};
        let mut r = MetaReader::new(meta, TAG_BTREE, META_VERSION)?;
        let root = r.u32()?;
        let height = r.u32()?;
        let len = r.usize()?;
        r.finish()?;
        if root >= store.num_pages() {
            return Err(MetaError::Invalid(format!(
                "root page {root} out of bounds ({} pages)",
                store.num_pages()
            )));
        }
        if height == 0 {
            return Err(MetaError::Invalid("zero height".into()));
        }
        Ok(BTree {
            store,
            root,
            height,
            len,
            inserted_flag: false,
            dir: None,
        })
    }
}

impl<P: PageStore> cosbt_core::Persist for BTree<P> {
    fn save_meta(&mut self) -> Vec<u8> {
        use cosbt_core::{persist::TAG_BTREE, MetaWriter};
        let mut w = MetaWriter::new(TAG_BTREE, META_VERSION);
        w.u32(self.root).u32(self.height).usize(self.len);
        w.finish()
    }
}

impl<P: PageStore> cosbt_core::Dictionary for BTree<P> {
    fn insert(&mut self, key: u64, val: u64) {
        BTree::insert(self, key, val)
    }

    fn delete(&mut self, key: u64) {
        BTree::delete(self, key);
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        BTree::get(self, key)
    }

    fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
        Cursor::new(BTreeCursor::new(self, lo, hi))
    }

    fn physical_len(&self) -> usize {
        self.len
    }

    fn name(&self) -> &'static str {
        "b-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_queries() {
        let mut t = BTree::new_plain();
        assert_eq!(t.get(5), None);
        assert!(!t.delete(5));
        assert_eq!(t.range(0, u64::MAX), vec![]);
        assert_eq!(t.height(), 1);
        t.check_invariants();
    }

    #[test]
    fn random_inserts_match_model() {
        let mut t = BTree::new_plain();
        let mut model = std::collections::BTreeMap::new();
        let mut x: u64 = 1;
        for i in 0..30_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 10_000;
            t.insert(k, i);
            model.insert(k, i);
        }
        assert_eq!(t.len(), model.len());
        for k in 0..10_000u64 {
            assert_eq!(t.get(k), model.get(&k).copied(), "key {k}");
        }
        assert!(t.height() >= 2, "should have split");
        t.check_invariants();
    }

    #[test]
    fn sorted_inserts_build_valid_tree() {
        for desc in [false, true] {
            let mut t = BTree::new_plain();
            let n = 20_000u64;
            for i in 0..n {
                let k = if desc { n - 1 - i } else { i };
                t.insert(k, k * 2);
            }
            t.check_invariants();
            for k in (0..n).step_by(97) {
                assert_eq!(t.get(k), Some(k * 2));
            }
        }
    }

    #[test]
    fn upsert_overwrites() {
        let mut t = BTree::new_plain();
        t.insert(7, 70);
        t.insert(7, 71);
        assert_eq!(t.get(7), Some(71));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn deletes_lazy_but_correct() {
        let mut t = BTree::new_plain();
        for k in 0..5000u64 {
            t.insert(k, k);
        }
        for k in (0..5000u64).step_by(2) {
            assert!(t.delete(k));
        }
        assert!(!t.delete(0), "double delete");
        assert_eq!(t.len(), 2500);
        for k in 0..5000u64 {
            assert_eq!(t.get(k), (k % 2 == 1).then_some(k), "key {k}");
        }
        t.check_invariants();
    }

    #[test]
    fn range_spans_leaves() {
        let mut t = BTree::new_plain();
        for k in 0..3000u64 {
            t.insert(k * 2, k);
        }
        let got = t.range(1000, 2000);
        let want: Vec<(u64, u64)> = (500..=1000).map(|k| (k * 2, k)).collect();
        assert_eq!(got, want);
        assert_eq!(t.range(1, 1), vec![]);
        assert_eq!(t.range(0, 0), vec![(0, 0)]);
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let pairs: Vec<(u64, u64)> = (0..50_000u64).map(|k| (k * 3, k)).collect();
        let mut bulk = BTree::new_plain();
        bulk.bulk_load(&pairs);
        bulk.check_invariants();
        assert_eq!(bulk.len(), pairs.len());
        for &(k, v) in pairs.iter().step_by(173) {
            assert_eq!(bulk.get(k), Some(v));
            assert_eq!(bulk.get(k + 1), None);
        }
        assert_eq!(bulk.range(0, u64::MAX), pairs);
    }

    #[test]
    fn search_transfers_are_logarithmic_base_b() {
        use cosbt_dam::{new_shared_sim, CacheConfig, SimPages};
        let sim = new_shared_sim(CacheConfig::new(4096, 8));
        let mut t = BTree::new(SimPages::new(sim.clone(), 4096));
        let pairs: Vec<(u64, u64)> = (0..200_000u64).map(|k| (k, k)).collect();
        t.bulk_load(&pairs);
        // Cold cache, then measure per-search fetches: at most height
        // (≈ log_{256} N = 3) per random search.
        sim.borrow_mut().drop_cache();
        sim.borrow_mut().reset_stats();
        let mut x: u64 = 5;
        let probes = 500u64;
        for _ in 0..probes {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.get(x % 200_000);
        }
        let per = sim.borrow().stats().fetches as f64 / probes as f64;
        assert!(
            per <= t.height() as f64 + 0.5,
            "fetches/search {per} vs height {}",
            t.height()
        );
    }

    #[test]
    fn veb_directory_matches_branchy_under_churn() {
        let mut t = BTree::new_plain();
        t.set_veb_layout(true);
        assert!(t.veb_layout_enabled());
        let mut model = std::collections::BTreeMap::new();
        let mut x: u64 = 9;
        for i in 0..40_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 12_000;
            if x.is_multiple_of(5) {
                assert_eq!(t.delete(k), model.remove(&k).is_some());
            } else {
                t.insert(k, i);
                model.insert(k, i);
            }
        }
        assert_eq!(t.len(), model.len());
        for k in 0..12_000u64 {
            assert_eq!(t.get(k), model.get(&k).copied(), "key {k}");
        }
        t.check_invariants();
        // Toggling off and back on must route identically.
        t.set_veb_layout(false);
        assert!(!t.veb_layout_enabled());
        t.set_veb_layout(true);
        t.check_invariants();
        for k in (0..12_000u64).step_by(7) {
            assert_eq!(t.get(k), model.get(&k).copied(), "key {k} after toggle");
        }
    }

    #[test]
    fn veb_directory_survives_bulk_load_and_reopen() {
        use cosbt_core::Persist;
        let pairs: Vec<(u64, u64)> = (0..60_000u64).map(|k| (k * 5 + 1, k)).collect();
        let mut t = BTree::new_plain();
        t.set_veb_layout(true);
        t.bulk_load(&pairs);
        t.check_invariants();
        for &(k, v) in pairs.iter().step_by(211) {
            assert_eq!(t.get(k), Some(v));
            assert_eq!(t.get(k + 1), None);
        }
        // The directory is DRAM-only: reopen from persisted meta, then
        // re-enable on the reconstructed tree.
        let meta = t.save_meta();
        let BTree { store, .. } = t;
        let mut r = BTree::from_parts(store, &meta).unwrap();
        assert!(!r.veb_layout_enabled());
        r.set_veb_layout(true);
        r.check_invariants();
        for &(k, v) in pairs.iter().step_by(173) {
            assert_eq!(r.get(k), Some(v));
        }
    }

    #[test]
    fn veb_directory_cuts_search_transfers_to_one_leaf() {
        use cosbt_dam::{new_shared_sim, CacheConfig, SimPages};
        let pairs: Vec<(u64, u64)> = (0..200_000u64).map(|k| (k, k)).collect();
        let mut per = [0f64; 2];
        for (slot, veb) in [(0usize, false), (1usize, true)] {
            let sim = new_shared_sim(CacheConfig::new(4096, 8));
            let mut t = BTree::new(SimPages::new(sim.clone(), 4096));
            t.set_veb_layout(veb);
            t.bulk_load(&pairs);
            sim.borrow_mut().drop_cache();
            sim.borrow_mut().reset_stats();
            let mut x: u64 = 5;
            let probes = 500u64;
            for _ in 0..probes {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                t.get(x % 200_000);
            }
            per[slot] = sim.borrow().stats().fetches as f64 / probes as f64;
        }
        assert!(
            per[1] <= 1.0 + f64::EPSILON,
            "vEB cold search should fetch only the leaf, got {}",
            per[1]
        );
        assert!(
            per[1] < per[0],
            "vEB ({}) should beat branchy descent ({})",
            per[1],
            per[0]
        );
    }

    #[test]
    fn works_over_file_pages() {
        use cosbt_dam::FilePages;
        let mut path = std::env::temp_dir();
        path.push(format!("cosbt-btree-{}.db", std::process::id()));
        let store = FilePages::create(&path, 4096, 16).unwrap();
        let mut t = BTree::new(store);
        for k in 0..10_000u64 {
            t.insert(k.wrapping_mul(0x9E3779B97F4A7C15) % 65536, k);
        }
        t.store_mut().drop_cache().unwrap();
        let mut model = std::collections::BTreeMap::new();
        for k in 0..10_000u64 {
            model.insert(k.wrapping_mul(0x9E3779B97F4A7C15) % 65536, k);
        }
        for (&k, &v) in model.iter().step_by(37) {
            assert_eq!(t.get(k), Some(v));
        }
        assert!(t.store().stats().fetches > 0, "should have done real I/O");
        std::fs::remove_file(path).ok();
    }
}
