//! On-page node layout and accessors.
//!
//! Pages are raw byte arrays (so the same code runs over heap, simulated,
//! and file-backed stores); these helpers implement the slotted layout:
//!
//! ```text
//! header (16 bytes): [0] node_type  [2..4] count  [4..8] next-leaf (leaf)
//! leaf   payload:    count * (key u64, val u64)      pairs, sorted
//! branch payload:    count * key u64, then (count+1) * child u32
//! ```

/// Node type tag for leaves.
pub const LEAF: u8 = 0;
/// Node type tag for internal (branch) nodes.
pub const BRANCH: u8 = 1;

/// Header size in bytes.
pub const HDR: usize = 16;

/// "No page" sentinel for the leaf chain.
pub const NO_PAGE: u32 = u32::MAX;

/// Maximum pairs in a leaf of a `page_size` page.
#[inline]
pub fn leaf_cap(page_size: usize) -> usize {
    (page_size - HDR) / 16
}

/// Maximum keys in a branch of a `page_size` page (children = keys + 1).
#[inline]
pub fn branch_cap(page_size: usize) -> usize {
    (page_size - HDR - 4) / 12
}

#[inline]
fn ru64(pg: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(pg[off..off + 8].try_into().unwrap())
}

#[inline]
fn wu64(pg: &mut [u8], off: usize, v: u64) {
    pg[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn ru32(pg: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(pg[off..off + 4].try_into().unwrap())
}

#[inline]
fn wu32(pg: &mut [u8], off: usize, v: u32) {
    pg[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Node type tag of the page.
#[inline]
pub fn node_type(pg: &[u8]) -> u8 {
    pg[0]
}

/// Sets the node type tag.
#[inline]
pub fn set_node_type(pg: &mut [u8], t: u8) {
    pg[0] = t;
}

/// Number of keys (branch) or pairs (leaf).
#[inline]
pub fn count(pg: &[u8]) -> usize {
    u16::from_le_bytes(pg[2..4].try_into().unwrap()) as usize
}

/// Sets the count.
#[inline]
pub fn set_count(pg: &mut [u8], n: usize) {
    pg[2..4].copy_from_slice(&(n as u16).to_le_bytes());
}

/// Next leaf in the chain ([`NO_PAGE`] when last).
#[inline]
pub fn next_leaf(pg: &[u8]) -> u32 {
    ru32(pg, 4)
}

/// Sets the next-leaf pointer.
#[inline]
pub fn set_next_leaf(pg: &mut [u8], id: u32) {
    wu32(pg, 4, id)
}

// ---- leaf accessors ----

/// Key of pair `i` in a leaf.
#[inline]
pub fn leaf_key(pg: &[u8], i: usize) -> u64 {
    ru64(pg, HDR + 16 * i)
}

/// Value of pair `i` in a leaf.
#[inline]
pub fn leaf_val(pg: &[u8], i: usize) -> u64 {
    ru64(pg, HDR + 16 * i + 8)
}

/// Writes pair `i` of a leaf.
#[inline]
pub fn set_leaf_pair(pg: &mut [u8], i: usize, key: u64, val: u64) {
    wu64(pg, HDR + 16 * i, key);
    wu64(pg, HDR + 16 * i + 8, val);
}

/// First index in the leaf with key ≥ `key` (binary search).
pub fn leaf_lower_bound(pg: &[u8], key: u64) -> usize {
    let (mut lo, mut hi) = (0usize, count(pg));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if leaf_key(pg, mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First index in the leaf with key ≥ `key`, bit-identical to
/// [`leaf_lower_bound`] but branchless: the probe count depends only on
/// the pair count, and the only data-dependent operation is a
/// mask-selected base advance (a conditional move, never a predicted
/// branch). Used by the vEB read path, where the layout keeps probes
/// cache-resident and misprediction stalls dominate.
#[inline]
pub fn leaf_lower_bound_branchless(pg: &[u8], key: u64) -> usize {
    let n = count(pg);
    if n == 0 {
        return 0;
    }
    let mut base = 0usize;
    let mut len = n;
    while len > 1 {
        let half = len / 2;
        let less = (leaf_key(pg, base + half - 1) < key) as usize;
        base += half & less.wrapping_neg();
        len -= half;
    }
    base + ((leaf_key(pg, base) < key) as usize)
}

/// Shifts pairs `[i, n)` right by one (making room at `i`).
pub fn leaf_make_room(pg: &mut [u8], i: usize) {
    let n = count(pg);
    pg.copy_within(HDR + 16 * i..HDR + 16 * n, HDR + 16 * (i + 1));
}

/// Removes pair `i`, shifting the tail left.
pub fn leaf_remove(pg: &mut [u8], i: usize) {
    let n = count(pg);
    pg.copy_within(HDR + 16 * (i + 1)..HDR + 16 * n, HDR + 16 * i);
    set_count(pg, n - 1);
}

// ---- branch accessors ----

/// Byte offset of the children array for a given page size.
#[inline]
fn child_base(page_size: usize) -> usize {
    HDR + 8 * branch_cap(page_size)
}

/// Key `i` of a branch node.
#[inline]
pub fn branch_key(pg: &[u8], i: usize) -> u64 {
    ru64(pg, HDR + 8 * i)
}

/// Sets key `i` of a branch node.
#[inline]
pub fn set_branch_key(pg: &mut [u8], i: usize, key: u64) {
    wu64(pg, HDR + 8 * i, key)
}

/// Child `i` of a branch node (`0 ..= count`).
#[inline]
pub fn branch_child(pg: &[u8], i: usize) -> u32 {
    ru32(pg, child_base(pg.len()) + 4 * i)
}

/// Sets child `i` of a branch node.
#[inline]
pub fn set_branch_child(pg: &mut [u8], i: usize, child: u32) {
    let base = child_base(pg.len());
    wu32(pg, base + 4 * i, child)
}

/// Child index to follow for `key`: first child whose separator exceeds
/// `key`. Separator semantics: keys in child `i` are < key\[i\]; keys in
/// child `i+1` are ≥ key\[i\].
pub fn branch_descend(pg: &[u8], key: u64) -> usize {
    let (mut lo, mut hi) = (0usize, count(pg));
    while lo < hi {
        let mid = (lo + hi) / 2;
        if branch_key(pg, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Inserts `(key, right_child)` after position `i` in a branch node.
pub fn branch_insert_at(pg: &mut [u8], i: usize, key: u64, right: u32) {
    let n = count(pg);
    pg.copy_within(HDR + 8 * i..HDR + 8 * n, HDR + 8 * (i + 1));
    set_branch_key(pg, i, key);
    let base = child_base(pg.len());
    pg.copy_within(base + 4 * (i + 1)..base + 4 * (n + 1), base + 4 * (i + 2));
    set_branch_child(pg, i + 1, right);
    set_count(pg, n + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 4096;

    #[test]
    fn capacities_match_paper_geometry() {
        assert_eq!(leaf_cap(PS), 255);
        assert_eq!(branch_cap(PS), 339);
        // branch layout fits: header + keys + children
        assert!(HDR + 8 * branch_cap(PS) + 4 * (branch_cap(PS) + 1) <= PS);
    }

    #[test]
    fn leaf_roundtrip_and_search() {
        let mut pg = vec![0u8; PS];
        set_node_type(&mut pg, LEAF);
        for i in 0..10 {
            set_leaf_pair(&mut pg, i, (i as u64) * 10, i as u64);
        }
        set_count(&mut pg, 10);
        assert_eq!(leaf_key(&pg, 3), 30);
        assert_eq!(leaf_val(&pg, 3), 3);
        assert_eq!(leaf_lower_bound(&pg, 30), 3);
        assert_eq!(leaf_lower_bound(&pg, 31), 4);
        assert_eq!(leaf_lower_bound(&pg, 0), 0);
        assert_eq!(leaf_lower_bound(&pg, 1000), 10);
    }

    #[test]
    fn branchless_lower_bound_matches_branchy() {
        let mut pg = vec![0u8; PS];
        set_node_type(&mut pg, LEAF);
        // Every count 0..=cap, with duplicates, probing all boundaries.
        for n in 0..=leaf_cap(PS) {
            for i in 0..n {
                set_leaf_pair(&mut pg, i, (i as u64 / 3) * 6 + 2, i as u64);
            }
            set_count(&mut pg, n);
            let max = if n == 0 { 8 } else { leaf_key(&pg, n - 1) + 3 };
            for key in 0..max {
                assert_eq!(
                    leaf_lower_bound_branchless(&pg, key),
                    leaf_lower_bound(&pg, key),
                    "n={n} key={key}"
                );
            }
            assert_eq!(
                leaf_lower_bound_branchless(&pg, u64::MAX),
                leaf_lower_bound(&pg, u64::MAX)
            );
        }
    }

    #[test]
    fn leaf_make_room_and_remove() {
        let mut pg = vec![0u8; PS];
        set_node_type(&mut pg, LEAF);
        for i in 0..5 {
            set_leaf_pair(&mut pg, i, i as u64 * 2, 0);
        }
        set_count(&mut pg, 5);
        leaf_make_room(&mut pg, 2);
        set_leaf_pair(&mut pg, 2, 3, 99);
        set_count(&mut pg, 6);
        let keys: Vec<u64> = (0..6).map(|i| leaf_key(&pg, i)).collect();
        assert_eq!(keys, vec![0, 2, 3, 4, 6, 8]);
        leaf_remove(&mut pg, 2);
        let keys: Vec<u64> = (0..5).map(|i| leaf_key(&pg, i)).collect();
        assert_eq!(keys, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn branch_descend_separator_semantics() {
        let mut pg = vec![0u8; PS];
        set_node_type(&mut pg, BRANCH);
        set_branch_key(&mut pg, 0, 10);
        set_branch_key(&mut pg, 1, 20);
        set_count(&mut pg, 2);
        for i in 0..3 {
            set_branch_child(&mut pg, i, 100 + i as u32);
        }
        assert_eq!(branch_descend(&pg, 5), 0);
        assert_eq!(branch_descend(&pg, 10), 1, "key == separator goes right");
        assert_eq!(branch_descend(&pg, 15), 1);
        assert_eq!(branch_descend(&pg, 25), 2);
        assert_eq!(branch_child(&pg, branch_descend(&pg, 25)), 102);
    }

    #[test]
    fn branch_insert_preserves_order() {
        let mut pg = vec![0u8; PS];
        set_node_type(&mut pg, BRANCH);
        set_branch_key(&mut pg, 0, 10);
        set_branch_key(&mut pg, 1, 30);
        set_count(&mut pg, 2);
        for i in 0..3 {
            set_branch_child(&mut pg, i, i as u32);
        }
        branch_insert_at(&mut pg, 1, 20, 9);
        assert_eq!(count(&pg), 3);
        let keys: Vec<u64> = (0..3).map(|i| branch_key(&pg, i)).collect();
        assert_eq!(keys, vec![10, 20, 30]);
        let kids: Vec<u32> = (0..4).map(|i| branch_child(&pg, i)).collect();
        assert_eq!(kids, vec![0, 1, 9, 2]);
    }
}
