//! Baseline B+-tree: the "traditional B-tree" of the paper's Section 4.
//!
//! "Our B-tree implementation employs blocks of size 4KiB. Key and value
//! sizes were each 64 bits to match our COLA implementation." This crate
//! reproduces that comparator: a B+-tree (all key/value pairs in the
//! leaves, leaves chained for range scans) over any
//! [`cosbt_dam::PageStore`], with 4 KiB pages by default, point and range
//! queries, upsert, delete, and sorted bulk-loading (the paper builds its
//! Figure 4 tree by sorting then inserting: [`BTree::bulk_load`] is that
//! operation done properly).
//!
//! Costs in the DAM model: `O(log_{B+1} N)` transfers per search/insert —
//! optimal for searching, and the thing the COLA beats by Θ(B/log B) on
//! random insertion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod tree;

pub use tree::{BTree, BTreeCursor};
