//! The shuttle tree (Section 2 of *Cache-Oblivious Streaming B-trees*).
//!
//! A shuttle tree is a strongly weight-balanced search tree (SWBST) in
//! which every child edge carries a linked list of *buffers* — themselves
//! recursively defined shuttle trees — of doubly-exponentially increasing
//! size, with heights drawn from the Fibonacci-factor machinery of the
//! paper. Elements inserted at the root pause in buffers and are
//! *shuttled* toward the leaves only when a buffer overflows, amortizing
//! the cost of crossing block boundaries; searches walk one root-to-leaf
//! path, peeking into each buffer on the way.
//!
//! Module map:
//!
//! * [`mod@fib`] — Fibonacci numbers, Fibonacci factors `x(h)`, and the
//!   buffer-height-index function `H(j)`;
//! * [`tree`] — the dynamic structure: SWBST balancing, buffer chains,
//!   shuttling inserts, searches, range queries;
//! * [`layout`] — the van Emde Boas / Fibonacci recursive layout
//!   (Figure 1): address assignment for every node and buffer (including
//!   nested buffer trees) and search-trace replay through the DAM
//!   simulator.
//!
//! ## Departures from the paper (see DESIGN.md)
//!
//! * The paper's `H(j) = j − ⌈2·log_φ j⌉` only yields non-trivial buffers
//!   for trees of height ≳ F₁₄ — an asymptotic regime unreachable in any
//!   practical experiment. The paper notes the start constant is free
//!   ("we can start j at any sufficiently large constant"); we expose the
//!   faithful function and default the *practical* profile to
//!   `H(j) = j − 2`, which preserves the structure (geometrically growing
//!   Fibonacci buffer heights, largest ≈ height/φ²) at laptop scale.
//! * Dynamic layout maintenance inside a PMA (Lemmas 7–13) is realized as
//!   periodic re-embedding: [`layout::LayoutImage`] recomputes the exact
//!   recursive layout of the current tree, and searches are measured
//!   against it; the incremental pointer-surgery variant is future work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fib;
pub mod layout;
pub mod tree;

pub use fib::{buffer_heights, fib, fib_factor, BufferProfile};
pub use layout::LayoutImage;
pub use tree::{ShuttleStats, ShuttleTree};
