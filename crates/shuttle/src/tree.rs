//! The dynamic shuttle tree.
//!
//! Structure (paper, Section 2): a strongly weight-balanced search tree
//! (SWBST) with fanout parameter `c` — every node at height `h` has
//! subtree weight `Θ(c^h)` — where each child edge carries a linked list
//! of buffers with Fibonacci heights `F_{H(j)}` (see [`mod@crate::fib`]),
//! each buffer itself a shuttle tree capped at that height.
//!
//! * **Insert**: deposit the message in the smallest buffer of the root's
//!   appropriate child edge. When a buffer's tree outgrows its height
//!   cap, drain it — *in arrival order* — into the next buffer of the
//!   list, or into the child node once the largest buffer overflows
//!   ("shuttling"). Messages reaching a leaf are applied and weight-
//!   balance splits trickle up (Lemma 1).
//! * **Search**: walk the root-to-leaf path; at each edge, search the
//!   buffers smallest-first (newest data is highest and in the smallest
//!   buffers), then descend.
//!
//! Engineering notes:
//! * Messages carry a global sequence number so arrival order survives
//!   buffering (the paper flushes "in arrival order, not smallest to
//!   largest"); upserts and tombstone deletes resolve newest-wins.
//! * Node splits are deferred while a drain cascade is in flight (the
//!   dirty-leaf queue), so node ids and routing stay stable mid-drain;
//!   the rebalance pass then splits overweight nodes repeatedly until
//!   the SWBST invariant is restored. When a split divides an edge, the
//!   edge's in-flight buffer contents are repartitioned by the new pivot
//!   into the largest buffer of each side — smaller buffers stay empty,
//!   preserving the smaller-is-newer chain invariant.

use crate::fib::{buffer_heights, BufferProfile};

/// Arena node id.
pub type NodeId = u32;
const NIL: NodeId = u32::MAX;

/// An in-flight message: an upsert or a tombstone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Msg {
    pub key: u64,
    pub val: u64,
    pub seq: u64,
    pub del: bool,
}

/// One buffer of a chain: a shuttle tree capped at `cap` height.
#[derive(Debug)]
pub(crate) struct Buf {
    pub cap: u64,
    pub tree: Box<ShuttleTree>,
}

/// The buffer list of one child edge (heights strictly increasing).
#[derive(Debug, Default)]
pub(crate) struct Chain {
    pub bufs: Vec<Buf>,
}

#[derive(Debug)]
pub(crate) struct Node {
    pub parent: NodeId,
    pub height: u64,
    /// Records stored in this subtree's leaves (in-flight messages do not
    /// count until delivered, as in the paper).
    pub weight: usize,
    pub pivots: Vec<u64>,
    pub children: Vec<NodeId>,
    /// Parallel to `children`.
    pub chains: Vec<Chain>,
    /// Leaf payload, sorted by key.
    pub msgs: Vec<Msg>,
    /// Layout address (assigned by [`crate::LayoutImage`]).
    pub addr: u64,
}

impl Node {
    fn new_leaf(parent: NodeId) -> Node {
        Node {
            parent,
            height: 1,
            weight: 0,
            pivots: Vec::new(),
            children: Vec::new(),
            chains: Vec::new(),
            msgs: Vec::new(),
            addr: 0,
        }
    }

    pub(crate) fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Approximate record size in bytes, for layout and simulation.
    pub(crate) fn record_bytes(&self) -> u32 {
        (64 + 16 * self.pivots.len() + 24 * self.msgs.len()) as u32
    }
}

/// Work counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct ShuttleStats {
    /// Top-level insert/delete operations.
    pub inserts: u64,
    /// Buffer drains (overflows).
    pub drains: u64,
    /// Messages moved by drains (the "shuttled" volume).
    pub msgs_shuttled: u64,
    /// Node splits.
    pub splits: u64,
    /// Messages applied at leaves of the top-level tree.
    pub leaf_applies: u64,
    /// Buffers searched during lookups.
    pub buffers_searched: u64,
}

/// A shuttle tree. Also used, recursively, as the buffers of a larger
/// shuttle tree.
#[derive(Debug)]
pub struct ShuttleTree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) root: NodeId,
    c: usize,
    profile: BufferProfile,
    /// Buffer trees store tombstones as records; the top-level tree
    /// applies them.
    is_buffer: bool,
    seq: u64,
    live: usize,
    n: u64,
    dirty_leaves: Vec<NodeId>,
    pump_depth: u32,
    stats: ShuttleStats,
}

impl ShuttleTree {
    /// A new top-level shuttle tree with fanout parameter `c ≥ 2` and the
    /// practical buffer profile.
    pub fn new(c: usize) -> Self {
        Self::with_profile(c, BufferProfile::Practical)
    }

    /// A new top-level shuttle tree with an explicit buffer profile.
    pub fn with_profile(c: usize, profile: BufferProfile) -> Self {
        assert!(c >= 2);
        ShuttleTree {
            nodes: vec![Node::new_leaf(NIL)],
            root: 0,
            c,
            profile,
            is_buffer: false,
            seq: 0,
            live: 0,
            n: 0,
            dirty_leaves: Vec::new(),
            pump_depth: 0,
            stats: ShuttleStats::default(),
        }
    }

    fn new_buffer(c: usize, profile: BufferProfile) -> Self {
        let mut t = Self::with_profile(c, profile);
        t.is_buffer = true;
        t
    }

    /// Height of the root (1 = single leaf).
    pub fn height(&self) -> u64 {
        self.nodes[self.root as usize].height
    }

    /// Records delivered to leaves (in-flight messages not counted).
    pub fn delivered_len(&self) -> usize {
        self.nodes[self.root as usize].weight
    }

    /// Total nodes in this tree (not counting nested buffer trees).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Fanout parameter.
    pub fn fanout(&self) -> usize {
        self.c
    }

    /// Work counters.
    pub fn stats(&self) -> ShuttleStats {
        self.stats
    }

    /// Whether any edge of this tree currently has a buffer chain.
    pub fn has_buffers(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| n.chains.iter().any(|ch| !ch.bufs.is_empty()))
    }

    fn max_weight(&self, height: u64) -> usize {
        // SWBST invariant: w(v) = Θ(c^h). Split above 2·c^h.
        2 * self.c.pow(height.min(31) as u32)
    }

    fn route(&self, nid: NodeId, key: u64) -> usize {
        self.nodes[nid as usize]
            .pivots
            .partition_point(|&p| p <= key)
    }

    fn fresh_chain(&self, child_height: u64) -> Chain {
        let bufs = buffer_heights(self.profile, child_height)
            .into_iter()
            .map(|cap| Buf {
                cap,
                tree: Box::new(ShuttleTree::new_buffer(self.c, self.profile)),
            })
            .collect();
        Chain { bufs }
    }

    // ---- insertion ----

    /// Inserts or overwrites a key.
    pub fn insert(&mut self, key: u64, val: u64) {
        self.seq += 1;
        self.n += 1;
        self.stats.inserts += 1;
        let m = Msg {
            key,
            val,
            seq: self.seq,
            del: false,
        };
        self.insert_top(m);
    }

    /// Deletes a key (tombstone message).
    pub fn delete(&mut self, key: u64) {
        self.seq += 1;
        self.n += 1;
        self.stats.inserts += 1;
        let m = Msg {
            key,
            val: 0,
            seq: self.seq,
            del: true,
        };
        self.insert_top(m);
    }

    fn insert_top(&mut self, m: Msg) {
        self.pump_depth += 1;
        self.insert_msg(self.root, m);
        self.pump_depth -= 1;
        self.flush_rebalance();
    }

    /// Raw message entry for buffer trees (keeps the caller's seq).
    fn insert_raw(&mut self, m: Msg) {
        self.pump_depth += 1;
        self.insert_msg(self.root, m);
        self.pump_depth -= 1;
        self.flush_rebalance();
    }

    fn insert_msg(&mut self, mut nid: NodeId, m: Msg) {
        loop {
            if self.nodes[nid as usize].is_leaf() {
                self.apply_at_leaf(nid, m);
                return;
            }
            let e = self.route(nid, m.key);
            if self.nodes[nid as usize].chains[e].bufs.is_empty() {
                nid = self.nodes[nid as usize].children[e];
                continue;
            }
            // Deposit into the smallest buffer of the chain, then cascade
            // overflows down the list and, last, into the child node.
            self.nodes[nid as usize].chains[e].bufs[0]
                .tree
                .insert_raw(m);
            self.cascade(nid, e);
            return;
        }
    }

    fn cascade(&mut self, nid: NodeId, e: usize) {
        let mut i = 0usize;
        loop {
            let nb = self.nodes[nid as usize].chains[e].bufs.len();
            if i >= nb {
                break;
            }
            let overflow = {
                let b = &self.nodes[nid as usize].chains[e].bufs[i];
                b.tree.height() > b.cap
            };
            if overflow {
                let old = std::mem::replace(
                    &mut self.nodes[nid as usize].chains[e].bufs[i].tree,
                    Box::new(ShuttleTree::new_buffer(self.c, self.profile)),
                );
                let mut msgs = old.into_msgs();
                msgs.sort_unstable_by_key(|m| m.seq); // arrival order
                self.stats.drains += 1;
                self.stats.msgs_shuttled += msgs.len() as u64;
                if i + 1 < nb {
                    let nxt = &mut self.nodes[nid as usize].chains[e].bufs[i + 1];
                    for m in msgs {
                        nxt.tree.insert_raw(m);
                    }
                } else {
                    let child = self.nodes[nid as usize].children[e];
                    for m in msgs {
                        self.insert_msg(child, m);
                    }
                }
            }
            i += 1;
        }
    }

    fn apply_at_leaf(&mut self, leaf: NodeId, m: Msg) {
        self.stats.leaf_applies += 1;
        let is_buffer = self.is_buffer;
        let node = &mut self.nodes[leaf as usize];
        let pos = node.msgs.binary_search_by_key(&m.key, |x| x.key);
        let delta: isize = match pos {
            Ok(i) => {
                if is_buffer {
                    // Buffer trees store the newest message per key.
                    if m.seq >= node.msgs[i].seq {
                        node.msgs[i] = m;
                    }
                    0
                } else if m.del {
                    node.msgs.remove(i);
                    -1
                } else {
                    node.msgs[i] = m;
                    0
                }
            }
            Err(i) => {
                if m.del && !is_buffer {
                    0 // deleting an absent key
                } else {
                    node.msgs.insert(i, m);
                    1
                }
            }
        };
        if delta != 0 {
            let mut cur = leaf;
            while cur != NIL {
                let n = &mut self.nodes[cur as usize];
                n.weight = (n.weight as isize + delta) as usize;
                cur = n.parent;
            }
            if delta > 0 && !is_buffer {
                self.live += 1;
            } else if delta < 0 && !is_buffer {
                self.live -= 1;
            }
        }
        if delta > 0 {
            self.dirty_leaves.push(leaf);
        }
    }

    fn flush_rebalance(&mut self) {
        if self.pump_depth > 0 {
            return;
        }
        while let Some(leaf) = self.dirty_leaves.pop() {
            self.rebalance_path(leaf);
        }
    }

    fn rebalance_path(&mut self, mut nid: NodeId) {
        loop {
            let (h, w) = {
                let n = &self.nodes[nid as usize];
                (n.height, n.weight)
            };
            if w > self.max_weight(h) && self.can_split(nid) {
                self.split(nid);
                continue; // re-check the (now lighter) node
            }
            let p = self.nodes[nid as usize].parent;
            if p == NIL {
                return;
            }
            nid = p;
        }
    }

    /// A node can split if it has ≥ 2 records (leaf) or ≥ 2 children.
    fn can_split(&self, nid: NodeId) -> bool {
        let n = &self.nodes[nid as usize];
        if n.is_leaf() {
            n.msgs.len() >= 2
        } else {
            n.children.len() >= 2
        }
    }

    /// Splits `nid` into itself plus a new right sibling, dividing the
    /// weight as evenly as possible (the paper's balancing routine);
    /// creates a new root if `nid` was the root.
    fn split(&mut self, nid: NodeId) {
        self.stats.splits += 1;
        let new_id = self.nodes.len() as NodeId;
        if self.nodes[nid as usize].is_leaf() {
            let node = &mut self.nodes[nid as usize];
            let mid = node.msgs.len() / 2;
            let right_msgs = node.msgs.split_off(mid);
            let pivot = right_msgs[0].key;
            let w = right_msgs.len();
            node.weight -= w;
            let parent = node.parent;
            let mut r = Node::new_leaf(parent);
            r.msgs = right_msgs;
            r.weight = w;
            self.nodes.push(r);
            self.attach_sibling(nid, new_id, pivot);
            return;
        }
        // Internal node: cut the child list so both sides get roughly
        // half the weight (at least one child each).
        let child_weights: Vec<usize> = self.nodes[nid as usize]
            .children
            .iter()
            .map(|&c| self.nodes[c as usize].weight)
            .collect();
        let total: usize = child_weights.iter().sum();
        let mut acc = 0usize;
        let mut cut = 1usize;
        for (i, &w) in child_weights.iter().enumerate() {
            acc += w;
            if acc * 2 >= total {
                cut = i + 1;
                break;
            }
        }
        cut = cut.clamp(1, child_weights.len() - 1);
        let right_weight: usize = child_weights[cut..].iter().sum();

        let (pivot, right) = {
            let node = &mut self.nodes[nid as usize];
            let right_children = node.children.split_off(cut);
            let right_chains: Vec<Chain> = node.chains.split_off(cut);
            let mut right_pivots = node.pivots.split_off(cut - 1);
            let pivot = right_pivots.remove(0);
            node.weight -= right_weight;
            let r = Node {
                parent: node.parent,
                height: node.height,
                weight: right_weight,
                pivots: right_pivots,
                children: right_children,
                chains: right_chains,
                msgs: Vec::new(),
                addr: 0,
            };
            (pivot, r)
        };
        self.nodes.push(right);
        let kids: Vec<NodeId> = self.nodes[new_id as usize].children.clone();
        for c in kids {
            self.nodes[c as usize].parent = new_id;
        }
        self.attach_sibling(nid, new_id, pivot);
    }

    /// Inserts `new_id` as the right sibling of `nid` under its parent
    /// (creating a new root if needed) and splits the parent edge's
    /// buffer chain by `pivot`.
    fn attach_sibling(&mut self, nid: NodeId, new_id: NodeId, pivot: u64) {
        let parent = self.nodes[nid as usize].parent;
        let child_height = self.nodes[nid as usize].height;
        if parent == NIL {
            // New root above the old one.
            let root_id = self.nodes.len() as NodeId;
            let w = self.nodes[nid as usize].weight + self.nodes[new_id as usize].weight;
            let chain_a = self.fresh_chain(child_height);
            let chain_b = self.fresh_chain(child_height);
            let root = Node {
                parent: NIL,
                height: child_height + 1,
                weight: w,
                pivots: vec![pivot],
                children: vec![nid, new_id],
                chains: vec![chain_a, chain_b],
                msgs: Vec::new(),
                addr: 0,
            };
            self.nodes.push(root);
            self.nodes[nid as usize].parent = root_id;
            self.nodes[new_id as usize].parent = root_id;
            self.root = root_id;
            return;
        }
        self.nodes[new_id as usize].parent = parent;
        let e = {
            let p = &self.nodes[parent as usize];
            p.children
                .iter()
                .position(|&c| c == nid)
                .expect("child not under parent")
        };
        // Split the edge's buffer chain contents by the new pivot: drain
        // everything, repartition into the LARGEST buffer of each side
        // (smaller buffers stay empty, keeping smaller-is-newer intact).
        let old_chain = std::mem::take(&mut self.nodes[parent as usize].chains[e]);
        let mut msgs = Vec::new();
        for b in old_chain.bufs {
            msgs.extend(b.tree.into_msgs());
        }
        msgs.sort_unstable_by_key(|m| m.seq);
        let mut left_chain = self.fresh_chain(child_height);
        let mut right_chain = self.fresh_chain(child_height);
        for m in msgs {
            let chain = if m.key < pivot {
                &mut left_chain
            } else {
                &mut right_chain
            };
            if let Some(last) = chain.bufs.last_mut() {
                last.tree.insert_raw(m);
            } else {
                // No buffers on this edge (tiny Fibonacci factor): deliver
                // directly to the child.
                let child = if m.key < pivot { nid } else { new_id };
                self.insert_msg(child, m);
            }
        }
        let p = &mut self.nodes[parent as usize];
        p.chains[e] = left_chain;
        p.pivots.insert(e, pivot);
        p.children.insert(e + 1, new_id);
        p.chains.insert(e + 1, right_chain);
    }

    // ---- search ----

    /// Point lookup.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        match self.search(key) {
            Some(m) if !m.del => Some(m.val),
            _ => None,
        }
    }

    fn search(&mut self, key: u64) -> Option<Msg> {
        let mut nid = self.root;
        loop {
            if self.nodes[nid as usize].is_leaf() {
                let n = &self.nodes[nid as usize];
                return n
                    .msgs
                    .binary_search_by_key(&key, |m| m.key)
                    .ok()
                    .map(|i| n.msgs[i]);
            }
            let e = self.route(nid, key);
            let nb = self.nodes[nid as usize].chains[e].bufs.len();
            for i in 0..nb {
                self.stats.buffers_searched += 1;
                // Buffers are searched smallest (newest) first.
                let found = self.nodes[nid as usize].chains[e].bufs[i]
                    .tree
                    .search_ref(key);
                if found.is_some() {
                    return found;
                }
            }
            nid = self.nodes[nid as usize].children[e];
        }
    }

    /// Immutable search used for buffer trees (no stats mutation needed
    /// beyond the caller's).
    fn search_ref(&self, key: u64) -> Option<Msg> {
        let mut nid = self.root;
        loop {
            let n = &self.nodes[nid as usize];
            if n.is_leaf() {
                return n
                    .msgs
                    .binary_search_by_key(&key, |m| m.key)
                    .ok()
                    .map(|i| n.msgs[i]);
            }
            let e = n.pivots.partition_point(|&p| p <= key);
            for b in &n.chains[e].bufs {
                if let Some(m) = b.tree.search_ref(key) {
                    return Some(m);
                }
            }
            nid = n.children[e];
        }
    }

    // ---- range ----

    /// All live pairs with `lo <= key <= hi`, in key order, merging leaf
    /// records with in-flight buffered messages (newest wins).
    pub fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        if lo > hi {
            return Vec::new();
        }
        let mut msgs = Vec::new();
        self.collect_range(self.root, lo, hi, &mut msgs);
        // Newest version per key wins; drop tombstones.
        msgs.sort_unstable_by(|a, b| a.key.cmp(&b.key).then(b.seq.cmp(&a.seq)));
        let mut out = Vec::new();
        let mut last: Option<u64> = None;
        for m in msgs {
            if last == Some(m.key) {
                continue;
            }
            last = Some(m.key);
            if !m.del {
                out.push((m.key, m.val));
            }
        }
        out
    }

    fn collect_range(&self, nid: NodeId, lo: u64, hi: u64, out: &mut Vec<Msg>) {
        let n = &self.nodes[nid as usize];
        if n.is_leaf() {
            let start = n.msgs.partition_point(|m| m.key < lo);
            for m in &n.msgs[start..] {
                if m.key > hi {
                    break;
                }
                out.push(*m);
            }
            return;
        }
        let from = n.pivots.partition_point(|&p| p <= lo);
        let to = n.pivots.partition_point(|&p| p <= hi);
        for e in from..=to {
            for b in &n.chains[e].bufs {
                b.tree.collect_range(b.tree.root, lo, hi, out);
            }
            self.collect_range(n.children[e], lo, hi, out);
        }
    }

    // ---- draining (buffer overflow) ----

    /// Collects every message (leaf records and in-flight), resetting the
    /// tree to empty.
    fn into_msgs(mut self) -> Vec<Msg> {
        let mut out = Vec::new();
        let nodes = std::mem::take(&mut self.nodes);
        for node in nodes {
            out.extend(node.msgs);
            for chain in node.chains {
                for b in chain.bufs {
                    out.extend(b.tree.into_msgs());
                }
            }
        }
        out
    }

    // ---- accounting / invariants ----

    /// Total insert/delete operations accepted.
    pub fn operations(&self) -> u64 {
        self.n
    }

    /// Live keys delivered to leaves (in-flight messages excluded).
    pub fn live_delivered(&self) -> usize {
        self.live
    }

    /// Verifies the SWBST and chain invariants; panics on violation.
    pub fn check_invariants(&self) {
        self.check_node(self.root, None, None);
        assert_eq!(self.nodes[self.root as usize].parent, NIL);
    }

    fn check_node(&self, nid: NodeId, lo: Option<u64>, hi: Option<u64>) -> usize {
        let n = &self.nodes[nid as usize];
        if n.is_leaf() {
            assert_eq!(n.height, 1);
            for w in n.msgs.windows(2) {
                assert!(w[0].key < w[1].key, "leaf keys must be strictly increasing");
            }
            for m in &n.msgs {
                if let Some(l) = lo {
                    assert!(m.key >= l);
                }
                if let Some(h) = hi {
                    assert!(m.key < h);
                }
                if !self.is_buffer {
                    assert!(!m.del, "top-level leaves must not store tombstones");
                }
            }
            assert_eq!(n.weight, n.msgs.len());
            return n.weight;
        }
        assert_eq!(n.children.len(), n.pivots.len() + 1);
        assert_eq!(n.chains.len(), n.children.len());
        for w in n.pivots.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Chains: caps strictly increasing; all heights within soft caps
        // are not asserted (split repartition may transiently exceed).
        for ch in &n.chains {
            for w in ch.bufs.windows(2) {
                assert!(w[0].cap < w[1].cap, "chain caps must increase");
            }
        }
        let mut total = 0usize;
        for (i, &c) in n.children.iter().enumerate() {
            assert_eq!(self.nodes[c as usize].parent, nid, "parent pointer");
            assert_eq!(self.nodes[c as usize].height, n.height - 1, "uniform depth");
            let clo = if i == 0 { lo } else { Some(n.pivots[i - 1]) };
            let chi = if i == n.pivots.len() {
                hi
            } else {
                Some(n.pivots[i])
            };
            total += self.check_node(c, clo, chi);
        }
        assert_eq!(n.weight, total, "weight bookkeeping");
        assert!(
            n.weight <= self.max_weight(n.height) + self.max_weight(n.height - 1),
            "node too heavy: {} at height {}",
            n.weight,
            n.height
        );
        total
    }
}

/// The shuttle tree is memory-only (its file layout is *measured*
/// through `LayoutImage`, never served from disk), so its persisted
/// control state is just the structure tag: the facade refuses to build
/// it file-backed, and this payload is never restored.
impl cosbt_core::Persist for ShuttleTree {
    fn save_meta(&mut self) -> Vec<u8> {
        cosbt_core::MetaWriter::new(cosbt_core::persist::TAG_SHUTTLE, 1).finish()
    }
}

impl cosbt_core::Dictionary for ShuttleTree {
    fn insert(&mut self, key: u64, val: u64) {
        ShuttleTree::insert(self, key, val)
    }

    fn delete(&mut self, key: u64) {
        ShuttleTree::delete(self, key)
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        ShuttleTree::get(self, key)
    }

    fn cursor(&mut self, lo: u64, hi: u64) -> cosbt_core::Cursor<'_> {
        // In-flight messages sit in buffer trees at every level of the
        // descent, so the overlap must be merged globally before it can be
        // walked in key order; the cursor streams that merged snapshot.
        cosbt_core::Cursor::new(cosbt_core::VecCursor::new(ShuttleTree::range(self, lo, hi)))
    }

    fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        // The cursor is already a materialized snapshot; skip the default
        // method's second copy through it.
        ShuttleTree::range(self, lo, hi)
    }

    fn physical_len(&self) -> usize {
        self.n as usize
    }

    fn name(&self) -> &'static str {
        "shuttle-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_basics() {
        let mut t = ShuttleTree::new(4);
        assert_eq!(t.height(), 1);
        t.insert(5, 50);
        t.insert(3, 30);
        assert_eq!(t.get(5), Some(50));
        assert_eq!(t.get(3), Some(30));
        assert_eq!(t.get(4), None);
        t.delete(5);
        assert_eq!(t.get(5), None);
        t.check_invariants();
    }

    #[test]
    fn grows_and_stays_balanced() {
        let mut t = ShuttleTree::new(4);
        for i in 0..5000u64 {
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
            if i % 911 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert!(t.height() >= 4, "tree should have grown: h={}", t.height());
        // Weight balance implies height is O(log_c n).
        assert!(t.height() <= 12);
    }

    #[test]
    fn buffers_engage_on_deep_trees() {
        let mut t = ShuttleTree::new(4);
        for i in 0..30_000u64 {
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
        }
        assert!(
            t.has_buffers(),
            "edges at Fibonacci heights must have chains"
        );
        assert!(t.stats().drains > 0, "buffers must have overflowed");
        assert!(t.stats().msgs_shuttled > 0);
        t.check_invariants();
    }

    #[test]
    fn in_flight_messages_visible() {
        let mut t = ShuttleTree::new(4);
        // Grow the tree until the root has buffer chains, then insert and
        // immediately query.
        let mut i = 0u64;
        while !t.has_buffers() && i < 200_000 {
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15) | 1, i);
            i += 1;
        }
        assert!(t.has_buffers());
        t.insert(42, 4242); // even key: fresh
        assert_eq!(t.get(42), Some(4242), "buffered message must be found");
        t.delete(42);
        assert_eq!(t.get(42), None, "buffered tombstone must win");
    }

    #[test]
    fn matches_model_with_upserts_and_deletes() {
        let mut t = ShuttleTree::new(4);
        let mut model = std::collections::BTreeMap::new();
        let mut x: u64 = 9;
        for i in 0..40_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 10_000;
            match x % 5 {
                0 => {
                    t.delete(k);
                    model.remove(&k);
                }
                _ => {
                    t.insert(k, i);
                    model.insert(k, i);
                }
            }
            if i % 4999 == 0 {
                for probe in [0u64, 5000, 9999, k] {
                    assert_eq!(
                        t.get(probe),
                        model.get(&probe).copied(),
                        "probe {probe} @ {i}"
                    );
                }
                t.check_invariants();
            }
        }
        for probe in (0..10_000u64).step_by(11) {
            assert_eq!(t.get(probe), model.get(&probe).copied());
        }
    }

    #[test]
    fn range_merges_leaves_and_buffers() {
        let mut t = ShuttleTree::new(4);
        let mut model = std::collections::BTreeMap::new();
        for i in 0..20_000u64 {
            let k = (i * 37) % 50_000;
            t.insert(k, i);
            model.insert(k, i);
        }
        // Fresh inserts that are still buffered must appear in ranges.
        for k in 100..120u64 {
            t.insert(k * 2 + 1_000_000, k);
            model.insert(k * 2 + 1_000_000, k);
        }
        for (lo, hi) in [(0u64, 49_999u64), (1000, 2000), (999_000, 1_100_000)] {
            let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(t.range(lo, hi), want, "range {lo}..={hi}");
        }
    }

    #[test]
    fn sorted_insertions() {
        for desc in [false, true] {
            let mut t = ShuttleTree::new(4);
            let n = 20_000u64;
            for i in 0..n {
                let k = if desc { n - 1 - i } else { i };
                t.insert(k, k);
            }
            t.check_invariants();
            for k in (0..n).step_by(173) {
                assert_eq!(t.get(k), Some(k), "desc={desc} key {k}");
            }
        }
    }

    #[test]
    fn chain_heights_follow_fibonacci_factors() {
        let mut t = ShuttleTree::new(3); // smaller fanout → taller tree
        for i in 0..60_000u64 {
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
        }
        // Every edge's chain must match buffer_heights(child height).
        for n in &t.nodes {
            if n.is_leaf() {
                continue;
            }
            let want = crate::fib::buffer_heights(BufferProfile::Practical, n.height - 1);
            for ch in &n.chains {
                let got: Vec<u64> = ch.bufs.iter().map(|b| b.cap).collect();
                assert_eq!(got, want, "chain caps at height {}", n.height);
            }
        }
        t.check_invariants();
    }

    #[test]
    fn splits_preserve_buffered_messages() {
        // Hammer one key region so edge splits occur while messages are
        // in flight, then verify nothing was lost.
        let mut t = ShuttleTree::new(4);
        let mut model = std::collections::BTreeMap::new();
        let mut x: u64 = 3;
        for i in 0..50_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 512; // heavy duplication forces churn in one region
            t.insert(k, i);
            model.insert(k, i);
        }
        for k in 0..512u64 {
            assert_eq!(t.get(k), model.get(&k).copied(), "key {k}");
        }
        t.check_invariants();
    }

    #[test]
    fn delivered_vs_inflight_accounting() {
        let mut t = ShuttleTree::new(4);
        for i in 0..10_000u64 {
            t.insert(i, i);
        }
        // Everything inserted is either delivered or in flight; the two
        // reunite in range().
        let all = t.range(0, u64::MAX);
        assert_eq!(all.len(), 10_000);
        assert!(t.live_delivered() <= 10_000);
        assert_eq!(t.operations(), 10_000);
    }
}
