//! Fibonacci machinery: `F_k`, the Fibonacci factor `x(h)`, and the
//! buffer-height-index function `H(j)`.
//!
//! From the paper: `F_0 = 0, F_1 = 1, F_k = F_{k−1} + F_{k−2}`. For a
//! positive height `h`, the *Fibonacci factor* `x(h)` is `h` itself if `h`
//! is a Fibonacci number, else `x(h − f)` where `f` is the largest
//! Fibonacci number below `h` (i.e. the smallest term in `h`'s Zeckendorf
//! decomposition). A node at height `h+1` with `F_k = x(h)` carries
//! buffers of heights `F_{H(j)}` for `j = Θ(1), …, k`.

/// The `k`-th Fibonacci number (`fib(0) = 0`).
pub fn fib(k: u32) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..k {
        let c = a + b;
        a = b;
        b = c;
    }
    a
}

/// Index of the largest Fibonacci number ≤ `n` (for `n ≥ 1`), preferring
/// the larger index for the repeated value 1 (`F_2`).
pub fn fib_index_le(n: u64) -> u32 {
    assert!(n >= 1);
    let mut k = 2u32;
    while fib(k + 1) <= n {
        k += 1;
    }
    k
}

/// Largest Fibonacci number strictly below `n` (for `n ≥ 2`).
pub fn fib_below(n: u64) -> u64 {
    assert!(n >= 2);
    let mut k = 2u32;
    while fib(k + 1) < n {
        k += 1;
    }
    fib(k)
}

/// The Fibonacci factor `x(h)` of a positive height.
pub fn fib_factor(h: u64) -> u64 {
    assert!(h >= 1);
    let mut h = h;
    loop {
        let k = fib_index_le(h);
        if fib(k) == h {
            return h;
        }
        h -= fib(k);
    }
}

/// Which buffer-height-index function to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferProfile {
    /// The paper's asymptotic `H(j) = j − ⌈2·log_φ j⌉`. Buffers appear
    /// only at impractically large heights; exposed for fidelity and for
    /// the unit tests of the formula itself.
    Paper,
    /// `H(j) = j − 2`: the same geometrically growing Fibonacci buffer
    /// heights with the start constant scaled for laptop-scale trees.
    Practical,
}

/// `H(j)` under the chosen profile (may be ≤ 0, meaning "omitted").
pub fn buffer_height_index(profile: BufferProfile, j: u32) -> i64 {
    match profile {
        BufferProfile::Paper => {
            let phi = (1.0 + 5f64.sqrt()) / 2.0;
            let lg = (j as f64).ln() / phi.ln();
            j as i64 - (2.0 * lg).ceil() as i64
        }
        BufferProfile::Practical => j as i64 - 2,
    }
}

/// Buffer heights for a node whose *children* sit at height `h`: the
/// strictly increasing list `F_{H(j)}`, `j = j₀ … k` where `F_k = x(h)`,
/// with sub-height-1 buffers omitted (the paper drops constant-height
/// buffers).
pub fn buffer_heights(profile: BufferProfile, h: u64) -> Vec<u64> {
    if h < 1 {
        return Vec::new();
    }
    let x = fib_factor(h);
    let k = fib_index_le(x);
    debug_assert_eq!(fib(k), x);
    let mut out = Vec::new();
    for j in 2..=k {
        let hi = buffer_height_index(profile, j);
        if hi < 1 {
            continue;
        }
        let bh = fib(hi as u32);
        if bh >= 1 && out.last() != Some(&bh) {
            out.push(bh);
        }
    }
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fib_base_cases_and_recurrence() {
        assert_eq!(fib(0), 0);
        assert_eq!(fib(1), 1);
        assert_eq!(fib(2), 1);
        let seq: Vec<u64> = (0..12).map(fib).collect();
        assert_eq!(seq, vec![0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89]);
        for k in 2..40 {
            assert_eq!(fib(k), fib(k - 1) + fib(k - 2));
        }
    }

    #[test]
    fn fib_index_le_prefers_larger_index_for_one() {
        assert_eq!(fib_index_le(1), 2); // F_2 = 1
        assert_eq!(fib_index_le(2), 3);
        assert_eq!(fib_index_le(3), 4);
        assert_eq!(fib_index_le(4), 4);
        assert_eq!(fib_index_le(5), 5);
        assert_eq!(fib_index_le(12), 6); // F_6 = 8 ≤ 12 < 13
    }

    #[test]
    fn fib_below_is_strict() {
        assert_eq!(fib_below(2), 1);
        assert_eq!(fib_below(3), 2);
        assert_eq!(fib_below(5), 3);
        assert_eq!(fib_below(6), 5);
        assert_eq!(fib_below(8), 5);
        assert_eq!(fib_below(9), 8);
        assert_eq!(fib_below(13), 8);
        assert_eq!(fib_below(14), 13);
    }

    #[test]
    fn fibonacci_factor_definition() {
        // x(h) = h for Fibonacci h.
        for k in 2..15 {
            assert_eq!(fib_factor(fib(k)), fib(k));
        }
        // Worked examples: x(4) = x(4-3) = 1; x(6) = x(1) = 1;
        // x(7) = x(7-5) = 2; x(9) = x(1) = 1; x(10) = x(2) = 2;
        // x(11) = x(3) = 3; x(12) = x(4) = x(1) = 1.
        assert_eq!(fib_factor(4), 1);
        assert_eq!(fib_factor(6), 1);
        assert_eq!(fib_factor(7), 2);
        assert_eq!(fib_factor(9), 1);
        assert_eq!(fib_factor(10), 2);
        assert_eq!(fib_factor(11), 3);
        assert_eq!(fib_factor(12), 1);
    }

    #[test]
    fn paper_height_index_formula() {
        // H(j) = j - ceil(2 log_phi j): spot values.
        assert_eq!(buffer_height_index(BufferProfile::Paper, 14), 3);
        assert_eq!(buffer_height_index(BufferProfile::Paper, 16), 4);
        assert_eq!(buffer_height_index(BufferProfile::Paper, 18), 5);
        // Monotone nondecreasing once 2·log_φ grows by < 1 per step
        // (j ≥ 5); for tiny j the ceiling can jump by 2.
        let mut prev = i64::MIN;
        for j in 5..200 {
            let h = buffer_height_index(BufferProfile::Paper, j);
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn practical_heights_grow_like_fibonacci() {
        // Children at height 8 (= F_6): buffers F_2..F_4 = 1, 2, 3.
        assert_eq!(buffer_heights(BufferProfile::Practical, 8), vec![1, 2, 3]);
        assert_eq!(buffer_heights(BufferProfile::Practical, 5), vec![1, 2]);
        assert_eq!(buffer_heights(BufferProfile::Practical, 3), vec![1]);
        assert_eq!(
            buffer_heights(BufferProfile::Practical, 13),
            vec![1, 2, 3, 5]
        );
        // Non-Fibonacci heights use the Fibonacci factor: x(7)=2 -> F_2..F_{3-2}.
        assert_eq!(buffer_heights(BufferProfile::Practical, 7), vec![1]);
        // x(h)=1 means no buffers.
        assert_eq!(
            buffer_heights(BufferProfile::Practical, 4),
            Vec::<u64>::new()
        );
        assert_eq!(
            buffer_heights(BufferProfile::Practical, 6),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn largest_buffer_is_two_fib_indices_down() {
        // For children at height F_k, the largest buffer is F_{k-2}:
        // size ≈ height/φ², the paper's "K^{1/Θ((log log K)²)}" scaled.
        for k in 4..12u32 {
            let hs = buffer_heights(BufferProfile::Practical, fib(k));
            assert_eq!(*hs.last().unwrap(), fib(k - 2));
        }
    }
}
