//! The van Emde Boas / Fibonacci recursive layout (paper Figure 1) and
//! DAM-model measurement of searches over it.
//!
//! The rule, applied to a (sub)tree of height `h`: split at the largest
//! Fibonacci number `s < h` — *above* the halfway point, which is the
//! novelty over the classic vEB split. Lay out the top recursive subtree
//! (height `h−s`), then the top's leaves' next-larger buffers left to
//! right, then each bottom recursive subtree (height `s`) followed by its
//! own leaves' next-larger buffers. Buffers are recursively shuttle
//! trees; placing one lays out its entire tree (its preallocated chunk)
//! at that position. Smaller buffers are placed by deeper recursion
//! levels, so each buffer sits nearer its edge the smaller it is —
//! exactly the paper's "largest buffers fall out" picture.
//!
//! [`LayoutImage::assign`] writes a byte address into every node of the
//! tree and of every nested buffer tree; [`LayoutImage::assign_random`]
//! is the pointer-machine strawman (random placement) used as the
//! locality baseline; [`measure_searches`] replays search traces through
//! an [`IoSim`] to count block transfers (experiment E10).

use cosbt_dam::{CacheConfig, IoSim, IoStats};

use crate::fib::fib_below;
use crate::tree::{NodeId, ShuttleTree};

/// Result of a layout pass.
#[derive(Debug, Clone, Copy)]
pub struct LayoutImage {
    /// Total bytes of the image.
    pub total_bytes: u64,
    /// Number of placed records (nodes, including nested buffer trees).
    pub records: u64,
}

impl LayoutImage {
    /// Assigns vEB/Fibonacci layout addresses to every node (including
    /// nested buffer trees).
    pub fn assign(tree: &mut ShuttleTree) -> LayoutImage {
        let mut cursor = 0u64;
        let mut records = 0u64;
        assign_tree(tree, &mut cursor, &mut records);
        LayoutImage {
            total_bytes: cursor,
            records,
        }
    }

    /// Assigns addresses in a random order (one record after another, but
    /// shuffled): the locality strawman a pointer-based implementation
    /// would produce after heavy churn.
    pub fn assign_random(tree: &mut ShuttleTree, seed: u64) -> LayoutImage {
        // Pass 1: record sizes in deterministic traversal order.
        let mut sizes: Vec<u32> = Vec::new();
        collect_sizes(tree, &mut sizes);
        // Shuffle slot order with an xorshift generator.
        let n = sizes.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut x = seed | 1;
        for i in (1..n).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let j = (x % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        // slot_offset[traversal index] = byte offset of its shuffled slot.
        let mut order_of: Vec<usize> = vec![0; n];
        for (slot, &idx) in perm.iter().enumerate() {
            order_of[idx] = slot;
        }
        let mut slot_sizes: Vec<u64> = vec![0; n];
        for (idx, &sz) in sizes.iter().enumerate() {
            slot_sizes[order_of[idx]] = sz as u64;
        }
        let mut offsets: Vec<u64> = vec![0; n];
        let mut acc = 0u64;
        for (slot, &sz) in slot_sizes.iter().enumerate() {
            offsets[slot] = acc;
            acc += sz;
        }
        // Pass 2: assign by traversal order.
        let mut idx = 0usize;
        assign_by_order(tree, &mut idx, &offsets, &order_of);
        LayoutImage {
            total_bytes: acc,
            records: n as u64,
        }
    }
}

fn round8(b: u32) -> u64 {
    ((b as u64) + 7) & !7
}

/// Lays out one whole tree (used for the top-level tree and recursively
/// for each buffer tree chunk).
fn assign_tree(tree: &mut ShuttleTree, cursor: &mut u64, records: &mut u64) {
    let root = tree.root;
    let h = tree.height();
    let mut placed: std::collections::HashSet<(NodeId, usize, usize)> =
        std::collections::HashSet::new();
    layout_rec(tree, root, h, 0, cursor, records, &mut placed);
    // Safety net: any buffers the recursion didn't reach (chains longer
    // than the number of recursion levels) are placed at the end,
    // smallest first.
    let ids: Vec<NodeId> = ordered_nodes(tree, root);
    for nid in ids {
        let edges = tree.nodes[nid as usize].chains.len();
        for e in 0..edges {
            let nb = tree.nodes[nid as usize].chains[e].bufs.len();
            for b in 0..nb {
                if placed.insert((nid, e, b)) {
                    let t = &mut tree.nodes[nid as usize].chains[e].bufs[b].tree;
                    assign_tree(t, cursor, records);
                }
            }
        }
    }
}

/// Recursive-subtree layout: nodes of `tree` with absolute heights in
/// `(floor_h, root_h]` rooted at `root`, placing the next unplaced buffer
/// of each subtree-leaf edge at the positions the paper prescribes.
fn layout_rec(
    tree: &mut ShuttleTree,
    root: NodeId,
    root_h: u64,
    floor_h: u64,
    cursor: &mut u64,
    records: &mut u64,
    placed: &mut std::collections::HashSet<(NodeId, usize, usize)>,
) {
    let hh = root_h - floor_h;
    if hh == 1 {
        let n = &mut tree.nodes[root as usize];
        n.addr = *cursor;
        *cursor += round8(n.record_bytes());
        *records += 1;
        return;
    }
    let s = if hh == 2 { 1 } else { fib_below(hh) };
    let floor_top = floor_h + s;

    // Top recursive subtree (height hh - s).
    layout_rec(tree, root, root_h, floor_top, cursor, records, placed);

    // The top's leaves (height floor_top + 1) emit their next buffers,
    // left to right, in leaf order.
    let top_leaves = nodes_at_height(tree, root, floor_top + 1);
    for v in top_leaves {
        place_next_buffers(tree, v, cursor, records, placed);
    }

    // Bottom recursive subtrees (height s), each followed by its leaves'
    // next buffers.
    let bottoms = nodes_at_height(tree, root, floor_top);
    for r in bottoms {
        layout_rec(tree, r, floor_top, floor_h, cursor, records, placed);
        if floor_h >= 1 {
            let leaves = nodes_at_height(tree, r, floor_h + 1);
            for v in leaves {
                place_next_buffers(tree, v, cursor, records, placed);
            }
        }
    }
}

/// Places the smallest not-yet-placed buffer of each edge of `v`.
fn place_next_buffers(
    tree: &mut ShuttleTree,
    v: NodeId,
    cursor: &mut u64,
    records: &mut u64,
    placed: &mut std::collections::HashSet<(NodeId, usize, usize)>,
) {
    let edges = tree.nodes[v as usize].chains.len();
    for e in 0..edges {
        let nb = tree.nodes[v as usize].chains[e].bufs.len();
        for b in 0..nb {
            if placed.insert((v, e, b)) {
                let t = &mut tree.nodes[v as usize].chains[e].bufs[b].tree;
                assign_tree(t, cursor, records);
                break; // only the next (smallest unplaced) one
            }
        }
    }
}

/// Nodes at absolute height `h` in the subtree of `root`, left to right.
fn nodes_at_height(tree: &ShuttleTree, root: NodeId, h: u64) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(nid) = stack.pop() {
        let n = &tree.nodes[nid as usize];
        if n.height == h {
            out.push(nid);
        } else if n.height > h {
            // push children right-to-left so out is left-to-right
            for &c in n.children.iter().rev() {
                stack.push(c);
            }
        }
    }
    out
}

/// All nodes of one tree in DFS order.
fn ordered_nodes(tree: &ShuttleTree, root: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack = vec![root];
    while let Some(nid) = stack.pop() {
        out.push(nid);
        for &c in tree.nodes[nid as usize].children.iter().rev() {
            stack.push(c);
        }
    }
    out
}

fn collect_sizes(tree: &ShuttleTree, out: &mut Vec<u32>) {
    for n in &tree.nodes {
        out.push(round8(n.record_bytes()) as u32);
    }
    for n in &tree.nodes {
        for ch in &n.chains {
            for b in &ch.bufs {
                collect_sizes(&b.tree, out);
            }
        }
    }
}

fn assign_by_order(tree: &mut ShuttleTree, idx: &mut usize, offsets: &[u64], order_of: &[usize]) {
    for n in tree.nodes.iter_mut() {
        n.addr = offsets[order_of[*idx]];
        *idx += 1;
    }
    let count = tree.nodes.len();
    for i in 0..count {
        let edges = tree.nodes[i].chains.len();
        for e in 0..edges {
            let nb = tree.nodes[i].chains[e].bufs.len();
            for b in 0..nb {
                assign_by_order(
                    &mut tree.nodes[i].chains[e].bufs[b].tree,
                    idx,
                    offsets,
                    order_of,
                );
            }
        }
    }
}

/// Records the `(address, bytes)` of every node touched by a search for
/// `key`, including descents into buffer trees, and returns the lookup
/// result (mirrors `ShuttleTree::get`).
pub fn trace_search(tree: &ShuttleTree, key: u64, out: &mut Vec<(u64, u32)>) -> Option<u64> {
    match trace_msg(tree, key, out) {
        Some((val, del)) => (!del).then_some(val),
        None => None,
    }
}

fn trace_msg(tree: &ShuttleTree, key: u64, out: &mut Vec<(u64, u32)>) -> Option<(u64, bool)> {
    let mut nid = tree.root;
    loop {
        let n = &tree.nodes[nid as usize];
        out.push((n.addr, n.record_bytes()));
        if n.is_leaf() {
            return n
                .msgs
                .binary_search_by_key(&key, |m| m.key)
                .ok()
                .map(|i| (n.msgs[i].val, n.msgs[i].del));
        }
        let e = n.pivots.partition_point(|&p| p <= key);
        for b in &n.chains[e].bufs {
            if let Some(hit) = trace_msg(&b.tree, key, out) {
                return Some(hit);
            }
        }
        nid = n.children[e];
    }
}

/// Replays search traces for `keys` through a DAM simulator over the
/// current layout addresses; returns the accumulated transfer counts.
pub fn measure_searches(tree: &ShuttleTree, keys: &[u64], cfg: CacheConfig) -> IoStats {
    let mut sim = IoSim::new(cfg);
    for &k in keys {
        let mut tr = Vec::new();
        trace_search(tree, k, &mut tr);
        for (addr, len) in tr {
            sim.touch(addr, len as usize, false);
        }
    }
    sim.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: u64) -> ShuttleTree {
        let mut t = ShuttleTree::new(4);
        for i in 0..n {
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15) | 1, i);
        }
        t
    }

    /// Collects (addr, len) of every record in the image.
    fn all_records(tree: &ShuttleTree, out: &mut Vec<(u64, u64)>) {
        for n in &tree.nodes {
            out.push((n.addr, super::round8(n.record_bytes())));
        }
        for n in &tree.nodes {
            for ch in &n.chains {
                for b in &ch.bufs {
                    all_records(&b.tree, out);
                }
            }
        }
    }

    #[test]
    fn assign_covers_all_records_disjointly() {
        let mut t = build(20_000);
        let img = LayoutImage::assign(&mut t);
        let mut recs = Vec::new();
        all_records(&t, &mut recs);
        assert_eq!(recs.len() as u64, img.records);
        recs.sort_unstable();
        for w in recs.windows(2) {
            assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "overlapping records: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
        let (last_addr, last_len) = *recs.last().unwrap();
        assert!(last_addr + last_len <= img.total_bytes);
    }

    #[test]
    fn random_assign_also_disjoint() {
        let mut t = build(8_000);
        let img = LayoutImage::assign_random(&mut t, 42);
        let mut recs = Vec::new();
        all_records(&t, &mut recs);
        assert_eq!(recs.len() as u64, img.records);
        recs.sort_unstable();
        for w in recs.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap in random layout");
        }
    }

    #[test]
    fn trace_search_agrees_with_get() {
        let mut t = build(15_000);
        LayoutImage::assign(&mut t);
        for i in (0..15_000u64).step_by(61) {
            let k = i.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let mut tr = Vec::new();
            let traced = trace_search(&t, k, &mut tr);
            assert_eq!(traced, t.get(k), "key {k}");
            assert!(!tr.is_empty());
            let missing = k.wrapping_add(1); // even keys absent
            assert_eq!(trace_search(&t, missing, &mut Vec::new()), None);
        }
    }

    #[test]
    fn veb_layout_beats_random_layout_on_transfers() {
        let mut t = build(60_000);
        let keys: Vec<u64> = (0..800u64)
            .map(|i| (i * 75).wrapping_mul(0x9E3779B97F4A7C15) | 1)
            .collect();
        let cfg = CacheConfig::new(4096, 16);

        LayoutImage::assign(&mut t);
        let veb = measure_searches(&t, &keys, cfg);

        LayoutImage::assign_random(&mut t, 7);
        let rnd = measure_searches(&t, &keys, cfg);

        assert!(
            veb.fetches < rnd.fetches,
            "vEB layout should reduce transfers: {} vs {}",
            veb.fetches,
            rnd.fetches
        );
    }

    #[test]
    fn search_transfers_logarithmic_in_b() {
        // With 4 KiB blocks, the vEB-laid-out search should touch far
        // fewer blocks than its node count (log_B N, not log_2 N).
        let mut t = build(50_000);
        LayoutImage::assign(&mut t);
        let keys: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) | 1)
            .collect();
        let stats = measure_searches(&t, &keys, CacheConfig::new(4096, 4));
        let per = stats.fetches as f64 / keys.len() as f64;
        assert!(per < 16.0, "fetches/search = {per}");
    }
}
