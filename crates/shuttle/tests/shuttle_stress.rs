//! Stress and property tests of the shuttle tree beyond the unit suite:
//! buffer-profile variants, fanout sweeps, heavy churn in narrow key
//! ranges (maximum split pressure with in-flight messages), and layout
//! idempotence.

use cosbt_shuttle::fib::BufferProfile;
use cosbt_shuttle::layout::trace_search;
use cosbt_shuttle::{LayoutImage, ShuttleTree};
use cosbt_testkit::{check_cases, Rng};

#[test]
fn fanout_sweep_model_equivalence() {
    for c in [2usize, 3, 4, 8] {
        let mut t = ShuttleTree::new(c);
        let mut model = std::collections::BTreeMap::new();
        let mut x = c as u64;
        for i in 0..15_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 6_000;
            if x.is_multiple_of(6) {
                t.delete(k);
                model.remove(&k);
            } else {
                t.insert(k, i);
                model.insert(k, i);
            }
        }
        for probe in (0..6_000u64).step_by(13) {
            assert_eq!(
                t.get(probe),
                model.get(&probe).copied(),
                "c={c} key {probe}"
            );
        }
        t.check_invariants();
    }
}

#[test]
fn paper_profile_runs_bufferless_at_small_scale() {
    // The faithful H(j) only spawns buffers at astronomical heights, so a
    // paper-profile tree at laptop scale is a plain SWBST — and must
    // still be a correct dictionary.
    let mut t = ShuttleTree::with_profile(4, BufferProfile::Paper);
    for i in 0..20_000u64 {
        t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
    }
    assert!(
        !t.has_buffers(),
        "paper profile has no buffers at this height"
    );
    assert_eq!(t.stats().drains, 0);
    for i in (0..20_000u64).step_by(173) {
        assert_eq!(t.get(i.wrapping_mul(0x9E3779B97F4A7C15)), Some(i));
    }
    t.check_invariants();
}

#[test]
fn narrow_range_churn_splits_edges_with_inflight_messages() {
    // All traffic lands in one subtree: edges there split constantly
    // while their chains hold messages; nothing may be lost or reordered.
    let mut t = ShuttleTree::new(4);
    let mut model = std::collections::BTreeMap::new();
    // Pre-grow a wide tree.
    for i in 0..50_000u64 {
        t.insert(i * 1000, i);
        model.insert(i * 1000, i);
    }
    // Hammer a narrow band between two existing keys.
    let mut x = 5u64;
    for i in 0..50_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = 25_000_000 + (x % 999);
        t.insert(k, i);
        model.insert(k, i);
    }
    for (&k, &v) in model.iter().step_by(211) {
        assert_eq!(t.get(k), Some(v), "key {k}");
    }
    t.check_invariants();
    let band: Vec<(u64, u64)> = model
        .range(25_000_000..=25_001_000)
        .map(|(&k, &v)| (k, v))
        .collect();
    assert_eq!(t.range(25_000_000, 25_001_000), band);
}

#[test]
fn layout_assign_is_idempotent_and_traces_stable() {
    let mut t = ShuttleTree::new(4);
    for i in 0..30_000u64 {
        t.insert(i.wrapping_mul(0x9E3779B97F4A7C15) | 1, i);
    }
    let img1 = LayoutImage::assign(&mut t);
    let mut tr1 = Vec::new();
    let r1 = trace_search(&t, 12345 | 1, &mut tr1);
    let img2 = LayoutImage::assign(&mut t);
    let mut tr2 = Vec::new();
    let r2 = trace_search(&t, 12345 | 1, &mut tr2);
    assert_eq!(img1.total_bytes, img2.total_bytes);
    assert_eq!(img1.records, img2.records);
    assert_eq!(r1, r2);
    assert_eq!(tr1, tr2, "same tree, same layout, same trace");
}

#[test]
fn shuttle_random_ops_match_model() {
    check_cases("shuttle_random_ops_match_model", 32, |rng: &mut Rng| {
        let len = 1 + rng.index(599);
        let mut t = ShuttleTree::new(3);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..len {
            let (op, k, v) = (rng.below(10), rng.below(128), rng.next_u64());
            match op {
                0..=6 => {
                    t.insert(k, v);
                    model.insert(k, v);
                }
                7..=8 => {
                    t.delete(k);
                    model.remove(&k);
                }
                _ => {
                    assert_eq!(t.get(k), model.get(&k).copied());
                }
            }
        }
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(t.range(0, u64::MAX), want);
        t.check_invariants();
    });
}

#[test]
fn weights_track_live_count() {
    check_cases("weights_track_live_count", 32, |rng: &mut Rng| {
        let n = rng.range(1, 3000);
        let mut t = ShuttleTree::new(4);
        for i in 0..n {
            t.insert(i, i);
        }
        // After enough follow-on traffic everything reaches the leaves;
        // in general delivered ≤ total, and range() reunites both.
        assert!(t.delivered_len() as u64 <= n);
        assert_eq!(t.range(0, u64::MAX).len() as u64, n);
        t.check_invariants();
    });
}
