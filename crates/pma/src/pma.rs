//! The packed-memory array proper.

use cosbt_dam::{Mem, PlainMem};

use crate::density::DensityProfile;

/// A PMA slot: occupied or gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot<T> {
    /// A gap.
    Empty,
    /// An occupied slot.
    Full(T),
}

impl<T> Slot<T> {
    /// The occupied value, if any.
    pub fn full(self) -> Option<T> {
        match self {
            Slot::Empty => None,
            Slot::Full(v) => Some(v),
        }
    }
}

/// Update counters: the quantities the PMA analysis bounds.
#[derive(Debug, Default, Clone, Copy)]
pub struct PmaStats {
    /// Elements written during segment shifts, rebalances, grows, shrinks.
    pub moved: u64,
    /// Number of window rebalances (including leaf-segment rewrites).
    pub rebalances: u64,
    /// Array doublings.
    pub grows: u64,
    /// Array halvings.
    pub shrinks: u64,
    /// Largest window (in slots) ever rebalanced.
    pub max_window: usize,
}

/// Minimum capacity (slots); also the shrink floor.
const MIN_CAP: usize = 16;

/// A packed-memory array of `Copy + Ord` elements over any [`Mem`] backend.
///
/// Duplicates are allowed; they are stored adjacently.
#[derive(Debug)]
pub struct Pma<T: Copy + Ord, M: Mem<Slot<T>>> {
    mem: M,
    n: usize,
    seg_size: usize,
    num_segs: usize,
    profile: DensityProfile,
    stats: PmaStats,
    scratch: Vec<T>,
}

impl<T: Copy + Ord> Pma<T, PlainMem<Slot<T>>> {
    /// A PMA over plain heap memory with default thresholds.
    pub fn new_plain() -> Self {
        Self::new(PlainMem::new(), DensityProfile::default())
    }
}

impl<T: Copy + Ord, M: Mem<Slot<T>>> Pma<T, M> {
    /// Creates a PMA over `mem` (which is cleared to the minimum capacity).
    pub fn new(mut mem: M, profile: DensityProfile) -> Self {
        profile.validate();
        mem.resize(MIN_CAP, Slot::Empty);
        let (seg_size, num_segs) = Self::layout_for(MIN_CAP);
        Pma {
            mem,
            n: 0,
            seg_size,
            num_segs,
            profile,
            stats: PmaStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Segment layout for a capacity: `seg_size` is the smallest power of
    /// two ≥ log2(cap); both factors are powers of two.
    fn layout_for(cap: usize) -> (usize, usize) {
        debug_assert!(cap.is_power_of_two());
        let lg = cap.trailing_zeros() as usize;
        let seg = lg.max(2).next_power_of_two().min(cap);
        (seg, cap / seg)
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the PMA is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.mem.len()
    }

    /// Current density `n / capacity`.
    pub fn density(&self) -> f64 {
        self.n as f64 / self.capacity() as f64
    }

    /// Update counters.
    pub fn stats(&self) -> PmaStats {
        self.stats
    }

    /// Borrow the backing store (for simulator statistics).
    pub fn mem(&self) -> &M {
        &self.mem
    }

    /// Height of the window tree (leaf depth; 0 when one segment).
    fn height(&self) -> u32 {
        self.num_segs.trailing_zeros()
    }

    /// Rightmost occupied slot with value ≤ `key`, with its value.
    fn pred_slot(&self, key: &T) -> Option<(usize, T)> {
        let cap = self.capacity();
        let mut lo = 0usize;
        let mut hi = cap;
        let mut cand: Option<(usize, T)> = None;
        while lo < hi {
            let mid = (lo + hi) / 2;
            // nearest occupied slot at or left of mid, not before lo
            let mut p = mid;
            let found = loop {
                if let Slot::Full(v) = self.mem.get(p) {
                    break Some((p, v));
                }
                if p == lo {
                    break None;
                }
                p -= 1;
            };
            match found {
                None => lo = mid + 1,
                Some((p, v)) => {
                    if v <= *key {
                        cand = Some((p, v));
                        lo = mid + 1;
                    } else {
                        hi = p;
                    }
                }
            }
        }
        cand
    }

    /// Whether an element equal to `key` is present.
    pub fn contains(&self, key: &T) -> bool {
        matches!(self.pred_slot(key), Some((_, v)) if v == *key)
    }

    /// The largest element ≤ `key`.
    pub fn predecessor(&self, key: &T) -> Option<T> {
        self.pred_slot(key).map(|(_, v)| v)
    }

    /// The smallest element > `key`.
    pub fn successor(&self, key: &T) -> Option<T> {
        let start = match self.pred_slot(key) {
            Some((p, _)) => p + 1,
            None => 0,
        };
        for i in start..self.capacity() {
            if let Slot::Full(v) = self.mem.get(i) {
                return Some(v);
            }
        }
        None
    }

    /// Occupied count in slots `[lo, hi)`.
    fn count_range(&self, lo: usize, hi: usize) -> usize {
        (lo..hi)
            .filter(|&i| matches!(self.mem.get(i), Slot::Full(_)))
            .count()
    }

    /// Gathers elements of `[lo, hi)` into `self.scratch`, splicing `extra`
    /// (if provided) in front of the first element at slot ≥ `ins_slot`.
    fn gather(&mut self, lo: usize, hi: usize, extra: Option<(T, usize)>) {
        self.scratch.clear();
        let mut pending = extra;
        for i in lo..hi {
            if let Some((x, ins)) = pending {
                if i >= ins {
                    self.scratch.push(x);
                    pending = None;
                }
            }
            if let Slot::Full(v) = self.mem.get(i) {
                self.scratch.push(v);
            }
        }
        if let Some((x, _)) = pending {
            self.scratch.push(x);
        }
    }

    /// Evenly redistributes `self.scratch` over slots `[lo, hi)`.
    fn spread(&mut self, lo: usize, hi: usize) {
        let w = hi - lo;
        let k = self.scratch.len();
        debug_assert!(k <= w);
        let mut next = 0usize; // index into scratch
        for i in 0..w {
            // Element j goes to slot floor(j * w / k); slot i holds element
            // j iff floor(j*w/k) == i.
            let slot_val = if next < k && (next * w) / k == i {
                let v = self.scratch[next];
                next += 1;
                Slot::Full(v)
            } else {
                Slot::Empty
            };
            self.mem.set(lo + i, slot_val);
        }
        debug_assert_eq!(next, k);
        self.stats.moved += k as u64;
        self.stats.rebalances += 1;
        self.stats.max_window = self.stats.max_window.max(w);
    }

    /// Grows (doubles) or shrinks (halves) to `new_cap`, redistributing.
    fn resize_to(&mut self, new_cap: usize, extra: Option<(T, usize)>) {
        let cap = self.capacity();
        self.gather(0, cap, extra);
        if new_cap > cap {
            self.mem.resize(new_cap, Slot::Empty);
            self.stats.grows += 1;
        } else {
            self.stats.shrinks += 1;
        }
        let (seg, nsegs) = Self::layout_for(new_cap);
        self.seg_size = seg;
        self.num_segs = nsegs;
        if new_cap < cap {
            // spread within the prefix first, then shrink the storage
            self.spread(0, new_cap);
            self.mem.resize(new_cap, Slot::Empty);
        } else {
            self.spread(0, new_cap);
        }
    }

    /// Inserts `x` (duplicates allowed). Amortized O(log² N) element moves.
    pub fn insert(&mut self, x: T) {
        let cap = self.capacity();
        if (self.n + 1) as f64 > self.profile.tau_root * cap as f64 {
            self.resize_to(cap * 2, Some((x, self.insert_slot(&x))));
            self.n += 1;
            return;
        }
        let ins = self.insert_slot(&x);
        let seg = (ins.min(cap - 1)) / self.seg_size;

        // Walk up from the leaf window until one is within threshold.
        let height = self.height();
        let mut depth = height;
        let mut lo_seg = seg;
        let mut width = 1usize;
        loop {
            let lo = lo_seg * self.seg_size;
            let hi = (lo_seg + width) * self.seg_size;
            let count = self.count_range(lo, hi);
            let tau = self.profile.tau(depth, height);
            if ((count + 1) as f64) <= tau * (hi - lo) as f64 {
                self.gather(lo, hi, Some((x, ins)));
                self.spread(lo, hi);
                self.n += 1;
                return;
            }
            if depth == 0 {
                // Root over threshold despite the global check: grow.
                self.resize_to(cap * 2, Some((x, ins)));
                self.n += 1;
                return;
            }
            depth -= 1;
            width *= 2;
            lo_seg = (lo_seg / width) * width;
        }
    }

    /// Conceptual insertion slot for `x`: one past its predecessor.
    fn insert_slot(&self, x: &T) -> usize {
        match self.pred_slot(x) {
            Some((p, _)) => p + 1,
            None => 0,
        }
    }

    /// Removes one element equal to `*x`. Returns whether one was removed.
    pub fn remove(&mut self, x: &T) -> bool {
        let (p, v) = match self.pred_slot(x) {
            Some(pv) => pv,
            None => return false,
        };
        if v != *x {
            return false;
        }
        self.mem.set(p, Slot::Empty);
        self.n -= 1;

        let cap = self.capacity();
        if cap > MIN_CAP && (self.n as f64) < self.profile.rho_root * cap as f64 {
            self.resize_to(cap / 2, None);
            return true;
        }

        // Walk up until a window is within its lower threshold, rebalance it.
        let height = self.height();
        let mut depth = height;
        let seg = p / self.seg_size;
        let mut lo_seg = seg;
        let mut width = 1usize;
        loop {
            let lo = lo_seg * self.seg_size;
            let hi = (lo_seg + width) * self.seg_size;
            let count = self.count_range(lo, hi);
            let rho = self.profile.rho(depth, height);
            if count as f64 >= rho * (hi - lo) as f64 {
                if depth != height {
                    // Only rebalance if we had to walk up.
                    self.gather(lo, hi, None);
                    self.spread(lo, hi);
                }
                return true;
            }
            if depth == 0 {
                return true; // cap == MIN_CAP; nothing to do
            }
            depth -= 1;
            width *= 2;
            lo_seg = (lo_seg / width) * width;
        }
    }

    /// All elements in order.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.capacity() {
            if let Slot::Full(v) = self.mem.get(i) {
                out.push(v);
            }
        }
        out
    }

    /// Elements in `[lo, hi]`, in order.
    pub fn range_inclusive(&self, lo: &T, hi: &T) -> Vec<T> {
        let start = match self.pred_slot(lo) {
            Some((p, v)) if v == *lo => {
                // back up over duplicates of lo
                let mut q = p;
                while q > 0 {
                    match self.mem.get(q - 1) {
                        Slot::Full(w) if w == *lo => q -= 1,
                        Slot::Full(_) => break,
                        Slot::Empty => {
                            // keep scanning left past gaps to find dup run
                            let mut r = q - 1;
                            let mut hit = None;
                            while r > 0 {
                                if let Slot::Full(w) = self.mem.get(r - 1) {
                                    hit = Some((r - 1, w));
                                    break;
                                }
                                r -= 1;
                            }
                            match hit {
                                Some((rp, w)) if w == *lo => q = rp,
                                _ => break,
                            }
                        }
                    }
                }
                q
            }
            Some((p, _)) => p + 1,
            None => 0,
        };
        let mut out = Vec::new();
        for i in start..self.capacity() {
            if let Slot::Full(v) = self.mem.get(i) {
                if v > *hi {
                    break;
                }
                if v >= *lo {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Verifies structural invariants (for tests): element count, global
    /// density bounds, and sortedness.
    pub fn check_invariants(&self) {
        let cap = self.capacity();
        assert_eq!(self.seg_size * self.num_segs, cap);
        assert!(self.seg_size.is_power_of_two() && self.num_segs.is_power_of_two());
        let elems = self.to_vec();
        assert_eq!(elems.len(), self.n, "count mismatch");
        for w in elems.windows(2) {
            assert!(w[0] <= w[1], "not sorted");
        }
        assert!(
            self.n as f64 <= self.profile.tau_root * cap as f64 + 1.0,
            "density above root threshold: {} / {}",
            self.n,
            cap
        );
        if cap > MIN_CAP {
            assert!(
                self.n as f64 >= self.profile.rho_root * cap as f64 - 1.0,
                "density below root threshold: {} / {}",
                self.n,
                cap
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_factors_are_powers_of_two() {
        for lg in 4..20 {
            let cap = 1usize << lg;
            let (seg, nsegs) = Pma::<u64, PlainMem<Slot<u64>>>::layout_for(cap);
            assert_eq!(seg * nsegs, cap);
            assert!(seg.is_power_of_two() && nsegs.is_power_of_two());
            assert!(seg >= lg.min(cap), "segment should be at least log cap");
        }
    }

    #[test]
    fn insert_ascending_stays_sorted() {
        let mut pma = Pma::new_plain();
        for i in 0..1000u64 {
            pma.insert(i);
            if i % 97 == 0 {
                pma.check_invariants();
            }
        }
        assert_eq!(pma.to_vec(), (0..1000).collect::<Vec<_>>());
        pma.check_invariants();
    }

    #[test]
    fn insert_descending_stays_sorted() {
        let mut pma = Pma::new_plain();
        for i in (0..1000u64).rev() {
            pma.insert(i);
        }
        assert_eq!(pma.to_vec(), (0..1000).collect::<Vec<_>>());
        pma.check_invariants();
    }

    #[test]
    fn insert_random_matches_sorted_model() {
        let mut pma = Pma::new_plain();
        let mut model = Vec::new();
        let mut x: u64 = 88172645463325252;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 500; // force duplicates
            pma.insert(v);
            model.push(v);
        }
        model.sort_unstable();
        assert_eq!(pma.to_vec(), model);
        pma.check_invariants();
    }

    #[test]
    fn predecessor_successor_contains() {
        let mut pma = Pma::new_plain();
        for i in (0..100u64).map(|i| i * 10) {
            pma.insert(i);
        }
        assert_eq!(pma.predecessor(&55), Some(50));
        assert_eq!(pma.successor(&55), Some(60));
        assert_eq!(pma.predecessor(&0), Some(0));
        assert_eq!(pma.predecessor(&u64::MAX), Some(990));
        assert_eq!(pma.successor(&990), None);
        assert!(pma.contains(&500));
        assert!(!pma.contains(&501));
        assert_eq!(pma.predecessor(&(u64::MAX)), Some(990));
    }

    #[test]
    fn empty_pma_queries() {
        let pma: Pma<u64, _> = Pma::new_plain();
        assert_eq!(pma.predecessor(&5), None);
        assert_eq!(pma.successor(&5), None);
        assert!(!pma.contains(&5));
        assert!(pma.is_empty());
        pma.check_invariants();
    }

    #[test]
    fn remove_and_shrink() {
        let mut pma = Pma::new_plain();
        for i in 0..1000u64 {
            pma.insert(i);
        }
        let cap_full = pma.capacity();
        for i in 0..990u64 {
            assert!(pma.remove(&i), "remove {i}");
            if i % 111 == 0 {
                pma.check_invariants();
            }
        }
        assert!(!pma.remove(&5), "already removed");
        assert_eq!(pma.len(), 10);
        assert!(pma.capacity() < cap_full, "should have shrunk");
        assert_eq!(pma.to_vec(), (990..1000).collect::<Vec<_>>());
        pma.check_invariants();
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut pma = Pma::new_plain();
        pma.insert(10u64);
        assert!(!pma.remove(&9));
        assert!(!pma.remove(&11));
        assert!(pma.remove(&10));
        assert!(!pma.remove(&10));
    }

    #[test]
    fn duplicates_supported() {
        let mut pma = Pma::new_plain();
        for _ in 0..50 {
            pma.insert(7u64);
        }
        pma.insert(6);
        pma.insert(8);
        assert_eq!(pma.len(), 52);
        let v = pma.to_vec();
        assert_eq!(v[0], 6);
        assert_eq!(v[51], 8);
        assert!(v[1..51].iter().all(|&x| x == 7));
        assert!(pma.remove(&7));
        assert_eq!(pma.len(), 51);
        pma.check_invariants();
    }

    #[test]
    fn range_inclusive_with_duplicates_and_gaps() {
        let mut pma = Pma::new_plain();
        for v in [5u64, 5, 5, 10, 15, 15, 20] {
            pma.insert(v);
        }
        assert_eq!(pma.range_inclusive(&5, &15), vec![5, 5, 5, 10, 15, 15]);
        assert_eq!(pma.range_inclusive(&6, &9), Vec::<u64>::new());
        assert_eq!(pma.range_inclusive(&0, &100), pma.to_vec());
    }

    #[test]
    fn amortized_moves_are_polylog() {
        // Not a strict bound check (that's in the bench), just a smoke test
        // that moves per insert stay far from O(n).
        let mut pma = Pma::new_plain();
        let n = 20_000u64;
        for i in 0..n {
            pma.insert(i * 2654435761 % 1_000_003);
        }
        let per_insert = pma.stats().moved as f64 / n as f64;
        let lg = (n as f64).log2();
        assert!(
            per_insert < 4.0 * lg * lg,
            "moves/insert {per_insert} should be O(log^2 n) = {}",
            lg * lg
        );
    }

    #[test]
    fn works_over_sim_mem() {
        use cosbt_dam::{new_shared_sim, CacheConfig, SimMem};
        let sim = new_shared_sim(CacheConfig::new(256, 64));
        let mem: SimMem<Slot<u64>> = SimMem::new(sim.clone());
        let mut pma = Pma::new(mem, DensityProfile::default());
        for i in 0..500u64 {
            pma.insert(i);
        }
        assert_eq!(pma.len(), 500);
        assert!(sim.borrow().stats().transfers() > 0);
        pma.check_invariants();
    }
}
