//! Density thresholds for PMA windows.
//!
//! Windows form a conceptual binary tree over segments: depth 0 is the whole
//! array, the deepest level is a single segment. Upper thresholds *loosen*
//! toward the leaves (a segment may fill up completely; the root may not
//! exceed `tau_root`), and lower thresholds *tighten* toward the root, which
//! is what makes the amortized rebalancing argument work: rebalancing a
//! window leaves all its sub-windows comfortably within their own
//! thresholds.

/// Density thresholds, linearly interpolated over window depth.
#[derive(Debug, Clone, Copy)]
pub struct DensityProfile {
    /// Maximum density of the root window (whole array). Exceeding it grows
    /// the array. Classic value: `0.5`.
    pub tau_root: f64,
    /// Maximum density of a leaf window (single segment). Classic: `1.0`.
    pub tau_leaf: f64,
    /// Minimum density of the root window. Falling below it shrinks the
    /// array. Classic value: `0.125`.
    pub rho_root: f64,
    /// Minimum density of a leaf window. Must be below `rho_root`.
    pub rho_leaf: f64,
}

impl Default for DensityProfile {
    fn default() -> Self {
        DensityProfile {
            tau_root: 0.5,
            tau_leaf: 1.0,
            rho_root: 0.125,
            rho_leaf: 0.05,
        }
    }
}

impl DensityProfile {
    /// Upper density threshold at `depth` (0 = root) of a tree with
    /// `height` levels below the root (`height` = leaf depth, ≥ 0).
    pub fn tau(&self, depth: u32, height: u32) -> f64 {
        if height == 0 {
            return self.tau_leaf;
        }
        let frac = depth as f64 / height as f64;
        self.tau_root + (self.tau_leaf - self.tau_root) * frac
    }

    /// Lower density threshold at `depth` (0 = root).
    pub fn rho(&self, depth: u32, height: u32) -> f64 {
        if height == 0 {
            return self.rho_leaf;
        }
        let frac = depth as f64 / height as f64;
        self.rho_root + (self.rho_leaf - self.rho_root) * frac
    }

    /// Validates the classic ordering constraints.
    pub fn validate(&self) {
        assert!(
            self.rho_leaf < self.rho_root,
            "rho must tighten toward root"
        );
        assert!(
            self.tau_root < self.tau_leaf,
            "tau must loosen toward leaves"
        );
        assert!(
            self.rho_root < self.tau_root,
            "root window needs slack between rho and tau"
        );
        assert!(self.tau_leaf <= 1.0 && self.rho_leaf >= 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_valid() {
        DensityProfile::default().validate();
    }

    #[test]
    fn tau_interpolates_root_to_leaf() {
        let p = DensityProfile::default();
        assert!((p.tau(0, 4) - 0.5).abs() < 1e-12);
        assert!((p.tau(4, 4) - 1.0).abs() < 1e-12);
        assert!((p.tau(2, 4) - 0.75).abs() < 1e-12);
        // monotone in depth
        for d in 0..4 {
            assert!(p.tau(d, 4) < p.tau(d + 1, 4));
        }
    }

    #[test]
    fn rho_interpolates_and_stays_below_tau() {
        let p = DensityProfile::default();
        assert!((p.rho(0, 4) - 0.125).abs() < 1e-12);
        assert!((p.rho(4, 4) - 0.05).abs() < 1e-12);
        for d in 0..=4 {
            assert!(p.rho(d, 4) < p.tau(d, 4));
        }
    }

    #[test]
    fn height_zero_uses_leaf_values() {
        let p = DensityProfile::default();
        assert_eq!(p.tau(0, 0), p.tau_leaf);
        assert_eq!(p.rho(0, 0), p.rho_leaf);
    }
}
