//! Packed-memory array (PMA).
//!
//! A PMA keeps `N` elements in sorted order in an array of size `Θ(N)` by
//! leaving gaps between elements. Insertions and deletions rebalance (spread
//! out evenly) the smallest enclosing *window* whose density is within
//! threshold, which costs amortized `O(log² N)` element moves — i.e.
//! `O((log² N)/B)` block transfers — per update.
//!
//! The shuttle tree of the paper (Section 2, "Making space for insertions")
//! embeds its van Emde Boas layout in a PMA; the cache-oblivious B-tree \[6\]
//! does the same. This crate implements the PMA as an independent,
//! fully-tested substrate, generic over the storage backends of
//! [`cosbt_dam`] so element moves can be counted either logically
//! ([`PmaStats`]) or as simulated block transfers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod density;
pub mod pma;

pub use density::DensityProfile;
pub use pma::{Pma, PmaStats, Slot};
