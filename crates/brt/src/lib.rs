//! Buffered repository tree (BRT) — the cache-aware write-optimized
//! dictionary of Buchsbaum et al. \[12\], whose bounds the COLA matches
//! cache-obliviously: searches `O(log N)` transfers, insertions amortized
//! `O((log N)/B)` transfers.
//!
//! Structure: a (2,4)-tree in which every internal node carries a buffer
//! of `Θ(B)` pending messages (inserts and deletes). New messages join the
//! root's buffer; when a buffer fills, its messages are partitioned by the
//! node's pivots and pushed into the children (flushing recursively), and
//! at a leaf they are applied to the sorted leaf records. Searches walk
//! one root-to-leaf path, scanning each buffer on the way — `O(1)` blocks
//! per level, hence `O(log N)` transfers.
//!
//! Unlike the COLA the BRT is *cache-aware*: node and buffer sizes are
//! chosen from the block size. One node occupies exactly one page.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cosbt_core::entry::Cell;
use cosbt_core::{Cursor, Dictionary, UpdateBatch, VecCursor};
use cosbt_dam::{PageStore, VecPages, DEFAULT_PAGE_SIZE};

/// Page byte layout.
///
/// ```text
/// header (96 B):
///   [0]      node type (0 = leaf, 1 = branch)
///   [2..4]   record/message count (u16)
///   [4..6]   pivot count (u16, branch)
///   [8..40]  up to 8 × child page id (u32, branch)
///   [40..96] up to 7 × pivot key (u64, branch)
/// leaf payload:   count × (key u64, val u64), sorted
/// branch payload: count × Cell (32 B), arrival order (oldest first)
/// ```
///
/// A branch normally has ≤ 4 children; during a single flush each child
/// may split once, so the header leaves room for the transient 8 before
/// the node itself splits.
mod layout {
    pub const HDR: usize = 96;
    pub const LEAF: u8 = 0;
    pub const BRANCH: u8 = 1;
    pub const MAX_KIDS: usize = 4;

    pub fn leaf_cap(ps: usize) -> usize {
        (ps - HDR) / 16
    }

    pub fn buf_cap(ps: usize) -> usize {
        (ps - HDR) / 32
    }
}

use layout::*;

#[inline]
fn ru64(pg: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(pg[off..off + 8].try_into().unwrap())
}

#[inline]
fn wu64(pg: &mut [u8], off: usize, v: u64) {
    pg[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn ru32(pg: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(pg[off..off + 4].try_into().unwrap())
}

#[inline]
fn wu32(pg: &mut [u8], off: usize, v: u32) {
    pg[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

fn get_count(pg: &[u8]) -> usize {
    u16::from_le_bytes(pg[2..4].try_into().unwrap()) as usize
}

fn set_count(pg: &mut [u8], n: usize) {
    pg[2..4].copy_from_slice(&(n as u16).to_le_bytes());
}

fn get_pivots(pg: &[u8]) -> Vec<u64> {
    let p = u16::from_le_bytes(pg[4..6].try_into().unwrap()) as usize;
    (0..p).map(|i| ru64(pg, 40 + 8 * i)).collect()
}

fn set_pivots(pg: &mut [u8], pivots: &[u64]) {
    pg[4..6].copy_from_slice(&(pivots.len() as u16).to_le_bytes());
    for (i, &k) in pivots.iter().enumerate() {
        wu64(pg, 40 + 8 * i, k);
    }
}

fn get_children(pg: &[u8]) -> Vec<u32> {
    let p = u16::from_le_bytes(pg[4..6].try_into().unwrap()) as usize;
    (0..=p).map(|i| ru32(pg, 8 + 4 * i)).collect()
}

fn set_children(pg: &mut [u8], kids: &[u32]) {
    for (i, &c) in kids.iter().enumerate() {
        wu32(pg, 8 + 4 * i, c);
    }
}

fn read_cell(pg: &[u8], i: usize) -> Cell {
    use cosbt_dam::Pod;
    Cell::read_from(&pg[HDR + 32 * i..HDR + 32 * i + 32])
}

fn write_cell(pg: &mut [u8], i: usize, c: &Cell) {
    use cosbt_dam::Pod;
    c.write_to(&mut pg[HDR + 32 * i..HDR + 32 * i + 32]);
}

fn leaf_pair(pg: &[u8], i: usize) -> (u64, u64) {
    (ru64(pg, HDR + 16 * i), ru64(pg, HDR + 16 * i + 8))
}

fn set_leaf_pair(pg: &mut [u8], i: usize, k: u64, v: u64) {
    wu64(pg, HDR + 16 * i, k);
    wu64(pg, HDR + 16 * i + 8, v);
}

/// A buffered repository tree over any page store.
#[derive(Debug)]
pub struct Brt<P: PageStore> {
    store: P,
    root: u32,
    live: usize,
    n: u64,
}

impl Brt<VecPages> {
    /// Over plain heap pages of 4 KiB.
    pub fn new_plain() -> Self {
        Self::new(VecPages::new(DEFAULT_PAGE_SIZE))
    }
}

/// Outcome of pushing messages into a subtree: a split, if one propagates.
struct Split {
    pivot: u64,
    right: u32,
}

impl<P: PageStore> Brt<P> {
    /// Creates an empty BRT over `store` (must be empty).
    pub fn new(mut store: P) -> Self {
        assert_eq!(store.num_pages(), 0);
        let root = store.alloc_page();
        store.with_page_mut(root, |pg| {
            pg[0] = LEAF;
            set_count(pg, 0);
        });
        Brt {
            store,
            root,
            live: 0,
            n: 0,
        }
    }

    /// Number of live keys (after applying all buffered messages so far
    /// applied; buffered-but-unapplied messages are not counted).
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Borrow the backing store (for I/O statistics).
    pub fn store(&self) -> &P {
        &self.store
    }

    fn insert_cell(&mut self, cell: Cell) {
        self.n += 1;
        self.push_root(vec![cell]);
    }

    /// Pushes `cells` (oldest first, at most `buf_cap` many) into the
    /// root, growing a new root on split.
    fn push_root(&mut self, cells: Vec<Cell>) {
        if let Some(split) = self.push(self.root, cells) {
            let old_root = self.root;
            let new_root = self.store.alloc_page();
            self.store.with_page_mut(new_root, |pg| {
                pg[0] = BRANCH;
                set_count(pg, 0);
                set_pivots(pg, &[split.pivot]);
                set_children(pg, &[old_root, split.right]);
            });
            self.root = new_root;
        }
    }

    /// The batched write path: message chunks of up to a full buffer enter
    /// the root together, so a batch pays one root-buffer append (and at
    /// most one flush cascade) per `buf_cap` messages instead of one walk
    /// per message.
    fn apply_cells(&mut self, cells: &[Cell]) {
        let cap = buf_cap(self.store.page_size());
        for chunk in cells.chunks(cap) {
            self.n += chunk.len() as u64;
            self.push_root(chunk.to_vec());
        }
    }

    /// Appends cells to `page`'s buffer while space remains; returns how
    /// many were taken.
    fn append_cells(&mut self, page: u32, cells: &[Cell]) -> usize {
        let cap = buf_cap(self.store.page_size());
        self.store.with_page_mut(page, |pg| {
            let mut n = get_count(pg);
            let mut took = 0;
            for c in cells {
                if n == cap {
                    break;
                }
                write_cell(pg, n, c);
                n += 1;
                took += 1;
            }
            set_count(pg, n);
            took
        })
    }

    /// Pushes `cells` (oldest first, at most `buf_cap` many) into `page`,
    /// flushing and splitting as needed. Returns the split of `page`, if
    /// one happened (at most one per push).
    fn push(&mut self, page: u32, cells: Vec<Cell>) -> Option<Split> {
        let ntype = self.store.with_page(page, |pg| pg[0]);
        if ntype == LEAF {
            return self.apply_to_leaf(page, cells);
        }
        let mut pending = cells;
        loop {
            let took = self.append_cells(page, &pending);
            pending.drain(..took);
            if pending.is_empty() {
                return None;
            }
            // Buffer full: flush it to the children. Child splits may
            // leave this node transiently over-wide (≤ 8 children).
            let kids_now = self.flush_buffer(page);
            if kids_now > MAX_KIDS {
                let split = self.split_branch(page);
                // Route the pending messages between the halves. Both
                // buffers are empty (just flushed), and |pending| ≤
                // buf_cap, so they are guaranteed to fit.
                let (left, right): (Vec<Cell>, Vec<Cell>) =
                    pending.into_iter().partition(|c| c.key < split.pivot);
                let t = self.append_cells(page, &left);
                debug_assert_eq!(t, left.len());
                let t = self.append_cells(split.right, &right);
                debug_assert_eq!(t, right.len());
                return Some(split);
            }
        }
    }

    /// Empties `page`'s buffer into its children (partition by pivots,
    /// preserve arrival order), absorbing child splits into this node's
    /// pivot list (which may transiently exceed `MAX_KIDS`). Returns the
    /// resulting child count.
    fn flush_buffer(&mut self, page: u32) -> usize {
        let (mut pivots, mut kids, buffered) = self.store.with_page_mut(page, |pg| {
            let pivots = get_pivots(pg);
            let kids = get_children(pg);
            let n = get_count(pg);
            let cells: Vec<Cell> = (0..n).map(|i| read_cell(pg, i)).collect();
            set_count(pg, 0);
            (pivots, kids, cells)
        });

        // Partition by pivots, preserving arrival order.
        let mut parts: Vec<Vec<Cell>> = vec![Vec::new(); kids.len()];
        for c in buffered {
            let idx = pivots.partition_point(|&p| p <= c.key);
            parts[idx].push(c);
        }

        let mut i = 0usize;
        while i < kids.len() {
            let part = std::mem::take(&mut parts[i]);
            if part.is_empty() {
                i += 1;
                continue;
            }
            if let Some(split) = self.push(kids[i], part) {
                // Child split: add the pivot locally. The child routed the
                // messages into the correct halves itself.
                pivots.insert(i, split.pivot);
                kids.insert(i + 1, split.right);
                parts.insert(i + 1, Vec::new());
                i += 1; // skip the freshly created right half
            }
            i += 1;
        }
        debug_assert!(kids.len() <= 2 * MAX_KIDS, "transient width exceeded");
        let n = kids.len();
        self.store.with_page_mut(page, |pg| {
            set_pivots(pg, &pivots);
            set_children(pg, &kids);
        });
        n
    }

    /// Splits an over-wide branch whose buffer is empty; returns the new
    /// right sibling and promoted pivot.
    fn split_branch(&mut self, page: u32) -> Split {
        let (mut pivots, mut kids) = self
            .store
            .with_page(page, |pg| (get_pivots(pg), get_children(pg)));
        let mid = kids.len() / 2;
        let promote = pivots[mid - 1];
        let right_kids = kids.split_off(mid);
        let right_pivots = pivots.split_off(mid);
        let mut left_pivots = pivots;
        left_pivots.pop(); // the promoted pivot moves up
        let right = self.store.alloc_page();
        self.store.with_page_mut(page, |pg| {
            set_pivots(pg, &left_pivots);
            set_children(pg, &kids);
            set_count(pg, 0);
        });
        self.store.with_page_mut(right, |pg| {
            pg[0] = BRANCH;
            set_count(pg, 0);
            set_pivots(pg, &right_pivots);
            set_children(pg, &right_kids);
        });
        Split {
            pivot: promote,
            right,
        }
    }

    /// Applies messages (oldest first) to a leaf, splitting if it
    /// overflows.
    fn apply_to_leaf(&mut self, page: u32, cells: Vec<Cell>) -> Option<Split> {
        let ps = self.store.page_size();
        let cap = leaf_cap(ps);
        let mut records: Vec<(u64, u64)> = self.store.with_page(page, |pg| {
            (0..get_count(pg)).map(|i| leaf_pair(pg, i)).collect()
        });
        for c in cells {
            let pos = records.binary_search_by_key(&c.key, |&(k, _)| k);
            match (pos, c.is_tombstone()) {
                (Ok(i), true) => {
                    records.remove(i);
                    self.live -= 1;
                }
                (Ok(i), false) => records[i].1 = c.val,
                (Err(_), true) => {}
                (Err(i), false) => {
                    records.insert(i, (c.key, c.val));
                    self.live += 1;
                }
            }
        }
        if records.len() <= cap {
            self.store.with_page_mut(page, |pg| {
                set_count(pg, records.len());
                for (i, &(k, v)) in records.iter().enumerate() {
                    set_leaf_pair(pg, i, k, v);
                }
            });
            return None;
        }
        let mid = records.len() / 2;
        let right_records = records.split_off(mid);
        let pivot = right_records[0].0;
        let right = self.store.alloc_page();
        self.store.with_page_mut(page, |pg| {
            set_count(pg, records.len());
            for (i, &(k, v)) in records.iter().enumerate() {
                set_leaf_pair(pg, i, k, v);
            }
        });
        self.store.with_page_mut(right, |pg| {
            pg[0] = LEAF;
            set_count(pg, right_records.len());
            for (i, &(k, v)) in right_records.iter().enumerate() {
                set_leaf_pair(pg, i, k, v);
            }
        });
        Some(Split { pivot, right })
    }

    fn get_impl(&mut self, key: u64) -> Option<u64> {
        let mut page = self.root;
        loop {
            enum Step {
                Leaf(Option<u64>),
                Buffered(Option<u64>),
                Descend(u32),
            }
            let step = self.store.with_page(page, |pg| {
                if pg[0] == LEAF {
                    let n = get_count(pg);
                    let (mut lo, mut hi) = (0usize, n);
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        if leaf_pair(pg, mid).0 < key {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    let found = (lo < n && leaf_pair(pg, lo).0 == key).then(|| leaf_pair(pg, lo).1);
                    return Step::Leaf(found);
                }
                // Newest matching message wins: scan the buffer backwards.
                let n = get_count(pg);
                for i in (0..n).rev() {
                    let c = read_cell(pg, i);
                    if c.key == key {
                        return Step::Buffered(c.as_lookup());
                    }
                }
                let pivots = get_pivots(pg);
                let kids = get_children(pg);
                Step::Descend(kids[pivots.partition_point(|&p| p <= key)])
            });
            match step {
                Step::Leaf(v) => return v,
                Step::Buffered(v) => return v,
                Step::Descend(child) => page = child,
            }
        }
    }

    fn range_impl(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        // Collect messages (with depth for recency) and leaf records from
        // every node overlapping the range.
        let mut msgs: Vec<(usize, usize, Cell)> = Vec::new(); // (depth, arrival, cell)
        let mut recs: Vec<(u64, u64)> = Vec::new();
        let mut stack = vec![(self.root, 0usize)];
        while let Some((page, depth)) = stack.pop() {
            self.store.with_page(page, |pg| {
                if pg[0] == LEAF {
                    for i in 0..get_count(pg) {
                        let (k, v) = leaf_pair(pg, i);
                        if k >= lo && k <= hi {
                            recs.push((k, v));
                        }
                    }
                } else {
                    for i in 0..get_count(pg) {
                        let c = read_cell(pg, i);
                        if c.key >= lo && c.key <= hi {
                            msgs.push((depth, i, c));
                        }
                    }
                    let pivots = get_pivots(pg);
                    let kids = get_children(pg);
                    for (i, &child) in kids.iter().enumerate() {
                        let clo = if i == 0 { None } else { Some(pivots[i - 1]) };
                        let chi = if i == pivots.len() {
                            None
                        } else {
                            Some(pivots[i])
                        };
                        let overlaps = clo.is_none_or(|c| c <= hi) && chi.is_none_or(|c| c > lo);
                        if overlaps {
                            stack.push((child, depth + 1));
                        }
                    }
                }
            });
        }
        // Apply messages newest-first on top of the records.
        let mut map: std::collections::BTreeMap<u64, Option<u64>> =
            std::collections::BTreeMap::new();
        for (k, v) in recs {
            map.insert(k, Some(v));
        }
        // Sort: shallower depth = newer; within a buffer, higher arrival =
        // newer. Apply oldest first so newer overwrite.
        msgs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, _, c) in msgs {
            map.insert(c.key, c.as_lookup());
        }
        map.into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect()
    }
}

/// Per-structure metadata format version (see `cosbt_core::persist`).
const META_VERSION: u8 = 1;

impl<P: PageStore> Brt<P> {
    /// Reconstructs a BRT over an already-populated `store` from
    /// persisted control state (root page and counters). Buffered
    /// messages live inside the node pages, so they survive as data.
    pub fn from_parts(store: P, meta: &[u8]) -> Result<Self, cosbt_core::MetaError> {
        use cosbt_core::{persist::TAG_BRT, MetaError, MetaReader};
        let mut r = MetaReader::new(meta, TAG_BRT, META_VERSION)?;
        let root = r.u32()?;
        let live = r.usize()?;
        let n = r.u64()?;
        r.finish()?;
        if root >= store.num_pages() {
            return Err(MetaError::Invalid(format!(
                "root page {root} out of bounds ({} pages)",
                store.num_pages()
            )));
        }
        Ok(Brt {
            store,
            root,
            live,
            n,
        })
    }
}

impl<P: PageStore> cosbt_core::Persist for Brt<P> {
    fn save_meta(&mut self) -> Vec<u8> {
        use cosbt_core::{persist::TAG_BRT, MetaWriter};
        let mut w = MetaWriter::new(TAG_BRT, META_VERSION);
        w.u32(self.root).usize(self.live).u64(self.n);
        w.finish()
    }
}

impl<P: PageStore> Dictionary for Brt<P> {
    fn insert(&mut self, key: u64, val: u64) {
        self.insert_cell(Cell::item(key, val));
    }

    fn delete(&mut self, key: u64) {
        self.insert_cell(Cell::tombstone(key));
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        self.get_impl(key)
    }

    fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
        // Pending messages live in buffers at arbitrary depths, so a range
        // scan must merge the whole overlap anyway; the cursor streams a
        // merged snapshot of it.
        Cursor::new(VecCursor::new(self.range_impl(lo, hi)))
    }

    fn apply(&mut self, batch: &mut UpdateBatch) {
        let cells = cosbt_core::dict::batch_to_cells(batch);
        self.apply_cells(&cells);
        batch.clear();
    }

    fn insert_batch(&mut self, sorted: &[(u64, u64)]) {
        let cells = cosbt_core::dict::sorted_pairs_to_cells(sorted);
        self.apply_cells(&cells);
    }

    fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        // The cursor is already a materialized snapshot; skip the default
        // method's second copy through it.
        if lo > hi {
            return Vec::new();
        }
        self.range_impl(lo, hi)
    }

    fn physical_len(&self) -> usize {
        self.n as usize
    }

    fn name(&self) -> &'static str {
        "brt"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_fit_page() {
        assert!(HDR + 16 * leaf_cap(4096) <= 4096);
        assert!(HDR + 32 * buf_cap(4096) <= 4096);
        assert_eq!(buf_cap(4096), 125);
    }

    #[test]
    fn inserts_and_gets_match_model() {
        let mut t = Brt::new_plain();
        let mut model = std::collections::BTreeMap::new();
        let mut x: u64 = 77;
        for i in 0..40_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 15_000;
            t.insert(k, i);
            model.insert(k, i);
        }
        for k in (0..15_000u64).step_by(7) {
            assert_eq!(t.get(k), model.get(&k).copied(), "key {k}");
        }
    }

    #[test]
    fn buffered_messages_visible_immediately() {
        let mut t = Brt::new_plain();
        t.insert(42, 1);
        assert_eq!(t.get(42), Some(1), "must be visible while only buffered");
        t.insert(42, 2);
        assert_eq!(t.get(42), Some(2), "newest buffered message wins");
        t.delete(42);
        assert_eq!(t.get(42), None, "buffered tombstone wins");
    }

    #[test]
    fn deletes_and_upserts_deep() {
        let mut t = Brt::new_plain();
        for k in 0..10_000u64 {
            t.insert(k, k);
        }
        for k in (0..10_000u64).step_by(3) {
            t.delete(k);
        }
        for k in (0..10_000u64).step_by(5) {
            t.insert(k, k + 1_000_000);
        }
        for k in (0..10_000u64).step_by(11) {
            let want = if k % 5 == 0 {
                Some(k + 1_000_000)
            } else if k % 3 == 0 {
                None
            } else {
                Some(k)
            };
            assert_eq!(t.get(k), want, "key {k}");
        }
    }

    #[test]
    fn range_matches_model() {
        let mut t = Brt::new_plain();
        let mut model = std::collections::BTreeMap::new();
        for i in 0..20_000u64 {
            let k = (i * 17) % 30_000;
            t.insert(k, i);
            model.insert(k, i);
        }
        for k in (0..30_000u64).step_by(100) {
            model.remove(&k);
            t.delete(k);
        }
        for (lo, hi) in [(0u64, 29_999u64), (1000, 1100), (29_000, 40_000)] {
            let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(t.range(lo, hi), want, "range {lo}..={hi}");
        }
    }

    #[test]
    fn amortized_insert_transfers_beat_btree_shape() {
        use cosbt_dam::{new_shared_sim, CacheConfig, SimPages};
        let n = 50_000u64;
        let sim = new_shared_sim(CacheConfig::new(4096, 64));
        let mut t = Brt::new(SimPages::new(sim.clone(), 4096));
        let mut x: u64 = 5;
        for i in 0..n {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.insert(x, i);
        }
        let per = sim.borrow().stats().transfers() as f64 / n as f64;
        // O((log N)/B): with B = 126 messages/buffer this is well below 1;
        // a B-tree would pay ~1 transfer per random insert out of core.
        assert!(per < 1.0, "transfers/insert = {per}");
    }

    #[test]
    fn search_transfers_are_height_bounded() {
        use cosbt_dam::{new_shared_sim, CacheConfig, SimPages};
        let sim = new_shared_sim(CacheConfig::new(4096, 8));
        let mut t = Brt::new(SimPages::new(sim.clone(), 4096));
        for i in 0..100_000u64 {
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
        }
        sim.borrow_mut().drop_cache();
        sim.borrow_mut().reset_stats();
        let probes = 200u64;
        let mut x = 9u64;
        for _ in 0..probes {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.get(x);
        }
        let per = sim.borrow().stats().fetches as f64 / probes as f64;
        // Height of a (2,4)-tree on 100k/254-or-so leaves: ~log2; allow
        // generous slack but it must stay logarithmic, not linear.
        assert!(per < 32.0, "fetches/search = {per}");
    }
}
