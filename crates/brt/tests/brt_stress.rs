//! Stress and property tests of the buffered repository tree: deep
//! flush cascades, split storms from sorted input, and model equivalence
//! under heavy tombstone traffic.

use cosbt_brt::Brt;
use cosbt_core::Dictionary;
use cosbt_testkit::{check_cases, Rng};

#[test]
fn sorted_input_split_storm() {
    // Sorted inserts make every flush land in the rightmost child: the
    // worst case for the transient-width machinery.
    let mut t = Brt::new_plain();
    let n = 100_000u64;
    for k in 0..n {
        t.insert(k, k);
    }
    for k in (0..n).step_by(977) {
        assert_eq!(t.get(k), Some(k));
    }
    assert_eq!(t.range(0, u64::MAX).len() as u64, n);
}

#[test]
fn alternating_insert_delete_same_keys() {
    let mut t = Brt::new_plain();
    let mut model = std::collections::BTreeMap::new();
    for round in 0..40u64 {
        for k in 0..500u64 {
            if (round + k) % 2 == 0 {
                t.insert(k, round);
                model.insert(k, round);
            } else {
                t.delete(k);
                model.remove(&k);
            }
        }
    }
    for k in 0..500u64 {
        assert_eq!(t.get(k), model.get(&k).copied(), "key {k}");
    }
    let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(t.range(0, u64::MAX), want);
}

#[test]
fn deep_tree_buffered_recency() {
    // A message buffered high in the tree must shadow an older version
    // that has already been flushed to a leaf far below.
    let mut t = Brt::new_plain();
    for k in 0..50_000u64 {
        t.insert(k, 1);
    }
    // These updates sit in the root buffer initially.
    for k in (0..50_000u64).step_by(10_000) {
        t.insert(k, 2);
    }
    for k in (0..50_000u64).step_by(10_000) {
        assert_eq!(t.get(k), Some(2), "key {k} must see the buffered update");
    }
    assert_eq!(t.get(1), Some(1));
}

#[test]
fn brt_random_ops_match_model() {
    check_cases("brt_random_ops_match_model", 48, |rng: &mut Rng| {
        let len = 1 + rng.index(699);
        let mut t = Brt::new_plain();
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..len {
            let (op, k, v) = (rng.below(10), rng.below(256), rng.next_u64());
            match op {
                0..=6 => {
                    t.insert(k, v);
                    model.insert(k, v);
                }
                7..=8 => {
                    t.delete(k);
                    model.remove(&k);
                }
                _ => assert_eq!(t.get(k), model.get(&k).copied()),
            }
        }
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(t.range(0, u64::MAX), want);
    });
}
