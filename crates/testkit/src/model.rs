//! Bounded-preemption model checker: the engine behind the
//! [`crate::sync`] shim when the workspace is compiled with
//! `--cfg cosbt_model`.
//!
//! The checker is a deterministic scheduler in the style of loom /
//! CHESS: the code under test runs on real OS threads, but a global
//! token guarantees only one of them executes at a time, and every
//! operation on a shimmed primitive (atomic access, mutex lock/unlock,
//! condvar wait/notify, spawn/join/yield) is a *schedule point* where
//! the scheduler may hand the token to a different thread. One test
//! execution corresponds to one sequence of scheduling decisions; the
//! driver ([`check`]) explores the tree of decision sequences by
//! depth-first search, bounding the number of *preemptions* (switches
//! away from a still-runnable thread) per execution. Iterating
//! schedules with a small preemption bound is exhaustive for that
//! bound: every interleaving reachable with ≤ k preemptions is
//! executed exactly once. Empirically (CHESS, loom) k = 2 catches the
//! overwhelming majority of real concurrency bugs.
//!
//! ## Memory-ordering model
//!
//! Shimmed atomics distinguish `Relaxed` from `Acquire`/`Release`:
//! every store is kept in the atomic's modification order together
//! with the writer's vector clock, and a load may read *any* store
//! that is not yet superseded for the loading thread — i.e. any store
//! newer than the newest one that happens-before the load (and newer
//! than anything the thread already read or wrote itself). Which
//! permissible store a load returns is one more decision the DFS
//! explores. Happens-before edges come from spawn/join, mutex
//! release→acquire, and Release-store→Acquire-load pairs; `Relaxed`
//! operations create none, so a Relaxed load can observe stale values
//! — exactly the behaviour that makes incorrectly-relaxed protocols
//! fail under the checker while their Release/Acquire versions pass.
//!
//! Caveats (documented, deliberate):
//! * `SeqCst` is modeled as Acquire/Release plus "reads the newest
//!   store". Under an interleaving scheduler that is exactly
//!   sequential consistency, which is *stronger* than C++ `seq_cst` in
//!   programs that mix orderings — the checker can miss bugs that only
//!   exist under weaker-than-SC `SeqCst` mixes, and never reports
//!   false races for it.
//! * Release sequences and fences are not modeled; RMWs read the
//!   newest store (as C++ requires) and a failed `compare_exchange`
//!   also reads the newest store (stronger than C++).
//! * Condvars never wake spuriously, and `notify_one` wakes the
//!   longest-waiting thread (FIFO).
//! * A panic anywhere inside the checked closure — including panics
//!   the code would catch with `catch_unwind` — is treated as a
//!   failure of the execution.
//!
//! Unshimmed `std::sync` primitives still *work* under the checker
//! (only one thread runs at a time, so they never contend) but are
//! invisible to it: they create no schedule points and no modeled
//! happens-before edges. The `cosbt-check` lint keeps the shimmed
//! crates free of them.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Panic payload used to unwind threads of an execution being torn
/// down. Never surfaces to user code: the thread wrapper catches it.
struct ModelAbort;

fn lock_sched(ctl: &Controller) -> MutexGuard<'_, Sched> {
    // The scheduler must stay usable while a failing execution
    // unwinds, so poisoning (a panic while the lock was held) is
    // ignored rather than propagated.
    ctl.sched.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

static ACTIVE: Mutex<Option<Arc<Controller>>> = Mutex::new(None);
/// Serializes model runs within a process (`#[test]`s run on many
/// threads; the controller and panic hook are global).
static RUN_LOCK: Mutex<()> = Mutex::new(());
static RUN_IDS: AtomicU64 = AtomicU64::new(1);

/// The active controller and the calling thread's model id, if the
/// calling thread belongs to a model execution.
pub(crate) fn active() -> Option<(Arc<Controller>, usize)> {
    let tid = TID.with(|t| t.get())?;
    let ctl = ACTIVE.lock().unwrap_or_else(|e| e.into_inner()).clone()?;
    Some((ctl, tid))
}

/// Logical nanoseconds for `sync::time::Instant`: the controller's
/// deterministic clock during a model run, real monotonic time
/// otherwise.
pub(crate) fn now_ns() -> u64 {
    if let Some((ctl, _)) = active() {
        return lock_sched(&ctl).logical_ns;
    }
    static START: OnceLock<std::time::Instant> = OnceLock::new();
    let start = START.get_or_init(std::time::Instant::now);
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Options for [`check_opts`].
#[derive(Debug, Clone)]
pub struct ModelOpts {
    /// Maximum preemptions (switches away from a runnable thread) per
    /// execution. Voluntary switches — blocking, yielding, finishing —
    /// are free. 0 explores only cooperative schedules.
    pub preemption_bound: u32,
    /// Hard cap on explored schedules; exceeding it fails the check
    /// loudly (shrink the test or raise the budget — never let a
    /// "model-checked" test silently explore a fraction of its space).
    pub max_schedules: u64,
    /// Hard cap on schedule points in one execution (runaway-loop
    /// backstop).
    pub max_steps: u64,
    /// Per-execution budget of *stale* atomic reads (a load observing
    /// anything but the newest permissible store). Keeps exploration
    /// finite for spin loops over `Relaxed` atomics — the same device
    /// as loom's spurious-failure budget. Real relaxed-memory bugs
    /// need only one or two stale reads to manifest.
    pub stale_reads: u32,
}

impl Default for ModelOpts {
    fn default() -> ModelOpts {
        ModelOpts {
            preemption_bound: 2,
            max_schedules: 500_000,
            max_steps: 100_000,
            stale_reads: 3,
        }
    }
}

impl ModelOpts {
    /// `ModelOpts` with the given preemption bound and default budgets.
    pub fn bound(preemption_bound: u32) -> ModelOpts {
        ModelOpts {
            preemption_bound,
            ..ModelOpts::default()
        }
    }
}

/// What an exploration did: returned by [`check`] / [`check_opts`] so
/// tests can assert on the schedule count (proving the DFS actually
/// explored the space it claims).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct executions (= decision sequences) run to completion.
    pub schedules: u64,
    /// The preemption bound the exploration ran under.
    pub preemption_bound: u32,
}

/// One recorded decision of an execution.
#[derive(Debug, Clone, Copy)]
struct Decision {
    /// Index taken (into the candidate list at this point).
    choice: u32,
    /// Number of candidates that existed.
    alts: u32,
    /// Preemptions already spent when the decision was made.
    pre_used: u32,
    /// Whether alternatives other than 0 would preempt a runnable
    /// thread (true only for scheduling decisions where the current
    /// thread could have continued).
    preemptive_alts: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThState {
    Runnable,
    MutexWait(usize),
    CvWait { cv: usize, deadline: Option<u64> },
    JoinWait(usize),
    Done,
}

struct Th {
    state: ThState,
    /// Vector clock: `clock[t]` = newest event of thread `t` that
    /// happens-before this thread's current point.
    clock: Vec<u64>,
    /// Set when the thread was resumed from a timed wait by its
    /// timeout rather than a notification.
    timed_out: bool,
    name: String,
}

struct MxState {
    locked: bool,
    /// Release clock: joined into each locker (the release→acquire
    /// edge every mutex provides).
    clock: Vec<u64>,
}

struct CvState {
    /// Waiting tids, FIFO.
    waiters: VecDeque<usize>,
}

struct StoreRec {
    val: u64,
    /// Writer's clock at the store, for Release-ish stores; `None`
    /// for Relaxed stores (no synchronizes-with edge).
    sync: Option<Vec<u64>>,
    writer: usize,
    writer_ts: u64,
}

struct AtState {
    /// Modification order, oldest first.
    stores: Vec<StoreRec>,
    /// Per-thread coherence floor: the oldest store index the thread
    /// may still read (it has read or written something at least this
    /// new on this atomic).
    floors: Vec<usize>,
}

struct Sched {
    forced: Vec<u32>,
    cursor: usize,
    trace: Vec<Decision>,
    threads: Vec<Th>,
    running: usize,
    preemptions: u32,
    steps: u64,
    max_steps: u64,
    stale_used: u32,
    stale_budget: u32,
    failure: Option<String>,
    logical_ns: u64,
    mutexes: Vec<MxState>,
    condvars: Vec<CvState>,
    atomics: Vec<AtState>,
    /// OS threads that have not yet finished (incl. aborted ones).
    live: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// The per-execution scheduler shared by every thread of the checked
/// program. Shim types talk to it through [`active`].
pub(crate) struct Controller {
    sched: Mutex<Sched>,
    cv: Condvar,
    /// Execution teardown flag; set by the panic hook as soon as any
    /// thread panics so that suspended threads wake and unwind.
    abort: AtomicBool,
    pub(crate) run_id: u64,
}

fn join_clock(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

impl Controller {
    fn new(forced: Vec<u32>, opts: &ModelOpts) -> Arc<Controller> {
        Arc::new(Controller {
            sched: Mutex::new(Sched {
                forced,
                cursor: 0,
                trace: Vec::new(),
                threads: Vec::new(),
                running: 0,
                preemptions: 0,
                steps: 0,
                max_steps: opts.max_steps,
                stale_used: 0,
                stale_budget: opts.stale_reads,
                failure: None,
                logical_ns: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                atomics: Vec::new(),
                live: 0,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
            abort: AtomicBool::new(false),
            run_id: RUN_IDS.fetch_add(1, Ordering::Relaxed),
        })
    }

    fn me(&self) -> usize {
        TID.with(|t| t.get())
            .expect("model op on unregistered thread")
    }

    /// Panics with [`ModelAbort`] (guard already dropped by caller) if
    /// the execution is being torn down. Never called on unwind paths.
    fn abort_point(&self) {
        if self.abort.load(Ordering::SeqCst) && !std::thread::panicking() {
            std::panic::panic_any(ModelAbort);
        }
    }

    /// Records one decision with `alts` candidates and returns the
    /// chosen index (forced by the schedule prefix, default 0 beyond
    /// it). Single-candidate points are not recorded.
    fn decide(s: &mut Sched, alts: u32, preemptive_alts: bool) -> u32 {
        if alts <= 1 {
            return 0;
        }
        let choice = if s.cursor < s.forced.len() {
            s.forced[s.cursor]
        } else {
            0
        };
        s.cursor += 1;
        let choice = choice.min(alts - 1); // divergence guard; deterministic programs never hit it
        s.trace.push(Decision {
            choice,
            alts,
            pre_used: s.preemptions,
            preemptive_alts,
        });
        choice
    }

    /// Core schedule point: may switch the token to another thread.
    /// `me_runnable` says whether the calling thread could continue
    /// (false when it is blocking or exiting). `exclude_me` forces a
    /// switch when possible (yield semantics). Returns the guard,
    /// re-acquired, once the calling thread holds the token again; or
    /// `None` if the caller is exiting (`me_runnable == false` with
    /// state `Done`).
    fn reschedule<'c>(
        &self,
        mut s: MutexGuard<'c, Sched>,
        me_runnable: bool,
        exclude_me: bool,
    ) -> MutexGuard<'c, Sched> {
        let me = self.me();
        s.steps += 1;
        if s.steps > s.max_steps && s.failure.is_none() {
            s.failure = Some(format!(
                "model execution exceeded {} schedule points (runaway loop?)",
                s.max_steps
            ));
            self.abort.store(true, Ordering::SeqCst);
            self.cv.notify_all();
            drop(s);
            std::panic::panic_any(ModelAbort);
        }
        // Candidate threads, deterministic order: the current thread
        // first (when allowed), then others by ascending tid. A thread
        // blocked in a timed wait is always schedulable via timeout.
        let mut cands: Vec<(usize, bool)> = Vec::new();
        if me_runnable && !exclude_me {
            cands.push((me, false));
        }
        for t in 0..s.threads.len() {
            if t == me {
                // A caller blocking on a *timed* wait (`me_runnable ==
                // false` with a deadline) is still schedulable via its
                // own timeout — without this, a lone timed waiter
                // among blocked peers is misdiagnosed as a deadlock.
                if !me_runnable {
                    if let ThState::CvWait {
                        deadline: Some(_), ..
                    } = s.threads[t].state
                    {
                        cands.push((t, true));
                    }
                }
                continue;
            }
            match s.threads[t].state {
                ThState::Runnable => cands.push((t, false)),
                ThState::CvWait {
                    deadline: Some(_), ..
                } => cands.push((t, true)),
                _ => {}
            }
        }
        if cands.is_empty() {
            if me_runnable {
                // Nothing else to run; just continue.
                return s;
            }
            let root_alive = s.threads[0].state != ThState::Done;
            if root_alive && s.failure.is_none() {
                let states: Vec<String> = s
                    .threads
                    .iter()
                    .map(|t| format!("{}: {:?}", t.name, t.state))
                    .collect();
                s.failure = Some(format!(
                    "deadlock: every thread is blocked [{}]",
                    states.join(", ")
                ));
            }
            // Either a deadlock (failure recorded) or normal teardown
            // with leftover blocked threads: wake everyone to unwind.
            self.abort.store(true, Ordering::SeqCst);
            self.cv.notify_all();
            return s;
        }
        let preemptive_alts = me_runnable && !exclude_me;
        let choice = Self::decide(&mut s, cands.len() as u32, preemptive_alts);
        let (next, via_timeout) = cands[choice as usize];
        if debug_enabled() {
            let states: Vec<String> = s
                .threads
                .iter()
                .map(|t| format!("{}:{:?}", t.name, t.state))
                .collect();
            eprintln!(
                "[step {} me={me} -> next={next} via_timeout={via_timeout} \
                 cands={cands:?} [{}]]",
                s.steps,
                states.join(", ")
            );
        }
        if preemptive_alts && next != me {
            s.preemptions += 1;
        }
        if via_timeout {
            // Resume the timed waiter as if its timeout fired: advance
            // the logical clock to its deadline and pull it out of the
            // condvar's queue.
            if let ThState::CvWait {
                cv,
                deadline: Some(d),
            } = s.threads[next].state
            {
                s.logical_ns = s.logical_ns.max(d);
                s.condvars[cv].waiters.retain(|&w| w != next);
                s.threads[next].state = ThState::Runnable;
                s.threads[next].timed_out = true;
            }
        }
        s.running = next;
        if next == me {
            return s;
        }
        self.cv.notify_all();
        if s.threads[me].state == ThState::Done {
            // Exiting thread handing the token on: nothing to wait for.
            return s;
        }
        loop {
            if self.abort.load(Ordering::SeqCst) {
                drop(s);
                std::panic::panic_any(ModelAbort);
            }
            if s.running == me && s.threads[me].state == ThState::Runnable {
                return s;
            }
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Plain schedule point before a visible operation.
    fn step(&self) {
        self.abort_point();
        let s = lock_sched(self);
        drop(self.reschedule(s, true, false));
    }

    /// Yield: switch to some other runnable thread if one exists.
    pub(crate) fn yield_now(&self) {
        self.abort_point();
        let s = lock_sched(self);
        drop(self.reschedule(s, true, true));
    }

    fn tick(s: &mut Sched, me: usize) -> u64 {
        if s.threads[me].clock.len() <= me {
            s.threads[me].clock.resize(me + 1, 0);
        }
        s.threads[me].clock[me] += 1;
        s.threads[me].clock[me]
    }

    // ---- threads ----------------------------------------------------

    /// Registers the root thread (tid 0) of a fresh execution.
    fn register_root(&self) {
        let mut s = lock_sched(self);
        s.threads.push(Th {
            state: ThState::Runnable,
            clock: vec![1],
            timed_out: false,
            name: "root".into(),
        });
        s.live += 1;
        s.running = 0;
    }

    /// Spawns a model thread; the OS thread parks until scheduled.
    pub(crate) fn spawn(
        ctl: &Arc<Controller>,
        name: Option<String>,
        body: Box<dyn FnOnce() + Send + 'static>,
    ) -> usize {
        ctl.abort_point();
        let me = ctl.me();
        let mut s = lock_sched(ctl);
        let tid = s.threads.len();
        Self::tick(&mut s, me);
        let parent_clock = s.threads[me].clock.clone();
        let mut clock = parent_clock;
        if clock.len() <= tid {
            clock.resize(tid + 1, 0);
        }
        clock[tid] = 1;
        s.threads.push(Th {
            state: ThState::Runnable,
            clock,
            timed_out: false,
            name: name.unwrap_or_else(|| format!("thread-{tid}")),
        });
        s.live += 1;
        let ctl2 = ctl.clone();
        let handle = std::thread::Builder::new()
            .name(format!("cosbt-model-{tid}"))
            .spawn(move || ctl2.os_thread_main(tid, body))
            .expect("spawning a model OS thread failed");
        s.os_handles.push(handle);
        // Spawn is a schedule point: the child may run immediately.
        drop(ctl.reschedule(s, true, false));
        tid
    }

    fn os_thread_main(self: Arc<Self>, tid: usize, body: Box<dyn FnOnce() + Send + 'static>) {
        TID.with(|t| t.set(Some(tid)));
        // Park until first scheduled (or the execution is torn down
        // before we ever run).
        {
            let mut s = lock_sched(&self);
            loop {
                if self.abort.load(Ordering::SeqCst) {
                    s.threads[tid].state = ThState::Done;
                    s.live -= 1;
                    drop(s);
                    self.cv.notify_all();
                    return;
                }
                if s.running == tid && s.threads[tid].state == ThState::Runnable {
                    break;
                }
                s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
        }
        let result = catch_unwind(AssertUnwindSafe(body));
        match result {
            Ok(()) => self.thread_done(tid, None),
            Err(p) if p.is::<ModelAbort>() => self.thread_done(tid, None),
            Err(p) => self.thread_done(tid, Some(payload_msg(&*p))),
        }
    }

    /// Marks `tid` finished, wakes joiners, hands the token on.
    fn thread_done(&self, tid: usize, failed: Option<String>) {
        let mut s = lock_sched(self);
        if let Some(msg) = failed {
            if s.failure.is_none() {
                let name = s.threads[tid].name.clone();
                s.failure = Some(format!("thread '{name}' panicked: {msg}"));
            }
            self.abort.store(true, Ordering::SeqCst);
        }
        Self::tick(&mut s, tid);
        s.threads[tid].state = ThState::Done;
        s.live -= 1;
        for t in 0..s.threads.len() {
            if s.threads[t].state == ThState::JoinWait(tid) {
                s.threads[t].state = ThState::Runnable;
            }
        }
        if !self.abort.load(Ordering::SeqCst) {
            s = self.reschedule(s, false, false);
        }
        drop(s);
        self.cv.notify_all();
    }

    /// Blocks the caller until thread `tid` finishes; joins its clock.
    pub(crate) fn join_thread(&self, tid: usize) {
        self.step();
        let me = self.me();
        loop {
            self.abort_point();
            let mut s = lock_sched(self);
            if s.threads[tid].state == ThState::Done {
                let child = s.threads[tid].clock.clone();
                join_clock(&mut s.threads[me].clock, &child);
                return;
            }
            s.threads[me].state = ThState::JoinWait(tid);
            drop(self.reschedule(s, false, false));
        }
    }

    // ---- mutexes -----------------------------------------------------

    pub(crate) fn register_mutex(&self) -> usize {
        let mut s = lock_sched(self);
        s.mutexes.push(MxState {
            locked: false,
            clock: Vec::new(),
        });
        s.mutexes.len() - 1
    }

    pub(crate) fn mutex_lock(&self, mid: usize) {
        if std::thread::panicking() {
            // Unwind path (e.g. a Drop impl taking a lock while a
            // failure tears the execution down): acquire without
            // scheduling; suspended holders are woken by the abort
            // flag and release on their own unwind.
            loop {
                let mut s = lock_sched(self);
                if !s.mutexes[mid].locked {
                    s.mutexes[mid].locked = true;
                    return;
                }
                drop(self.cv.wait(s).unwrap_or_else(|e| e.into_inner()));
            }
        }
        self.step();
        let me = self.me();
        loop {
            self.abort_point();
            let mut s = lock_sched(self);
            if !s.mutexes[mid].locked {
                s.mutexes[mid].locked = true;
                let mclock = s.mutexes[mid].clock.clone();
                join_clock(&mut s.threads[me].clock, &mclock);
                return;
            }
            s.threads[me].state = ThState::MutexWait(mid);
            drop(self.reschedule(s, false, false));
        }
    }

    /// Never panics (runs from guard drops, possibly during unwind).
    pub(crate) fn mutex_unlock(&self, mid: usize) {
        let me = TID.with(|t| t.get());
        let mut s = lock_sched(self);
        if let Some(me) = me {
            Self::tick(&mut s, me);
            let released = s.threads[me].clock.clone();
            join_clock(&mut s.mutexes[mid].clock, &released);
        }
        s.mutexes[mid].locked = false;
        for t in 0..s.threads.len() {
            if s.threads[t].state == ThState::MutexWait(mid) {
                s.threads[t].state = ThState::Runnable;
            }
        }
        drop(s);
        self.cv.notify_all();
        if !std::thread::panicking() {
            self.abort_point();
            let s = lock_sched(self);
            drop(self.reschedule(s, true, false));
        }
    }

    // ---- condvars ----------------------------------------------------

    pub(crate) fn register_condvar(&self) -> usize {
        let mut s = lock_sched(self);
        s.condvars.push(CvState {
            waiters: VecDeque::new(),
        });
        s.condvars.len() - 1
    }

    /// Atomically releases mutex `mid`, waits on condvar `cvid`
    /// (bounded by `timeout` when given), re-acquires the mutex, and
    /// reports whether the wakeup was a timeout.
    pub(crate) fn cv_wait(&self, cvid: usize, mid: usize, timeout: Option<Duration>) -> bool {
        self.abort_point();
        let me = self.me();
        let mut s = lock_sched(self);
        // Release the mutex (with its release edge) and enqueue on the
        // condvar in one scheduler transition: no lost-wakeup artifacts
        // beyond what real condvars have.
        Self::tick(&mut s, me);
        let released = s.threads[me].clock.clone();
        join_clock(&mut s.mutexes[mid].clock, &released);
        s.mutexes[mid].locked = false;
        for t in 0..s.threads.len() {
            if s.threads[t].state == ThState::MutexWait(mid) {
                s.threads[t].state = ThState::Runnable;
            }
        }
        let deadline = timeout.map(|d| {
            s.logical_ns
                .saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        });
        s.threads[me].timed_out = false;
        s.threads[me].state = ThState::CvWait { cv: cvid, deadline };
        s.condvars[cvid].waiters.push_back(me);
        s = self.reschedule(s, false, false);
        if let ThState::CvWait { cv, deadline } = s.threads[me].state {
            // Reschedule returned with us still enqueued: the
            // execution is tearing down (abort with every peer blocked
            // or done). Resolve the wait as a timeout when bounded —
            // advancing the logical clock so deadline loops in
            // unwind-path drop code (e.g. a pool shutdown) terminate —
            // or as a spurious wake otherwise; non-panicking callers
            // then hit `abort_point` and unwind.
            s.condvars[cv].waiters.retain(|&w| w != me);
            s.threads[me].state = ThState::Runnable;
            if let Some(d) = deadline {
                s.logical_ns = s.logical_ns.max(d);
                s.threads[me].timed_out = true;
            }
        }
        let timed_out = s.threads[me].timed_out;
        s.threads[me].timed_out = false;
        drop(s);
        // Re-acquire the mutex (contending with anyone else).
        loop {
            self.abort_point();
            let mut s = lock_sched(self);
            if !s.mutexes[mid].locked {
                s.mutexes[mid].locked = true;
                let mclock = s.mutexes[mid].clock.clone();
                join_clock(&mut s.threads[me].clock, &mclock);
                return timed_out;
            }
            s.threads[me].state = ThState::MutexWait(mid);
            drop(self.reschedule(s, false, false));
        }
    }

    pub(crate) fn cv_notify(&self, cvid: usize, all: bool) {
        self.abort_point();
        let mut s = lock_sched(self);
        loop {
            let Some(w) = s.condvars[cvid].waiters.pop_front() else {
                break;
            };
            s.threads[w].state = ThState::Runnable;
            s.threads[w].timed_out = false;
            if !all {
                break;
            }
        }
        drop(self.reschedule(s, true, false));
    }

    // ---- atomics -----------------------------------------------------

    pub(crate) fn register_atomic(&self, init: u64) -> usize {
        let me = self.me();
        let mut s = lock_sched(self);
        let ts = Self::tick(&mut s, me);
        let clock = s.threads[me].clock.clone();
        s.atomics.push(AtState {
            stores: vec![StoreRec {
                val: init,
                sync: Some(clock),
                writer: me,
                writer_ts: ts,
            }],
            floors: Vec::new(),
        });
        s.atomics.len() - 1
    }

    fn floor(s: &mut Sched, aid: usize, me: usize) -> usize {
        if s.atomics[aid].floors.len() <= me {
            s.atomics[aid].floors.resize(me + 1, 0);
        }
        s.atomics[aid].floors[me]
    }

    fn is_acquire(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    fn is_release(order: Ordering) -> bool {
        matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        )
    }

    /// A load: picks (as a DFS decision) among the stores the memory
    /// model permits this thread to observe.
    pub(crate) fn atomic_load(&self, aid: usize, order: Ordering) -> u64 {
        self.step();
        let me = self.me();
        let mut s = lock_sched(self);
        let mut lo = Self::floor(&mut s, aid, me);
        let n = s.atomics[aid].stores.len();
        for j in lo..n {
            let st = &s.atomics[aid].stores[j];
            let known = s.threads[me].clock.get(st.writer).copied().unwrap_or(0);
            if st.writer_ts <= known {
                // The store happens-before this load: nothing older
                // may be observed.
                lo = j;
            }
        }
        let alts = if order == Ordering::SeqCst {
            1 // modeled as SC: always the newest store
        } else if s.stale_used >= s.stale_budget {
            1 // stale-read budget spent: only the newest store
        } else {
            (n - lo) as u32
        };
        let choice = Self::decide(&mut s, alts, false);
        if choice > 0 {
            s.stale_used += 1;
        }
        let idx = n - 1 - choice as usize;
        s.atomics[aid].floors[me] = s.atomics[aid].floors[me].max(idx);
        let val = s.atomics[aid].stores[idx].val;
        if Self::is_acquire(order) {
            if let Some(c) = s.atomics[aid].stores[idx].sync.clone() {
                join_clock(&mut s.threads[me].clock, &c);
            }
        }
        val
    }

    pub(crate) fn atomic_store(&self, aid: usize, val: u64, order: Ordering) -> u64 {
        self.step();
        let me = self.me();
        let mut s = lock_sched(self);
        Self::floor(&mut s, aid, me);
        let ts = Self::tick(&mut s, me);
        let sync = Self::is_release(order).then(|| s.threads[me].clock.clone());
        s.atomics[aid].stores.push(StoreRec {
            val,
            sync,
            writer: me,
            writer_ts: ts,
        });
        let last = s.atomics[aid].stores.len() - 1;
        s.atomics[aid].floors[me] = last;
        val
    }

    /// A read-modify-write: per C++, reads the newest store in
    /// modification order; returns the previous value. `write` maps the
    /// old value to the new one, or `None` to skip the write (failed
    /// compare-exchange).
    pub(crate) fn atomic_rmw(
        &self,
        aid: usize,
        order: Ordering,
        write: impl FnOnce(u64) -> Option<u64>,
    ) -> u64 {
        self.step();
        let me = self.me();
        let mut s = lock_sched(self);
        Self::floor(&mut s, aid, me);
        let n = s.atomics[aid].stores.len();
        let old = s.atomics[aid].stores[n - 1].val;
        if Self::is_acquire(order) {
            if let Some(c) = s.atomics[aid].stores[n - 1].sync.clone() {
                join_clock(&mut s.threads[me].clock, &c);
            }
        }
        s.atomics[aid].floors[me] = n - 1;
        if let Some(new) = write(old) {
            let ts = Self::tick(&mut s, me);
            let sync = Self::is_release(order).then(|| s.threads[me].clock.clone());
            s.atomics[aid].stores.push(StoreRec {
                val: new,
                sync,
                writer: me,
                writer_ts: ts,
            });
            s.atomics[aid].floors[me] = n;
        }
        old
    }
}

/// Whether `COSBT_MODEL_DEBUG` was set at first check: gates the
/// per-schedule and per-step trace output used to debug the checker
/// itself (cached — reschedule is the hottest path in an exploration).
fn debug_enabled() -> bool {
    static DEBUG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEBUG.get_or_init(|| std::env::var_os("COSBT_MODEL_DEBUG").is_some())
}

fn payload_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct ExecOutcome {
    trace: Vec<Decision>,
    failure: Option<String>,
}

fn run_once<F>(f: &Arc<F>, forced: Vec<u32>, opts: &ModelOpts) -> ExecOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let ctl = Controller::new(forced, opts);
    *ACTIVE.lock().unwrap_or_else(|e| e.into_inner()) = Some(ctl.clone());
    ctl.register_root();
    let root_ctl = ctl.clone();
    let root_f = f.clone();
    let root = std::thread::Builder::new()
        .name("cosbt-model-root".into())
        .spawn(move || {
            root_ctl.os_thread_main(
                0,
                Box::new(move || {
                    (*root_f)();
                }),
            )
        })
        .expect("spawning the model root thread failed");
    // Wait for every model thread (root, spawned, detached) to finish
    // or abort, then join the OS threads.
    {
        let mut s = lock_sched(&ctl);
        while s.live > 0 {
            s = ctl.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = root.join();
    let handles = std::mem::take(&mut lock_sched(&ctl).os_handles);
    for h in handles {
        let _ = h.join();
    }
    *ACTIVE.lock().unwrap_or_else(|e| e.into_inner()) = None;
    let s = lock_sched(&ctl);
    ExecOutcome {
        trace: s.trace.clone(),
        failure: s.failure.clone(),
    }
}

fn explore<F>(opts: &ModelOpts, f: Arc<F>) -> (Report, Option<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Silence per-execution panic output (a found bug panics in every
    // schedule that reproduces it); the hook still flips the abort
    // flag immediately so suspended threads unwind instead of
    // deadlocking against a panicking peer.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {
        if let Some(ctl) = ACTIVE.lock().unwrap_or_else(|e| e.into_inner()).clone() {
            ctl.abort.store(true, Ordering::SeqCst);
            ctl.cv.notify_all();
        }
    }));
    let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
    let mut schedules = 0u64;
    let mut failure = None;
    while let Some(prefix) = stack.pop() {
        if schedules >= opts.max_schedules {
            failure = Some(format!(
                "schedule budget exhausted: explored {schedules} schedules without \
                 finishing (bound {}); shrink the test or raise max_schedules",
                opts.preemption_bound
            ));
            break;
        }
        schedules += 1;
        if debug_enabled() {
            eprintln!("[model] schedule {schedules} prefix {prefix:?}");
        }
        let out = run_once(&f, prefix.clone(), opts);
        if let Some(msg) = out.failure {
            let choices: Vec<u32> = out.trace.iter().map(|d| d.choice).collect();
            failure = Some(format!(
                "{msg}\n  failing schedule (decision sequence): {choices:?}\n  \
                 after {schedules} explored schedule(s), preemption bound {}",
                opts.preemption_bound
            ));
            break;
        }
        // Expand unexplored alternatives beyond the forced prefix.
        for i in prefix.len()..out.trace.len() {
            let d = out.trace[i];
            for alt in d.choice + 1..d.alts {
                if d.preemptive_alts && d.pre_used >= opts.preemption_bound {
                    continue;
                }
                let mut next: Vec<u32> = out.trace[..i].iter().map(|t| t.choice).collect();
                next.push(alt);
                stack.push(next);
            }
        }
    }
    std::panic::set_hook(prev_hook);
    (
        Report {
            schedules,
            preemption_bound: opts.preemption_bound,
        },
        failure,
    )
}

/// Model-checks `f` under [`ModelOpts::default`]: explores every
/// schedule within the preemption bound and panics (with the failing
/// decision sequence) if any execution panics, asserts, or deadlocks.
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    check_opts(ModelOpts::default(), f)
}

/// [`check`] with explicit options.
pub fn check_opts<F>(opts: ModelOpts, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let (report, failure) = explore(&opts, Arc::new(f));
    if let Some(msg) = failure {
        panic!("model check failed: {msg}");
    }
    report
}

/// Runs the exploration *expecting* it to find a failure — the
/// self-test harness for seeded bugs. Returns the failure message;
/// panics if the full space within the bound passes.
pub fn check_expect_failure<F>(opts: ModelOpts, f: F) -> (Report, String)
where
    F: Fn() + Send + Sync + 'static,
{
    let (report, failure) = explore(&opts, Arc::new(f));
    match failure {
        Some(msg) => (report, msg),
        None => panic!(
            "expected the model checker to find a failure, but {} schedule(s) \
             all passed at preemption bound {}",
            report.schedules, report.preemption_bound
        ),
    }
}
