//! Deterministic randomized-testing helpers.
//!
//! The workspace builds offline with zero external dependencies, so this
//! crate stands in for `rand` (a seedable PRNG) and for the shape of the
//! property suites that would otherwise use `proptest`: run a closure over
//! many independently seeded random cases and report the failing seed so a
//! counterexample can be replayed by hand.
//!
//! The generator is SplitMix64 — tiny, fast, and passes BigCrush for the
//! purposes of workload generation. It is *not* cryptographic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(cosbt_model)]
pub mod model;
pub mod sync;

/// A seedable SplitMix64 pseudorandom generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping (slight bias is irrelevant
        // for test workloads; bound is far below 2^64).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform usize in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Random bool.
    pub fn flag(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `n` raw 64-bit values.
    pub fn vec_u64(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }

    /// A vector with a random length in `[min_len, max_len)` of values in
    /// `[0, key_bound)`.
    pub fn vec_below(&mut self, min_len: usize, max_len: usize, key_bound: u64) -> Vec<u64> {
        let n = min_len + self.index(max_len - min_len);
        (0..n).map(|_| self.below(key_bound)).collect()
    }
}

/// A zipfian rank sampler over `[0, n)`: rank `r` is drawn with
/// probability proportional to `1/(r+1)^theta`, the skewed access
/// pattern of YCSB-style benchmark workloads (a small set of hot keys
/// absorbs most of the traffic).
///
/// Uses the constant-time inversion method of Gray et al., *Quickly
/// generating billion-record synthetic databases* (SIGMOD '94): an `O(n)`
/// harmonic-sum precomputation at construction, then `O(1)` per sample.
/// Ranks are returned in popularity order — rank 0 is the hottest — so
/// callers that want hot keys scattered across the keyspace should map
/// ranks through a hash (see `cosbt-bench`'s workload layer).
///
/// ```
/// use cosbt_testkit::{Rng, Zipf};
///
/// let zipf = Zipf::new(1000, 0.99);
/// let mut rng = Rng::new(7);
/// let mut hits0 = 0;
/// for _ in 0..10_000 {
///     let r = zipf.sample(&mut rng);
///     assert!(r < 1000);
///     if r == 0 {
///         hits0 += 1;
///     }
/// }
/// // Rank 0 gets far more than the uniform 1/1000 share.
/// assert!(hits0 > 500);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl Zipf {
    /// A sampler over ranks `[0, n)` with skew `theta` in `(0, 1)`
    /// (YCSB's default is 0.99; larger is more skewed). Panics on an
    /// empty domain or a `theta` outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Zipf {
        assert!(n > 0, "zipf over an empty domain");
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipf skew must lie in (0, 1), got {theta}"
        );
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2 = 1.0 + 0.5f64.powf(theta);
        Zipf {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    /// Number of ranks in the domain.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// The probability of rank `r` under this distribution.
    pub fn rank_probability(&self, r: u64) -> f64 {
        assert!(r < self.n, "rank outside the domain");
        1.0 / ((r + 1) as f64).powf(self.theta) / self.zetan
    }

    /// Draws one rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        // Map a u64 to a uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }
}

/// Runs `case` for `cases` independently seeded random inputs. On panic the
/// failing case index and derived seed are printed so the case can be
/// replayed with `Rng::new(seed)`.
pub fn check_cases(name: &str, cases: u64, mut case: impl FnMut(&mut Rng)) {
    // Mix the suite name into the seed so different properties explore
    // different input streams (while staying replayable).
    let name_hash = name.bytes().fold(0xCBF29CE484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001B3)
    });
    for i in 0..cases {
        // Decorrelate consecutive case seeds.
        let seed = (i + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ name_hash;
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(e) = result {
            eprintln!("property '{name}' failed on case {i} (replay seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng::new(2);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "1/4 chance hit {hits}/10000");
    }

    #[test]
    fn check_cases_runs_all() {
        let mut n = 0u64;
        check_cases("count", 16, |_| n += 1);
        assert_eq!(n, 16);
    }

    #[test]
    fn zipf_matches_rank_frequency_law() {
        // Empirical rank frequencies must track 1/(r+1)^theta / zeta(n)
        // within a loose statistical tolerance.
        let n = 100u64;
        let theta = 0.99;
        let zipf = Zipf::new(n, theta);
        let mut rng = Rng::new(0xC0FFEE);
        let samples = 200_000u64;
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for r in [0u64, 1, 2, 5, 10, 50] {
            let want = zipf.rank_probability(r);
            let got = counts[r as usize] as f64 / samples as f64;
            assert!(
                (got - want).abs() < 0.15 * want + 0.002,
                "rank {r}: empirical {got:.5} vs theoretical {want:.5}"
            );
        }
        // Popularity must be (statistically) monotone at the head.
        assert!(counts[0] > counts[5]);
        assert!(counts[1] > counts[20]);
    }

    #[test]
    fn zipf_stays_in_domain_and_is_deterministic() {
        let zipf = Zipf::new(17, 0.5);
        let mut a = Rng::new(3);
        let mut b = Rng::new(3);
        for _ in 0..10_000 {
            let ra = zipf.sample(&mut a);
            assert!(ra < 17);
            assert_eq!(ra, zipf.sample(&mut b));
        }
        assert_eq!(zipf.domain(), 17);
    }
}
