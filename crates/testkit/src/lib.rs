//! Deterministic randomized-testing helpers.
//!
//! The workspace builds offline with zero external dependencies, so this
//! crate stands in for `rand` (a seedable PRNG) and for the shape of the
//! property suites that would otherwise use `proptest`: run a closure over
//! many independently seeded random cases and report the failing seed so a
//! counterexample can be replayed by hand.
//!
//! The generator is SplitMix64 — tiny, fast, and passes BigCrush for the
//! purposes of workload generation. It is *not* cryptographic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A seedable SplitMix64 pseudorandom generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed; equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping (slight bias is irrelevant
        // for test workloads; bound is far below 2^64).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform usize in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Random bool.
    pub fn flag(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `n` raw 64-bit values.
    pub fn vec_u64(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_u64()).collect()
    }

    /// A vector with a random length in `[min_len, max_len)` of values in
    /// `[0, key_bound)`.
    pub fn vec_below(&mut self, min_len: usize, max_len: usize, key_bound: u64) -> Vec<u64> {
        let n = min_len + self.index(max_len - min_len);
        (0..n).map(|_| self.below(key_bound)).collect()
    }
}

/// Runs `case` for `cases` independently seeded random inputs. On panic the
/// failing case index and derived seed are printed so the case can be
/// replayed with `Rng::new(seed)`.
pub fn check_cases(name: &str, cases: u64, mut case: impl FnMut(&mut Rng)) {
    // Mix the suite name into the seed so different properties explore
    // different input streams (while staying replayable).
    let name_hash = name.bytes().fold(0xCBF29CE484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001B3)
    });
    for i in 0..cases {
        // Decorrelate consecutive case seeds.
        let seed = (i + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ name_hash;
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(e) = result {
            eprintln!("property '{name}' failed on case {i} (replay seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = Rng::new(2);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "1/4 chance hit {hits}/10000");
    }

    #[test]
    fn check_cases_runs_all() {
        let mut n = 0u64;
        check_cases("count", 16, |_| n += 1);
        assert_eq!(n, 16);
    }
}
