//! Drop-in synchronization shim for the concurrency-checked crates.
//!
//! In a normal build this module is a zero-cost alias for `std`: every
//! name re-exports the `std::sync` / `std::thread` / `std::time` item
//! of the same name, so code written against `cosbt_testkit::sync`
//! compiles to exactly what it would with direct `std` imports.
//!
//! Under `--cfg cosbt_model` the same names resolve to model-aware
//! wrappers that route every operation through the deterministic
//! scheduler in `crate::model` (compiled only under that cfg, hence
//! no doc link), turning each lock, atomic access,
//! condvar wait and spawn into a schedule point of the
//! bounded-preemption DFS. Outside an active model run (plain unit
//! tests compiled with the cfg on) the wrappers transparently fall
//! back to `std` behaviour, so the full test suite passes under either
//! cfg.
//!
//! Known, deliberate divergences of the model wrappers from `std`:
//!
//! * Lock poisoning is invisible: `lock()`/`wait()` always return
//!   `Ok`. A panic under the checker fails the whole execution anyway,
//!   and surfacing poison mid-teardown would double-panic unwinding
//!   threads.
//! * `compare_exchange` applies its *success* ordering on failure too
//!   (at least as strong as `std`), and `compare_exchange_weak` never
//!   fails spuriously.
//! * Condvars never wake spuriously under the model and `notify_one`
//!   is FIFO.

#[cfg(not(cosbt_model))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};

/// Atomic types for the shimmed crates (`std::sync::atomic` alias).
#[cfg(not(cosbt_model))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning for the shimmed crates (`std::thread` alias).
#[cfg(not(cosbt_model))]
pub mod thread {
    pub use std::thread::{spawn, yield_now, Builder, JoinHandle, Result};
}

/// Time sources for the shimmed crates (`std::time` alias).
#[cfg(not(cosbt_model))]
pub mod time {
    pub use std::time::Instant;
}

#[cfg(cosbt_model)]
pub use model_impl::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
#[cfg(cosbt_model)]
pub use std::sync::Arc;

/// Atomic types routed through the model checker.
#[cfg(cosbt_model)]
pub mod atomic {
    pub use super::model_impl::atomic::{AtomicBool, AtomicU64, AtomicUsize};
    pub use std::sync::atomic::Ordering;
}

/// Thread spawning routed through the model checker.
#[cfg(cosbt_model)]
pub mod thread {
    pub use super::model_impl::thread::{spawn, yield_now, Builder, JoinHandle};
    pub use std::thread::Result;
}

/// Deterministic time source under the model checker.
#[cfg(cosbt_model)]
pub mod time {
    pub use super::model_impl::time::Instant;
}

#[cfg(cosbt_model)]
mod model_impl {
    use crate::model::{self, Controller};
    use std::sync::{Arc, LockResult};
    use std::time::Duration;

    /// Lazily binds a shim object to a per-execution scheduler id.
    ///
    /// Model executions are created and torn down per explored
    /// schedule; objects constructed inside the checked closure are
    /// registered with the controller on first use, keyed by the run
    /// id so a stale binding from a previous execution is re-made.
    struct ModelReg(std::sync::Mutex<Option<(u64, usize)>>);

    impl ModelReg {
        const fn new() -> ModelReg {
            ModelReg(std::sync::Mutex::new(None))
        }

        fn resolve(&self, ctl: &Arc<Controller>, register: impl FnOnce() -> usize) -> usize {
            let mut g = self.0.lock().unwrap_or_else(|e| e.into_inner());
            match *g {
                Some((rid, id)) if rid == ctl.run_id => id,
                _ => {
                    let id = register();
                    *g = Some((ctl.run_id, id));
                    id
                }
            }
        }
    }

    /// Model-aware mutex: schedule point + happens-before edge per
    /// lock/unlock during a run, plain `std::sync::Mutex` otherwise.
    pub struct Mutex<T: ?Sized> {
        reg: ModelReg,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                reg: ModelReg::new(),
                inner: std::sync::Mutex::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        fn model_id(&self, ctl: &Arc<Controller>) -> usize {
            self.reg.resolve(ctl, || ctl.register_mutex())
        }

        /// Acquires the mutex (always `Ok`; see the module docs on
        /// poisoning).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let model = model::active().map(|(ctl, _)| {
                let mid = self.model_id(&ctl);
                ctl.mutex_lock(mid);
                (ctl, mid)
            });
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            Ok(MutexGuard {
                lock: self,
                inner: Some(inner),
                model,
            })
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Guard for [`Mutex`]; releases the model lock on drop.
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<(Arc<Controller>, usize)>,
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard disarmed")
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard disarmed")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // The std guard must be released before the model token is
            // handed to another thread, or the next model-level locker
            // would block on the std mutex while holding the token.
            drop(self.inner.take());
            if let Some((ctl, mid)) = self.model.take() {
                ctl.mutex_unlock(mid);
            }
        }
    }

    /// Result of [`Condvar::wait_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        /// Whether the wakeup was the timeout rather than a notify.
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// Model-aware condition variable.
    pub struct Condvar {
        reg: ModelReg,
        inner: std::sync::Condvar,
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.pad("Condvar { .. }")
        }
    }

    impl Condvar {
        /// Creates a new condition variable.
        pub fn new() -> Condvar {
            Condvar {
                reg: ModelReg::new(),
                inner: std::sync::Condvar::new(),
            }
        }

        fn model_id(&self, ctl: &Arc<Controller>) -> usize {
            self.reg.resolve(ctl, || ctl.register_condvar())
        }

        fn wait_inner<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            timeout: Option<Duration>,
        ) -> (MutexGuard<'a, T>, bool) {
            if let Some((ctl, mid)) = guard.model.take() {
                let cvid = self.model_id(&ctl);
                let lock = guard.lock;
                // Disarm: drop the std guard without a model unlock —
                // the scheduler releases and re-acquires the model
                // mutex atomically inside `cv_wait`.
                drop(guard.inner.take());
                drop(guard);
                let timed_out = ctl.cv_wait(cvid, mid, timeout);
                let inner = lock.inner.lock().unwrap_or_else(|e| e.into_inner());
                (
                    MutexGuard {
                        lock,
                        inner: Some(inner),
                        model: Some((ctl, mid)),
                    },
                    timed_out,
                )
            } else {
                let lock = guard.lock;
                let std_guard = guard.inner.take().expect("guard disarmed");
                drop(guard);
                let (std_guard, timed_out) = match timeout {
                    Some(d) => {
                        let (g, r) = self
                            .inner
                            .wait_timeout(std_guard, d)
                            .unwrap_or_else(|e| e.into_inner());
                        (g, r.timed_out())
                    }
                    None => (
                        self.inner
                            .wait(std_guard)
                            .unwrap_or_else(|e| e.into_inner()),
                        false,
                    ),
                };
                (
                    MutexGuard {
                        lock,
                        inner: Some(std_guard),
                        model: None,
                    },
                    timed_out,
                )
            }
        }

        /// Waits for a notification (always `Ok`; see the module docs
        /// on poisoning).
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            Ok(self.wait_inner(guard, None).0)
        }

        /// Waits with a timeout.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            let (guard, timed_out) = self.wait_inner(guard, Some(dur));
            Ok((guard, WaitTimeoutResult(timed_out)))
        }

        /// Wakes one waiter (the longest-waiting one under the model).
        pub fn notify_one(&self) {
            if let Some((ctl, _)) = model::active() {
                let cvid = self.model_id(&ctl);
                ctl.cv_notify(cvid, false);
            }
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            if let Some((ctl, _)) = model::active() {
                let cvid = self.model_id(&ctl);
                ctl.cv_notify(cvid, true);
            }
            self.inner.notify_all();
        }
    }

    /// Model-aware atomics.
    pub mod atomic {
        use super::ModelReg;
        use crate::model;
        use std::sync::atomic::Ordering;

        macro_rules! model_atomic {
            ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty, to_raw = $to_raw:expr, from_raw = $from_raw:expr) => {
                $(#[$doc])*
                pub struct $name {
                    reg: ModelReg,
                    /// Backing value: authoritative outside a model
                    /// run, kept in sync with the newest modeled store
                    /// during one.
                    plain: std::sync::atomic::$std,
                }

                impl $name {
                    /// Creates a new atomic with the given value.
                    pub fn new(v: $ty) -> $name {
                        $name {
                            reg: ModelReg::new(),
                            plain: std::sync::atomic::$std::new(v),
                        }
                    }

                    fn model_id(
                        &self,
                        ctl: &std::sync::Arc<model::Controller>,
                    ) -> usize {
                        #[allow(clippy::redundant_closure_call)]
                        self.reg.resolve(ctl, || {
                            let init = ($to_raw)(self.plain.load(Ordering::SeqCst));
                            ctl.register_atomic(init)
                        })
                    }

                    /// Loads the value.
                    pub fn load(&self, order: Ordering) -> $ty {
                        #[allow(clippy::redundant_closure_call)]
                        match model::active() {
                            Some((ctl, _)) => {
                                let aid = self.model_id(&ctl);
                                ($from_raw)(ctl.atomic_load(aid, order))
                            }
                            None => self.plain.load(order),
                        }
                    }

                    /// Stores a value.
                    pub fn store(&self, val: $ty, order: Ordering) {
                        #[allow(clippy::redundant_closure_call)]
                        match model::active() {
                            Some((ctl, _)) => {
                                let aid = self.model_id(&ctl);
                                ctl.atomic_store(aid, ($to_raw)(val), order);
                                self.plain.store(val, Ordering::SeqCst);
                            }
                            None => self.plain.store(val, order),
                        }
                    }

                    /// Swaps in a new value, returning the old one.
                    pub fn swap(&self, val: $ty, order: Ordering) -> $ty {
                        #[allow(clippy::redundant_closure_call)]
                        match model::active() {
                            Some((ctl, _)) => {
                                let aid = self.model_id(&ctl);
                                let old =
                                    ctl.atomic_rmw(aid, order, |_| Some(($to_raw)(val)));
                                self.plain.store(val, Ordering::SeqCst);
                                ($from_raw)(old)
                            }
                            None => self.plain.swap(val, order),
                        }
                    }

                    /// Compare-and-exchange; under the model the
                    /// success ordering is applied on failure too.
                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        #[allow(clippy::redundant_closure_call)]
                        match model::active() {
                            Some((ctl, _)) => {
                                let aid = self.model_id(&ctl);
                                let cur_raw = ($to_raw)(current);
                                let old = ctl.atomic_rmw(aid, success, |o| {
                                    (o == cur_raw).then_some(($to_raw)(new))
                                });
                                if old == cur_raw {
                                    self.plain.store(new, Ordering::SeqCst);
                                    Ok(($from_raw)(old))
                                } else {
                                    Err(($from_raw)(old))
                                }
                            }
                            None => self
                                .plain
                                .compare_exchange(current, new, success, failure),
                        }
                    }

                    /// [`Self::compare_exchange`] that may spuriously
                    /// fail on real hardware; never spurious under the
                    /// model.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.compare_exchange(current, new, success, failure)
                    }
                }

                impl Default for $name {
                    fn default() -> $name {
                        $name::new(<$ty>::default())
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        std::fmt::Debug::fmt(&self.load(Ordering::SeqCst), f)
                    }
                }
            };
        }

        macro_rules! model_atomic_arith {
            ($name:ident, $ty:ty, to_raw = $to_raw:expr, from_raw = $from_raw:expr) => {
                impl $name {
                    /// Wrapping add; returns the previous value.
                    pub fn fetch_add(&self, val: $ty, order: Ordering) -> $ty {
                        #[allow(clippy::redundant_closure_call)]
                        match model::active() {
                            Some((ctl, _)) => {
                                let aid = self.model_id(&ctl);
                                let old = ctl.atomic_rmw(aid, order, |o| {
                                    Some(($to_raw)(($from_raw)(o).wrapping_add(val)))
                                });
                                let old = ($from_raw)(old);
                                self.plain.store(old.wrapping_add(val), Ordering::SeqCst);
                                old
                            }
                            None => self.plain.fetch_add(val, order),
                        }
                    }

                    /// Wrapping subtract; returns the previous value.
                    pub fn fetch_sub(&self, val: $ty, order: Ordering) -> $ty {
                        #[allow(clippy::redundant_closure_call)]
                        match model::active() {
                            Some((ctl, _)) => {
                                let aid = self.model_id(&ctl);
                                let old = ctl.atomic_rmw(aid, order, |o| {
                                    Some(($to_raw)(($from_raw)(o).wrapping_sub(val)))
                                });
                                let old = ($from_raw)(old);
                                self.plain.store(old.wrapping_sub(val), Ordering::SeqCst);
                                old
                            }
                            None => self.plain.fetch_sub(val, order),
                        }
                    }
                }
            };
        }

        model_atomic!(
            /// Model-aware `AtomicU64`.
            AtomicU64,
            AtomicU64,
            u64,
            to_raw = |v: u64| v,
            from_raw = |v: u64| v
        );
        model_atomic_arith!(AtomicU64, u64, to_raw = |v: u64| v, from_raw = |v: u64| v);

        model_atomic!(
            /// Model-aware `AtomicUsize`.
            AtomicUsize,
            AtomicUsize,
            usize,
            to_raw = |v: usize| v as u64,
            from_raw = |v: u64| v as usize
        );
        model_atomic_arith!(
            AtomicUsize,
            usize,
            to_raw = |v: usize| v as u64,
            from_raw = |v: u64| v as usize
        );

        model_atomic!(
            /// Model-aware `AtomicBool`.
            AtomicBool,
            AtomicBool,
            bool,
            to_raw = |v: bool| v as u64,
            from_raw = |v: u64| v != 0
        );

        impl AtomicBool {
            /// Logical-or; returns the previous value.
            pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
                match model::active() {
                    Some((ctl, _)) => {
                        let aid = self.model_id(&ctl);
                        let old = ctl.atomic_rmw(aid, order, |o| Some(u64::from(o != 0 || val)));
                        let old = old != 0;
                        self.plain.store(old || val, Ordering::SeqCst);
                        old
                    }
                    None => self.plain.fetch_or(val, order),
                }
            }
        }
    }

    /// Model-aware thread spawning.
    pub mod thread {
        use crate::model::{self, Controller};
        use std::sync::Arc;

        enum Inner<T> {
            Std(std::thread::JoinHandle<T>),
            Model {
                ctl: Arc<Controller>,
                tid: usize,
                slot: Arc<std::sync::Mutex<Option<T>>>,
            },
        }

        /// Handle to a spawned thread (model thread during a run, OS
        /// thread otherwise).
        pub struct JoinHandle<T>(Inner<T>);

        impl<T> JoinHandle<T> {
            /// Waits for the thread to finish and returns its result.
            pub fn join(self) -> std::thread::Result<T> {
                match self.0 {
                    Inner::Std(h) => h.join(),
                    Inner::Model { ctl, tid, slot } => {
                        ctl.join_thread(tid);
                        match slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                            Some(v) => Ok(v),
                            None => Err(Box::new("model thread finished without a result")),
                        }
                    }
                }
            }
        }

        impl<T> std::fmt::Debug for JoinHandle<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.pad("JoinHandle { .. }")
            }
        }

        /// Thread factory mirroring `std::thread::Builder` (only
        /// `name` is supported; stack size is meaningless for model
        /// threads).
        #[derive(Debug, Default)]
        pub struct Builder {
            name: Option<String>,
        }

        impl Builder {
            /// Creates a builder with no name set.
            pub fn new() -> Builder {
                Builder::default()
            }

            /// Names the thread.
            pub fn name(mut self, name: String) -> Builder {
                self.name = Some(name);
                self
            }

            /// Spawns the thread.
            pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
            where
                F: FnOnce() -> T + Send + 'static,
                T: Send + 'static,
            {
                match model::active() {
                    Some((ctl, _)) => {
                        let slot = Arc::new(std::sync::Mutex::new(None));
                        let slot2 = Arc::clone(&slot);
                        let tid = Controller::spawn(
                            &ctl,
                            self.name,
                            Box::new(move || {
                                let v = f();
                                *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                            }),
                        );
                        Ok(JoinHandle(Inner::Model { ctl, tid, slot }))
                    }
                    None => {
                        let mut b = std::thread::Builder::new();
                        if let Some(n) = self.name {
                            b = b.name(n);
                        }
                        b.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
                    }
                }
            }
        }

        /// Spawns a thread (see `std::thread::spawn`).
        pub fn spawn<F, T>(f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            Builder::new().spawn(f).expect("failed to spawn thread")
        }

        /// Yields the scheduler: a non-preemptive switch under the
        /// model, `std::thread::yield_now` otherwise.
        pub fn yield_now() {
            match model::active() {
                Some((ctl, _)) => ctl.yield_now(),
                None => std::thread::yield_now(),
            }
        }
    }

    /// Deterministic time under the model checker.
    pub mod time {
        use crate::model;
        use std::time::Duration;

        /// Monotonic instant: logical nanoseconds during a model run
        /// (advanced only when a timed wait fires), real monotonic
        /// time otherwise.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct Instant(u64);

        impl Instant {
            /// The current instant.
            pub fn now() -> Instant {
                Instant(model::now_ns())
            }

            /// Time elapsed since this instant (zero if in the future).
            pub fn elapsed(&self) -> Duration {
                Instant::now().saturating_duration_since(*self)
            }

            /// `self - earlier`, saturating at zero.
            pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
                Duration::from_nanos(self.0.saturating_sub(earlier.0))
            }

            /// `self - earlier`, `None` if `earlier` is later.
            pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
                self.0.checked_sub(earlier.0).map(Duration::from_nanos)
            }

            /// `self - earlier`; panics if `earlier` is later.
            pub fn duration_since(&self, earlier: Instant) -> Duration {
                self.checked_duration_since(earlier)
                    .expect("supplied instant is later than self")
            }
        }

        impl std::ops::Add<Duration> for Instant {
            type Output = Instant;
            fn add(self, rhs: Duration) -> Instant {
                Instant(
                    self.0
                        .saturating_add(u64::try_from(rhs.as_nanos()).unwrap_or(u64::MAX)),
                )
            }
        }

        impl std::ops::Sub<Instant> for Instant {
            type Output = Duration;
            fn sub(self, rhs: Instant) -> Duration {
                self.duration_since(rhs)
            }
        }
    }
}
