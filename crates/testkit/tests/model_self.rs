//! Self-tests for the bounded-preemption model checker: seeded bugs it
//! must catch, correct protocols it must pass, and schedule-count
//! assertions proving the DFS explores the space the bound claims.
//!
//! Compiled only under `--cfg cosbt_model` (see `.github/workflows/ci.yml`
//! for the invocation).
#![cfg(cosbt_model)]

use cosbt_testkit::model::{check, check_expect_failure, check_opts, ModelOpts};
use cosbt_testkit::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use cosbt_testkit::sync::{thread, Arc, Condvar, Mutex};

/// The canonical seeded bug: a read-modify-write race built from a
/// Relaxed load + store. The DFS must find the lost-update schedule.
#[test]
fn racy_counter_is_caught() {
    let (report, msg) = check_expect_failure(ModelOpts::bound(2), || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    // ordering: deliberately racy — load/store instead of
                    // fetch_add; the checker must catch the lost update.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2, "lost update");
    });
    assert!(
        msg.contains("lost update"),
        "unexpected failure message: {msg}"
    );
    // The failing schedule must be found strictly after the first
    // (non-preemptive) execution, which is correct.
    assert!(report.schedules > 1, "found too easily: {report:?}");
}

/// The fixed version of the same counter passes the identical space.
#[test]
fn atomic_counter_passes() {
    check(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    // ordering: the count is the only shared state; no
                    // other memory is published via this atomic.
                    counter.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
}

/// Message passing through a Relaxed flag must fail: nothing orders
/// the data store before the flag store.
#[test]
fn relaxed_message_passing_is_caught() {
    let (_report, msg) = check_expect_failure(ModelOpts::bound(2), || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            // ordering: deliberately wrong — Relaxed publish.
            f2.store(true, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale read");
        }
        t.join().unwrap();
    });
    assert!(msg.contains("stale read"), "unexpected failure: {msg}");
}

/// The same protocol with a Release publish and Acquire consume is
/// correct and must pass the whole space.
#[test]
fn release_acquire_message_passing_passes() {
    check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            // ordering: Release publishes the data store above.
            f2.store(true, Ordering::Release);
        });
        // ordering: Acquire pairs with the Release store of the flag.
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
}

fn peterson(flag_order: Ordering) {
    // Peterson's mutual-exclusion protocol for two threads; correct
    // under sequential consistency, broken under anything weaker.
    let flags = Arc::new([AtomicBool::new(false), AtomicBool::new(false)]);
    let turn = Arc::new(AtomicU64::new(0));
    let in_cs = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..2u64)
        .map(|i| {
            let flags = Arc::clone(&flags);
            let turn = Arc::clone(&turn);
            let in_cs = Arc::clone(&in_cs);
            thread::spawn(move || {
                let me = i as usize;
                let other = 1 - me;
                flags[me].store(true, flag_order);
                turn.store(other as u64, flag_order);
                while flags[other].load(flag_order) && turn.load(flag_order) == other as u64 {
                    thread::yield_now();
                }
                // ordering: SeqCst so the occupancy check itself cannot race.
                assert_eq!(
                    in_cs.fetch_add(1, Ordering::SeqCst),
                    0,
                    "mutual exclusion violated"
                );
                in_cs.fetch_sub(1, Ordering::SeqCst);
                flags[me].store(false, flag_order);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Peterson under SeqCst is correct; the checker must pass it.
#[test]
fn peterson_seqcst_passes() {
    check_opts(ModelOpts::bound(2), || peterson(Ordering::SeqCst));
}

/// Peterson with Relaxed flags lets both threads into the critical
/// section; the checker must find it.
#[test]
fn peterson_relaxed_is_caught() {
    let (_report, msg) = check_expect_failure(ModelOpts::bound(2), || peterson(Ordering::Relaxed));
    assert!(
        msg.contains("mutual exclusion violated"),
        "unexpected failure: {msg}"
    );
}

/// Mutexes provide both exclusion and happens-before: a plain counter
/// under a shim Mutex is correct.
#[test]
fn mutex_counter_passes() {
    check(|| {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    *counter.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
}

/// ABBA lock ordering deadlocks; the checker must report it rather
/// than hang.
#[test]
fn abba_deadlock_is_caught() {
    let (_report, msg) = check_expect_failure(ModelOpts::bound(2), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop(_ga);
        drop(_gb);
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

/// Condvar handoff: consumer waits for a produced value; no lost
/// wakeups, no deadlock, all schedules pass.
#[test]
fn condvar_handoff_passes() {
    check(|| {
        let slot = Arc::new((Mutex::new(None::<u64>), Condvar::new()));
        let s2 = Arc::clone(&slot);
        let t = thread::spawn(move || {
            let (m, cv) = &*s2;
            *m.lock().unwrap() = Some(7);
            cv.notify_one();
        });
        let (m, cv) = &*slot;
        let mut g = m.lock().unwrap();
        while g.is_none() {
            g = cv.wait(g).unwrap();
        }
        assert_eq!(*g, Some(7));
        drop(g);
        t.join().unwrap();
    });
}

/// A single-threaded closure has exactly one schedule: no decision
/// points, nothing to explore.
#[test]
fn single_thread_explores_one_schedule() {
    let report = check(|| {
        let x = AtomicU64::new(1);
        x.store(2, Ordering::SeqCst);
        assert_eq!(x.load(Ordering::SeqCst), 2);
    });
    assert_eq!(report.schedules, 1);
}

fn two_thread_workload() {
    let a = Arc::new(AtomicU64::new(0));
    let a2 = Arc::clone(&a);
    let t = thread::spawn(move || {
        // ordering: self-test workload; values are irrelevant.
        a2.store(1, Ordering::SeqCst);
        a2.store(2, Ordering::SeqCst);
    });
    a.store(3, Ordering::SeqCst);
    t.join().unwrap();
}

/// Raising the preemption bound strictly widens the explored space on
/// a program that has preemption-sensitive interleavings, and the
/// growth is reproducible (the DFS is deterministic).
#[test]
fn preemption_bound_widens_search() {
    let s0 = check_opts(ModelOpts::bound(0), two_thread_workload).schedules;
    let s1 = check_opts(ModelOpts::bound(1), two_thread_workload).schedules;
    let s2 = check_opts(ModelOpts::bound(2), two_thread_workload).schedules;
    assert!(
        s0 < s1 && s1 < s2,
        "preemption bound did not widen the space: {s0} / {s1} / {s2}"
    );
    // Determinism: the same exploration again lands on the same counts.
    assert_eq!(
        s2,
        check_opts(ModelOpts::bound(2), two_thread_workload).schedules
    );
}

/// The schedule budget is a hard error, never a silent truncation.
#[test]
fn schedule_budget_exhaustion_is_loud() {
    let opts = ModelOpts {
        max_schedules: 2,
        ..ModelOpts::bound(2)
    };
    let (_report, msg) = check_expect_failure(opts, two_thread_workload);
    assert!(msg.contains("schedule budget"), "unexpected failure: {msg}");
}
