//! Stress tests of the deamortized COLAs' scheduling machinery: the
//! Lemma 21 / Lemma 23 guarantees under long mixed workloads, pause/burst
//! patterns, and query storms between inserts.

use cosbt_core::{DeamortBasicCola, DeamortCola, Dictionary};

#[test]
fn long_run_no_adjacent_unsafe_and_budget_holds() {
    let mut db = DeamortBasicCola::new_plain();
    let mut dc = DeamortCola::new_plain();
    for i in 0..200_000u64 {
        let k = i.wrapping_mul(0x9E3779B97F4A7C15);
        db.insert(k, i);
        dc.insert(k, i);
        if i % 8192 == 8191 {
            db.check_invariants();
            dc.check_invariants();
        }
    }
    let lv = db.num_levels() as u64;
    assert!(db.max_moves_per_insert() <= 2 * lv + 2);
    let lv = dc.num_levels() as u64;
    assert!(dc.max_moves_per_insert() <= 6 * lv + 16);
}

#[test]
fn queries_between_every_insert() {
    // Queries must never observe a half-merged state (Theorem 24's whole
    // point): interleave a read storm with the incremental mover.
    let mut dc = DeamortCola::new_plain();
    let mut model = std::collections::BTreeMap::new();
    for i in 0..4_000u64 {
        let k = (i * 37) % 1024;
        dc.insert(k, i);
        model.insert(k, i);
        // Probe a moving window of keys after every single insert.
        for probe in [k, (k + 512) % 1024, 0, 1023] {
            assert_eq!(
                dc.get(probe),
                model.get(&probe).copied(),
                "probe {probe} after insert {i}"
            );
        }
    }
}

#[test]
fn burst_then_idle_then_burst() {
    // The mover only runs on inserts; after a burst the structure must be
    // consistent even though merges may be parked mid-way, and the next
    // burst must pick them up.
    let mut dc = DeamortCola::new_plain();
    let mut model = std::collections::BTreeMap::new();
    let mut i = 0u64;
    for burst in 0..20u64 {
        let size = 1 << (burst % 10);
        for _ in 0..size {
            let k = i.wrapping_mul(6364136223846793005) % 4096;
            dc.insert(k, i);
            model.insert(k, i);
            i += 1;
        }
        // "Idle": only queries.
        for probe in (0..4096u64).step_by(97) {
            assert_eq!(dc.get(probe), model.get(&probe).copied());
        }
        dc.check_invariants();
    }
}

#[test]
fn deamortized_matches_amortized_content_forever() {
    use cosbt_core::BasicCola;
    let mut a = BasicCola::new_plain();
    let mut db = DeamortBasicCola::new_plain();
    let mut dc = DeamortCola::new_plain();
    let mut x = 17u64;
    for i in 0..30_000u64 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = x % 10_000;
        if x.is_multiple_of(11) {
            a.delete(k);
            db.delete(k);
            dc.delete(k);
        } else {
            a.insert(k, i);
            db.insert(k, i);
            dc.insert(k, i);
        }
    }
    let want = a.range(0, u64::MAX);
    assert_eq!(db.range(0, u64::MAX), want);
    assert_eq!(dc.range(0, u64::MAX), want);
}

#[test]
fn worst_case_stays_flat_while_amortized_spikes_grow() {
    // As N doubles, the amortized worst case doubles (full merges) while
    // the deamortized worst case grows only logarithmically.
    use cosbt_core::BasicCola;
    let mut last_amort_worst = 0;
    let mut last_deamort_worst = 0;
    for exp in [12u32, 14, 16] {
        let n = 1u64 << exp;
        let mut a = BasicCola::new_plain();
        let mut d = DeamortBasicCola::new_plain();
        for i in 0..n {
            a.insert(i, i);
            d.insert(i, i);
        }
        let aw = a.stats().max_cells_per_insert;
        let dw = d.max_moves_per_insert();
        if last_amort_worst > 0 {
            assert!(
                aw >= last_amort_worst * 3,
                "amortized worst should ~4x: {aw}"
            );
            assert!(
                dw <= last_deamort_worst + 8,
                "deamortized worst should grow additively: {dw} vs {last_deamort_worst}"
            );
        }
        last_amort_worst = aw;
        last_deamort_worst = dw;
    }
}
