//! Transfer-count contracts for the fractional-cascading read path,
//! measured in the DAM simulator:
//!
//! 1. **Filtered levels cost zero reads.** A cold miss that every
//!    level's fences or filter rejects must complete without touching a
//!    single data page — the whole point of keeping the accelerators in
//!    main memory.
//! 2. **Golden get-phase counts.** A fixed seed, a fixed structure, and
//!    a fixed probe set pin the *exact* number of block fetches for the
//!    cascaded and the plain search path, in debug and release alike.
//!    If a change moves these numbers, it changed the read path's I/O
//!    behaviour and must update the goldens consciously.

use cosbt_core::entry::Cell;
use cosbt_core::{BasicCola, DeamortBasicCola, DeamortCola, Dictionary, GCola};
use cosbt_dam::{new_shared_sim, CacheConfig, SharedSim, SimMem};

const BLOCK: usize = 4096;
const N: u64 = (1 << 14) - 1;

fn sim_and_mem(blocks_in_mem: usize) -> (SharedSim, SimMem<Cell>) {
    let sim = new_shared_sim(CacheConfig::new(BLOCK, blocks_in_mem));
    let mem: SimMem<Cell> = SimMem::with_elem_bytes(sim.clone(), 32);
    (sim, mem)
}

/// Deterministic odd keys: every even value is a guaranteed miss.
fn key(i: u64) -> u64 {
    i.wrapping_mul(0x9E3779B97F4A7C15) | 1
}

fn fill(d: &mut dyn Dictionary) {
    for i in 0..N {
        d.insert(key(i), i);
    }
}

fn cold(sim: &SharedSim) {
    sim.borrow_mut().drop_cache();
    sim.borrow_mut().reset_stats();
}

fn fetches(sim: &SharedSim) -> u64 {
    sim.borrow().stats().fetches
}

/// Every structure in the COLA family: a cold probe beyond the global
/// key range is rejected by the per-level fence keys alone and performs
/// **zero** data-page reads; a cold in-range miss that the filters
/// reject on every level likewise reads nothing from any level.
#[test]
fn filtered_misses_read_zero_pages() {
    type Build = fn(SimMem<Cell>) -> Box<dyn Dictionary>;
    let builds: [(&str, Build); 4] = [
        ("basic", |m| Box::new(BasicCola::new(m))),
        ("gcola", |m| Box::new(GCola::new(m, 2, 0.125))),
        ("deamort-basic", |m| Box::new(DeamortBasicCola::new(m))),
        ("deamort-gcola", |m| Box::new(DeamortCola::new(m))),
    ];
    for (name, build) in builds {
        let (sim, mem) = sim_and_mem(8);
        let mut d = build(mem);
        fill(d.as_mut());

        // Beyond-the-fences probes: min-1 side and max+1 side. All keys
        // are odd multiples of the golden ratio, so 0 and u64::MAX are
        // out of range on every level.
        cold(&sim);
        for i in 0..64u64 {
            assert_eq!(d.get(u64::MAX - 2 * i), None);
            assert_eq!(d.get(0), None);
        }
        assert_eq!(
            fetches(&sim),
            0,
            "{name}: beyond-fence misses must not read data pages"
        );

        // In-range misses (even keys land between the odd stored keys):
        // the filters reject the overwhelming majority outright. Probes
        // that every level rejected must not have read anything, and at
        // the configured 1% FP rate at least 90% of probes must be in
        // that bucket.
        cold(&sim);
        let mut fully_filtered = 0u64;
        let mut before = 0u64;
        for i in 0..256u64 {
            let p = key(N + i) & !1;
            assert_eq!(d.get(p), None, "{name}: probe {p} is a miss");
            let after = fetches(&sim);
            if after == before {
                fully_filtered += 1;
            }
            before = after;
        }
        assert!(
            fully_filtered >= 230,
            "{name}: only {fully_filtered}/256 cold misses were fully \
             filtered (expected ≥ 230 at a 1% FP target)"
        );
    }
}

/// Golden numbers for the get phase: 256 cold probes (128 hits + 128
/// misses) against a 2-COLA and a basic COLA holding `N` keys, with the
/// cascade on and off. The simulator is deterministic, the workload is
/// seeded, and the counts are byte-exact in debug and release builds.
#[test]
fn golden_get_phase_fetch_counts() {
    fn run<D: Dictionary>(mut d: D, sim: &SharedSim) -> u64 {
        fill(&mut d);
        cold(sim);
        for i in 0..128u64 {
            assert_eq!(d.get(key(i * 97 % N)), Some(i * 97 % N), "hit probe");
            assert_eq!(d.get(key(N + i) & !1), None, "miss probe");
        }
        fetches(sim)
    }

    let (sim, mem) = sim_and_mem(8);
    let gcola_on = run(GCola::new(mem, 2, 0.125), &sim);

    let (sim, mem) = sim_and_mem(8);
    let mut g = GCola::new(mem, 2, 0.125);
    g.set_cascade(false);
    let gcola_off = run(g, &sim);

    let (sim, mem) = sim_and_mem(8);
    let basic_on = run(BasicCola::new(mem), &sim);

    let (sim, mem) = sim_and_mem(8);
    let mut b = BasicCola::new(mem);
    b.set_cascade(false);
    let basic_off = run(b, &sim);

    assert!(
        gcola_on < gcola_off && basic_on < basic_off,
        "cascade must strictly reduce cold get fetches: \
         gcola {gcola_on} vs {gcola_off}, basic {basic_on} vs {basic_off}"
    );

    // The golden pins. An intentional read-path change updates these in
    // the same commit, with the new numbers justified in the message.
    assert_eq!(
        (gcola_on, gcola_off, basic_on, basic_off),
        (GOLD_GCOLA_ON, GOLD_GCOLA_OFF, GOLD_BASIC_ON, GOLD_BASIC_OFF),
        "get-phase fetch counts moved"
    );
}

const GOLD_GCOLA_ON: u64 = 132;
const GOLD_GCOLA_OFF: u64 = 1668;
const GOLD_BASIC_ON: u64 = 131;
const GOLD_BASIC_OFF: u64 = 5870;
