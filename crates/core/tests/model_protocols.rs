//! Model-checked protocol tests for the MVCC core: epoch
//! pin/publish/retire races and `WorkerPool` shutdown races, explored
//! exhaustively up to the preemption bound by the deterministic
//! scheduler in `cosbt_testkit::model`.
//!
//! Compiled only under `--cfg cosbt_model` (see `.github/workflows/ci.yml`
//! for the invocation and expected runtimes).
#![cfg(cosbt_model)]

use cosbt_core::epoch::Run;
use cosbt_core::{EpochManager, WorkerPool};
use cosbt_testkit::model::{check_opts, ModelOpts};
use cosbt_testkit::sync::atomic::{AtomicBool, Ordering};
use cosbt_testkit::sync::{thread, Arc, Condvar, Mutex};
use std::time::Duration;

/// A reader pins an epoch while a writer concurrently publishes a
/// replacement run (retiring the one the reader may hold). In every
/// interleaving the pinned reads must be repeatable, the value must be
/// one of the two committed states (never torn), and once the pin is
/// gone every retired run must be reclaimed.
#[test]
fn epoch_pin_publish_retire_is_safe() {
    let report = check_opts(ModelOpts::bound(2), || {
        let mgr = EpochManager::new();
        let run_a = Run::from_ops(vec![(1, Some(10))]);
        mgr.publish_with(|cur| Some((vec![run_a.clone()], cur.store_epochs_arc())))
            .expect("initial publish is unconditional");
        let mgr2 = Arc::clone(&mgr);
        let reader = thread::spawn(move || {
            let pin = mgr2.pin();
            let first = pin.get(1);
            let second = pin.get(1);
            assert_eq!(first, second, "repeatable read under pin");
            assert!(
                first == Some(10) || first == Some(20),
                "torn value observed: {first:?}"
            );
        });
        // Replace the stack wholesale: retires `run_a` under the old
        // seq; the reader's pin (if it raced ahead) parks it.
        let run_b = Run::from_ops(vec![(1, Some(20))]);
        mgr.publish_with(|cur| Some((vec![run_b.clone()], cur.store_epochs_arc())))
            .expect("replacement publish is unconditional");
        reader.join().unwrap();
        // The reader's unpin ran `collect` (or the publish did, if the
        // pin was already gone): nothing may remain parked.
        let s = mgr.stats();
        assert_eq!(s.pinned_epochs, 0);
        assert_eq!(s.retired_pending, 0, "retired runs reclaimed once unpinned");
        assert_eq!(s.reclaimed_runs, s.retired_runs);
        assert_eq!(mgr.current().get(1), Some(20));
    });
    assert!(
        report.preemption_bound >= 2 && report.schedules > 1,
        "expected a real exploration: {report:?}"
    );
}

/// `WorkerPool::shutdown` straggler handling: a worker stuck in its
/// current job forces the timeout path, which must (a) report exactly
/// the stuck worker, and (b) clear the queue so the *queued* job can
/// never run after the caller has moved on — in every interleaving.
/// This pins the fix for the detached-straggler bug where a worker
/// finishing late could pick up another queued job against
/// already-torn-down state.
#[test]
fn shutdown_timeout_drops_queued_jobs_in_every_schedule() {
    let report = check_opts(ModelOpts::bound(2), || {
        let pool = WorkerPool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.submit(move || {
            let (m, cv) = &*g;
            let mut open = m.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        let second_ran = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&second_ran);
        pool.submit(move || {
            // ordering: pure test flag, read only after shutdown
            // returns (synchronized by the pool mutex).
            s2.store(true, Ordering::Relaxed);
        });
        // The lone worker is either gated inside job 1 or has not yet
        // started; either way it cannot exit before the deadline, so
        // shutdown must time out and detach it in every schedule.
        let res = pool.shutdown(Duration::from_millis(10));
        assert_eq!(res, Err(1), "the gated worker is detached, never joined");
        // ordering: see the store above.
        assert!(
            !second_ran.load(Ordering::Relaxed),
            "a queued-but-unstarted job ran after shutdown returned"
        );
        // Open the gate so the detached worker can finish and the
        // execution terminates (mirrors real teardown where the job's
        // blocking resource is released later).
        let (m, cv) = &*gate;
        *m.lock().unwrap() = true;
        cv.notify_all();
    });
    assert!(
        report.preemption_bound >= 2 && report.schedules > 1,
        "expected a real exploration: {report:?}"
    );
}

/// Shutdown racing an in-flight job: the model explores both the clean
/// join and the timeout/detach outcome (timed waits are always
/// schedulable via their deadline). A clean `Ok` must imply the job
/// completed; a timeout must report exactly one straggler.
#[test]
fn shutdown_vs_inflight_job_is_sound_in_both_outcomes() {
    // Outcome flags are *plain std* atomics on purpose: they record
    // which branches the exploration witnessed across executions, and
    // must not themselves become schedule points.
    let saw_ok = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let saw_err = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let (ok_c, err_c) = (Arc::clone(&saw_ok), Arc::clone(&saw_err));
    let report = check_opts(ModelOpts::bound(2), move || {
        let pool = WorkerPool::new(1);
        let ran = Arc::new(AtomicBool::new(false));
        let r = Arc::clone(&ran);
        pool.submit(move || {
            // ordering: pure test flag; the `Ok` path below reads it
            // only after joining the worker thread.
            r.store(true, Ordering::Relaxed);
        });
        match pool.shutdown(Duration::from_secs(60)) {
            Ok(()) => {
                // ordering: see the store above.
                assert!(
                    ran.load(Ordering::Relaxed),
                    "clean shutdown implies the submitted job ran"
                );
                // ordering: cross-execution bookkeeping, not modeled.
                ok_c.store(true, Ordering::Relaxed);
            }
            Err(n) => {
                assert_eq!(n, 1, "exactly the lone worker may straggle");
                // ordering: cross-execution bookkeeping, not modeled.
                err_c.store(true, Ordering::Relaxed);
            }
        }
    });
    // ordering: read after `check_opts` returns; executions are serial.
    assert!(
        saw_ok.load(Ordering::Relaxed),
        "no schedule reached the clean-join outcome"
    );
    assert!(
        saw_err.load(Ordering::Relaxed),
        "no schedule reached the timeout/detach outcome"
    );
    assert!(
        report.preemption_bound >= 2 && report.schedules > 1,
        "expected a real exploration: {report:?}"
    );
}
