//! Regression: the reopen path must validate the cascade accelerators it
//! rebuilds. `from_parts` rebuilds each sealed level's [`LevelAux`] from
//! the committed cells and runs `LevelAux::check` on it — so a store
//! whose cells were corrupted between commit and reopen surfaces as a
//! typed `MetaError`, never as a silently wrong search window.

use cosbt_core::{BasicCola, Cell, Dictionary, Persist};
use cosbt_dam::{Mem, PlainMem};

/// A 128-insert basic COLA: level 7 is full, so the tail 128 cells of
/// the store are one sorted sealed array with ghost samples every 8.
fn sealed_cola() -> (PlainMem<Cell>, Vec<u8>) {
    let mut cola = BasicCola::new(PlainMem::new());
    for i in 0..128u64 {
        cola.insert(i * 3 + 1, i);
    }
    let meta = cola.save_meta();
    (cola.mem().clone(), meta)
}

#[test]
fn reopen_accepts_intact_cells() {
    let (mem, meta) = sealed_cola();
    let mut reopened = BasicCola::from_parts(mem, &meta).expect("intact store reopens");
    reopened.check_invariants();
    assert_eq!(reopened.get(1), Some(0));
    assert_eq!(reopened.get(3 * 127 + 1), Some(127));
}

#[test]
fn reopen_rejects_corrupted_sample_cells() {
    let (mem, meta) = sealed_cola();
    // Swap two interior ghost-sampled cells of the sealed level (stride
    // 8 ⇒ in-level offsets 8 and 80 are both sample points). The level's
    // first and last cells — its fence keys — are untouched, so the
    // persisted-fence cross-check cannot catch this; only the rebuilt
    // aux's own `check` (sorted ghost samples) can.
    let base = mem.len() - 128;
    let mut bad = mem;
    let (a, b) = (bad.get(base + 8), bad.get(base + 80));
    bad.set(base + 8, b);
    bad.set(base + 80, a);
    let err = BasicCola::from_parts(bad, &meta).expect_err("corrupt samples must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("cascade state"),
        "error should name the cascade validation, got: {msg}"
    );
}

#[test]
fn reopen_then_veb_toggle_builds_validated_mirrors() {
    // Enough cells that the sealed top level's ghost sample crosses
    // VEB_MIN_GHOSTS — below that the toggle deliberately leaves the
    // flat search in place.
    let n = (cosbt_core::cascade::VEB_MIN_GHOSTS * cosbt_core::cascade::GHOST_STRIDE) as u64;
    let mut cola = BasicCola::new(PlainMem::new());
    for i in 0..n {
        cola.insert(i * 3 + 1, i);
    }
    let meta = cola.save_meta();
    let mut reopened =
        BasicCola::from_parts(cola.mem().clone(), &meta).expect("intact store reopens");
    // Enabling the vEB layout after reopen rebuilds the DRAM mirrors
    // from the ghost samples; check_invariants re-runs LevelAux::check,
    // which now cross-validates every mirror against its flat array.
    reopened.set_veb_layout(true);
    reopened.check_invariants();
    assert_eq!(reopened.get(3 * (n / 2) + 1), Some(n / 2));
    assert_eq!(reopened.get(2), None);
    reopened.set_veb_layout(false);
    reopened.check_invariants();
}
