//! Edge-case and property tests for the g-COLA beyond the unit suite:
//! boundary keys, pathological pointer densities, compaction behaviour,
//! and equivalence of the windowed search with an exhaustive scan.

use cosbt_core::entry::Cell;
use cosbt_core::{Dictionary, GCola};
use cosbt_dam::PlainMem;
use cosbt_testkit::{check_cases, Rng};

fn plain(g: usize, p: f64) -> GCola<PlainMem<Cell>> {
    GCola::new(PlainMem::new(), g, p)
}

#[test]
fn boundary_keys_u64_min_max() {
    let mut c = plain(2, 0.125);
    c.insert(0, 100);
    c.insert(u64::MAX, 200);
    c.insert(u64::MAX - 1, 300);
    for filler in 1..2000u64 {
        c.insert(filler * 2, filler);
    }
    assert_eq!(c.get(0), Some(100));
    assert_eq!(c.get(u64::MAX), Some(200));
    assert_eq!(c.get(u64::MAX - 1), Some(300));
    let top = c.range(u64::MAX - 1, u64::MAX);
    assert_eq!(top, vec![(u64::MAX - 1, 300), (u64::MAX, 200)]);
    c.check_invariants();
}

#[test]
fn all_same_key_hammering() {
    // Every insert shadows the previous one; the structure grows but the
    // map stays a single live key.
    let mut c = plain(4, 0.1);
    for i in 0..10_000u64 {
        c.insert(7, i);
    }
    assert_eq!(c.get(7), Some(9_999));
    assert_eq!(c.range(0, u64::MAX), vec![(7, 9_999)]);
    c.compact();
    assert_eq!(c.physical_len(), 1);
    assert_eq!(c.get(7), Some(9_999));
}

#[test]
fn delete_then_reinsert_cycles() {
    let mut c = plain(2, 0.125);
    for round in 0..50u64 {
        for k in 0..100u64 {
            c.insert(k, round * 1000 + k);
        }
        for k in (0..100u64).step_by(2) {
            c.delete(k);
        }
        for k in 0..100u64 {
            let want = if k % 2 == 0 {
                None
            } else {
                Some(round * 1000 + k)
            };
            assert_eq!(c.get(k), want, "round {round} key {k}");
        }
    }
    c.check_invariants();
}

#[test]
fn compact_empty_and_all_tombstones() {
    let mut c = plain(2, 0.125);
    c.compact(); // compacting empty is a no-op
    assert_eq!(c.physical_len(), 0);
    for k in 0..200u64 {
        c.insert(k, k);
    }
    for k in 0..200u64 {
        c.delete(k);
    }
    c.compact();
    assert_eq!(c.physical_len(), 0, "all-tombstone compaction empties");
    assert_eq!(c.get(5), None);
    c.insert(1, 1);
    assert_eq!(c.get(1), Some(1));
}

#[test]
fn extreme_growth_factor() {
    // A very large g behaves like a two-level structure.
    let mut c = plain(64, 0.05);
    for i in 0..20_000u64 {
        c.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
    }
    c.check_invariants();
    for i in (0..20_000u64).step_by(371) {
        assert_eq!(c.get(i.wrapping_mul(0x9E3779B97F4A7C15)), Some(i));
    }
    assert!(
        c.num_levels() <= 4,
        "g=64 should stay shallow: {}",
        c.num_levels()
    );
}

/// The windowed lookahead search agrees with the recency semantics on
/// arbitrary duplicate-heavy streams.
#[test]
fn windowed_search_agrees_with_model() {
    check_cases("windowed_search_agrees_with_model", 48, |rng: &mut Rng| {
        let keys = rng.vec_below(1, 500, 32);
        let probe = rng.below(40);
        let mut c = plain(2, 0.25);
        let mut model = std::collections::BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            c.insert(k, i as u64);
            model.insert(k, i as u64);
        }
        assert_eq!(c.get(probe), model.get(&probe).copied());
    });
}

/// Compaction preserves exactly the live content.
#[test]
fn compact_preserves_content() {
    check_cases("compact_preserves_content", 48, |rng: &mut Rng| {
        let len = 1 + rng.index(299);
        let mut c = plain(4, 0.1);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..len {
            let (ins, k, v) = (rng.flag(), rng.below(64), rng.next_u64());
            if ins {
                c.insert(k, v);
                model.insert(k, v);
            } else {
                c.delete(k);
                model.remove(&k);
            }
        }
        let before: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        c.compact();
        assert_eq!(c.range(0, u64::MAX), before);
        assert_eq!(c.physical_len(), model.len());
        c.check_invariants();
    });
}

/// Level occupancy accounting never drifts: the sum of per-level item
/// counts equals inserts (without compaction, nothing is dropped).
#[test]
fn physical_len_equals_operations() {
    check_cases("physical_len_equals_operations", 48, |rng: &mut Rng| {
        let n = rng.range(1, 2000);
        let mut c = plain(2, 0.125);
        for i in 0..n {
            c.insert(i, i);
        }
        assert_eq!(c.physical_len() as u64, n);
        assert_eq!(c.insertions(), n);
    });
}
