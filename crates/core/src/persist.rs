//! The structure ↔ store persistence boundary.
//!
//! Every dictionary in the workspace keeps two kinds of state: bulk data
//! living in its storage backend (cells in a [`cosbt_dam::Mem`], nodes in
//! a [`cosbt_dam::PageStore`]) and *control state* living in RAM — COLA
//! level occupancy, a B-tree's root page id, a BRT's root and counters.
//! Durability means both survive: the dam layer commits the bulk data and
//! an opaque payload shadow-style (see `cosbt_dam::file`), and this module
//! defines what goes into that payload.
//!
//! [`Persist::save_meta`] serializes the control state into a versioned,
//! tag-prefixed byte string; each structure pairs it with an inherent
//! `from_parts(store, meta)` constructor that validates and rebuilds the
//! structure over an already-populated store. The encoding is explicit
//! little-endian via [`MetaWriter`]/[`MetaReader`] — no `unsafe`, no
//! serde — and every field read is bounds-checked so a corrupt or
//! mismatched payload yields a [`MetaError`], never a panic or a
//! mis-shaped structure.
//!
//! The deamortized COLAs carry in-flight incremental merge state whose
//! size is proportional to the level being merged; rather than persist a
//! half-finished merge, their `save_meta` first *quiesces* — drives all
//! in-flight merges to completion. That preserves logical contents
//! exactly and makes the saved state a clean checkpoint; the worst-case
//! per-insert bound applies between checkpoints, not across one (a sync
//! is an O(data) event anyway).

/// Serializes a dictionary's control state for the storage layer's
/// metadata commit. Implemented by every structure in the workspace; the
/// matching deserializer is the structure's inherent
/// `from_parts(store, meta)` constructor (not part of the trait — it
/// returns `Self` and therefore cannot be object-safe).
///
/// Takes `&mut self` because implementations may complete in-flight
/// incremental work (quiescing) before serializing; the dictionary's
/// logical contents are never changed.
pub trait Persist {
    /// The structure's control state as a versioned, self-describing byte
    /// string (first byte: structure tag, second: format version).
    fn save_meta(&mut self) -> Vec<u8>;
}

/// Structure tag of [`crate::BasicCola`] metadata.
pub const TAG_BASIC_COLA: u8 = 1;
/// Structure tag of [`crate::GCola`] metadata.
pub const TAG_GCOLA: u8 = 2;
/// Structure tag of [`crate::DeamortBasicCola`] metadata.
pub const TAG_DEAMORT_BASIC: u8 = 3;
/// Structure tag of [`crate::DeamortCola`] metadata.
pub const TAG_DEAMORT: u8 = 4;
/// Structure tag of the B-tree's metadata (`cosbt-btree`).
pub const TAG_BTREE: u8 = 5;
/// Structure tag of the BRT's metadata (`cosbt-brt`).
pub const TAG_BRT: u8 = 6;
/// Structure tag of the shuttle tree (memory-only; never restored).
pub const TAG_SHUTTLE: u8 = 7;

/// Human-readable name of a structure tag, for error messages.
pub fn tag_name(tag: u8) -> &'static str {
    match tag {
        TAG_BASIC_COLA => "basic-COLA",
        TAG_GCOLA => "g-COLA",
        TAG_DEAMORT_BASIC => "deamortized-basic-COLA",
        TAG_DEAMORT => "deamortized-COLA",
        TAG_BTREE => "B-tree",
        TAG_BRT => "BRT",
        TAG_SHUTTLE => "shuttle",
        _ => "unknown",
    }
}

/// Why decoding a structure's persisted control state failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetaError {
    /// The payload ended before the expected field.
    Truncated,
    /// The payload describes a different structure than the caller is
    /// reconstructing.
    WrongStructure {
        /// Tag found in the payload.
        found: u8,
        /// Tag the caller expected.
        expected: u8,
    },
    /// The payload's per-structure format version is not understood.
    BadVersion(u8),
    /// A decoded field violates a structural invariant (out-of-bounds
    /// offset, occupancy/insertion-count disagreement, …).
    Invalid(String),
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::Truncated => write!(f, "metadata payload truncated"),
            MetaError::WrongStructure { found, expected } => write!(
                f,
                "metadata belongs to {} (tag {found}), expected {} (tag {expected})",
                tag_name(*found),
                tag_name(*expected)
            ),
            MetaError::BadVersion(v) => write!(f, "unsupported structure metadata version {v}"),
            MetaError::Invalid(what) => write!(f, "invalid metadata: {what}"),
        }
    }
}

impl std::error::Error for MetaError {}

/// Little-endian metadata encoder. Counterpart of [`MetaReader`].
#[derive(Debug, Default)]
pub struct MetaWriter {
    buf: Vec<u8>,
}

impl MetaWriter {
    /// Starts a payload with the structure `tag` and format `version`.
    pub fn new(tag: u8, version: u8) -> MetaWriter {
        MetaWriter {
            buf: vec![tag, version],
        }
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.u8(v as u8)
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Appends an `f64` as its IEEE-754 bits.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// Appends an optional `usize`: presence byte, then the value.
    pub fn opt_usize(&mut self, v: Option<usize>) -> &mut Self {
        match v {
            Some(x) => self.bool(true).usize(x),
            None => self.bool(false),
        }
    }

    /// The finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian metadata decoder.
#[derive(Debug)]
pub struct MetaReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> MetaReader<'a> {
    /// Wraps a payload and validates its tag and version (version must
    /// equal `version` exactly; bump per structure when its layout
    /// changes).
    pub fn new(buf: &'a [u8], expected_tag: u8, version: u8) -> Result<MetaReader<'a>, MetaError> {
        let mut r = MetaReader { buf, pos: 0 };
        let tag = r.u8()?;
        if tag != expected_tag {
            return Err(MetaError::WrongStructure {
                found: tag,
                expected: expected_tag,
            });
        }
        let v = r.u8()?;
        if v != version {
            return Err(MetaError::BadVersion(v));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], MetaError> {
        if self.pos + n > self.buf.len() {
            return Err(MetaError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> Result<u8, MetaError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (strictly 0 or 1).
    pub fn bool(&mut self) -> Result<bool, MetaError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(MetaError::Invalid(format!("bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, MetaError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, MetaError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` (persisted as `u64`; must fit the platform).
    pub fn usize(&mut self) -> Result<usize, MetaError> {
        usize::try_from(self.u64()?).map_err(|_| MetaError::Invalid("usize overflow".into()))
    }

    /// Reads an `f64` from its IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, MetaError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an optional `usize` (presence byte, then the value).
    pub fn opt_usize(&mut self) -> Result<Option<usize>, MetaError> {
        if self.bool()? {
            Ok(Some(self.usize()?))
        } else {
            Ok(None)
        }
    }

    /// Asserts the payload is fully consumed (trailing garbage is a
    /// corruption signal, not slack).
    pub fn finish(self) -> Result<(), MetaError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(MetaError::Invalid(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Peeks the structure tag of a payload without consuming it (`None` for
/// an empty payload). The facade uses this to produce "file holds X,
/// builder asked for Y" errors before attempting reconstruction.
pub fn peek_tag(buf: &[u8]) -> Option<u8> {
    buf.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = MetaWriter::new(TAG_GCOLA, 1);
        w.u8(7)
            .bool(true)
            .u32(0xDEAD_BEEF)
            .u64(u64::MAX - 1)
            .usize(12345)
            .f64(0.125)
            .opt_usize(Some(9))
            .opt_usize(None);
        let buf = w.finish();
        assert_eq!(peek_tag(&buf), Some(TAG_GCOLA));
        let mut r = MetaReader::new(&buf, TAG_GCOLA, 1).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), 0.125);
        assert_eq!(r.opt_usize().unwrap(), Some(9));
        assert_eq!(r.opt_usize().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_mismatch_truncation_and_trailing() {
        let buf = MetaWriter::new(TAG_BTREE, 1).finish();
        assert_eq!(
            MetaReader::new(&buf, TAG_BRT, 1).unwrap_err(),
            MetaError::WrongStructure {
                found: TAG_BTREE,
                expected: TAG_BRT
            }
        );
        assert_eq!(
            MetaReader::new(&buf, TAG_BTREE, 2).unwrap_err(),
            MetaError::BadVersion(1)
        );
        let mut r = MetaReader::new(&buf, TAG_BTREE, 1).unwrap();
        assert_eq!(r.u64().unwrap_err(), MetaError::Truncated);
        assert_eq!(
            MetaReader::new(&[], TAG_BTREE, 1).unwrap_err(),
            MetaError::Truncated
        );

        let mut w = MetaWriter::new(TAG_BTREE, 1);
        w.u8(1);
        let buf = w.finish();
        let r = MetaReader::new(&buf, TAG_BTREE, 1).unwrap();
        assert!(matches!(r.finish(), Err(MetaError::Invalid(_))));
    }

    #[test]
    fn bad_bool_bytes_are_rejected() {
        let mut w = MetaWriter::new(TAG_BASIC_COLA, 1);
        w.u8(2);
        let buf = w.finish();
        let mut r = MetaReader::new(&buf, TAG_BASIC_COLA, 1).unwrap();
        assert!(matches!(r.bool(), Err(MetaError::Invalid(_))));
    }
}
