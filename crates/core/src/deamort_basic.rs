//! Partial deamortization of the basic COLA (Section 3, Lemma 21 /
//! Theorem 22).
//!
//! Each level k keeps **two** arrays of size `2^k`. A level is *unsafe*
//! while it holds exactly `2^{k+1}` items (both arrays full) and becomes
//! safe when both arrays empty. Each insertion places the new item in
//! level 0 and then scans the levels left to right, continuing the merges
//! of unsafe levels into the next level, stopping after moving `m = 2k + 2`
//! items (k = number of levels), which by Lemma 21 guarantees that two
//! adjacent levels are never simultaneously unsafe — so a free array always
//! exists to merge into. Worst-case insert cost drops from `O(N/B)` to
//! `O(log N)` while the amortized cost stays `O((log N)/B)`.
//!
//! Queries read completed (full) arrays only; a merge's destination is
//! invisible until the merge commits, and its sources stay readable until
//! then, so searches are never amortized against merges.

use cosbt_dam::{Mem, PlainMem};

use crate::cascade::{AuxBuilder, LevelAux};
use crate::cursor::{Run, RunMergeCursor};
use crate::dict::{Cursor, Dictionary};
use crate::entry::Cell;
use crate::persist::{MetaError, MetaReader, MetaWriter, Persist, TAG_DEAMORT_BASIC};
use crate::stats::ColaStats;

/// Per-structure metadata format version (see [`crate::persist`]).
/// Version 2 appends per-array cascade fence keys to version 1.
const META_VERSION: u8 = 2;

/// Which of a level's two arrays.
type Side = usize; // 0 or 1

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArrState {
    Empty,
    /// Holds `2^k` sorted items; `seq` orders recency within the level.
    Full {
        seq: u64,
    },
    /// Being written by an incoming merge; invisible to queries.
    Filling,
}

/// In-progress merge of level `k`'s two arrays into `dst` at level `k+1`.
#[derive(Debug, Clone, Copy)]
struct MergeState {
    dst_side: Side,
    /// Consumed prefix of source arrays 0 and 1.
    ia: usize,
    ib: usize,
    /// Cells written to the destination.
    w: usize,
}

/// Deamortized basic COLA over any [`Mem`] backend.
#[derive(Debug)]
pub struct DeamortBasicCola<M: Mem<Cell>> {
    mem: M,
    /// `state[k][side]`.
    state: Vec<[ArrState; 2]>,
    /// Merge progress for unsafe levels.
    merges: Vec<Option<MergeState>>,
    n: u64,
    seq: u64,
    stats: ColaStats,
    /// Largest number of cells moved by a single insert's mover pass.
    max_moves: u64,
    /// Per-array read accelerators, `aux[k][side]` in lockstep with
    /// `state` — `Some` exactly for `Full` arrays while `cascade` is on.
    aux: Vec<[Option<LevelAux>; 2]>,
    /// Incremental aux builders for in-flight merges, fed one cell per
    /// budgeted move and published when the destination array commits —
    /// the accelerator respects the deamortized per-insert move bound.
    merge_aux: Vec<Option<AuxBuilder>>,
    /// Whether searches use the cascade accelerators; the pre-cascade
    /// full-binary-search path stays behind this toggle for differential
    /// testing ([`DeamortBasicCola::set_cascade`]).
    cascade: bool,
    /// Whether array auxes carry a vEB-packed mirror of their ghost
    /// sample ([`DeamortBasicCola::set_veb_layout`]); off by default.
    veb: bool,
}

/// Offset of array `side` of level `k`: levels are packed contiguously,
/// each holding two arrays of `2^k`.
#[inline]
fn arr_off(k: usize, side: Side) -> usize {
    2 * ((1usize << k) - 1) + side * (1usize << k)
}

impl DeamortBasicCola<PlainMem<Cell>> {
    /// Over plain heap memory.
    pub fn new_plain() -> Self {
        Self::new(PlainMem::new())
    }
}

impl<M: Mem<Cell>> DeamortBasicCola<M> {
    /// Creates an empty deamortized basic COLA over `mem` (cleared).
    pub fn new(mut mem: M) -> Self {
        mem.resize(arr_off(1, 0), Cell::default());
        DeamortBasicCola {
            mem,
            state: vec![[ArrState::Empty; 2]],
            merges: vec![None],
            n: 0,
            seq: 0,
            stats: ColaStats::default(),
            max_moves: 0,
            aux: vec![[None, None]],
            merge_aux: vec![None],
            cascade: true,
            veb: false,
        }
    }

    /// Enables or disables the cascade read path (fences, filters, ghost
    /// windows). On by default; turning it off restores the pre-cascade
    /// full binary search per array — kept for differential tests and
    /// benchmarks. Re-enabling rebuilds the accelerators for committed
    /// arrays; an array mid-merge at that moment gets its aux rebuilt
    /// when it commits.
    pub fn set_cascade(&mut self, enabled: bool) {
        if enabled == self.cascade {
            return;
        }
        self.cascade = enabled;
        for k in 0..self.state.len() {
            self.merge_aux[k] = None;
            for side in 0..2 {
                if enabled && matches!(self.state[k][side], ArrState::Full { .. }) {
                    self.rebuild_aux(k, side);
                } else {
                    self.aux[k][side] = None;
                }
            }
        }
    }

    /// Whether the cascade read path is active.
    pub fn cascade_enabled(&self) -> bool {
        self.cascade
    }

    /// Enables or disables the vEB-packed ghost mirrors (off by
    /// default). Search results and block-transfer counts are identical
    /// either way, so the toggle can flip freely, including across
    /// reopens and mid-merge: committed arrays rebuild their mirrors
    /// from the in-DRAM samples now, and an in-flight merge picks up
    /// the current flag when it commits.
    pub fn set_veb_layout(&mut self, enabled: bool) {
        if enabled == self.veb {
            return;
        }
        self.veb = enabled;
        for aux in self.aux.iter_mut().flat_map(|s| s.iter_mut()).flatten() {
            aux.set_veb(enabled);
        }
    }

    /// Whether the vEB ghost mirrors are active.
    pub fn veb_layout_enabled(&self) -> bool {
        self.veb
    }

    /// Rebuilds the aux for array `(k, side)` by scanning its cells
    /// (used on reopen and when an array commits without an incremental
    /// builder; merges normally build the aux inline).
    fn rebuild_aux(&mut self, k: usize, side: Side) {
        let base = arr_off(k, side);
        let len = 1usize << k;
        let mut b = AuxBuilder::new(len);
        for i in 0..len {
            let c = self.mem.get(base + i);
            b.push(&c);
        }
        self.aux[k][side] = Some(b.finish().with_veb(self.veb));
    }

    /// Number of insert operations performed.
    pub fn insertions(&self) -> u64 {
        self.n
    }

    /// Number of levels allocated.
    pub fn num_levels(&self) -> usize {
        self.state.len()
    }

    /// Work counters.
    pub fn stats(&self) -> ColaStats {
        self.stats
    }

    /// Largest number of cells moved by any single insert — the worst-case
    /// bound Theorem 22 is about.
    pub fn max_moves_per_insert(&self) -> u64 {
        self.max_moves
    }

    /// Whether level `k` is unsafe (mid-merge).
    pub fn is_unsafe(&self, k: usize) -> bool {
        self.merges.get(k).is_some_and(|m| m.is_some())
    }

    fn ensure_level(&mut self, k: usize) {
        while self.state.len() <= k {
            self.state.push([ArrState::Empty; 2]);
            self.merges.push(None);
            self.aux.push([None, None]);
            self.merge_aux.push(None);
        }
        let need = arr_off(self.state.len(), 0);
        if self.mem.len() < need {
            self.mem.resize(need, Cell::default());
        }
    }

    /// Starts the merge of unsafe level `k` into a free array of `k+1`.
    fn begin_merge(&mut self, k: usize) {
        self.ensure_level(k + 1);
        let dst_side = (0..2)
            .find(|&s| self.state[k + 1][s] == ArrState::Empty)
            .expect("Lemma 21 violated: no free array in next level");
        self.state[k + 1][dst_side] = ArrState::Filling;
        self.merges[k] = Some(MergeState {
            dst_side,
            ia: 0,
            ib: 0,
            w: 0,
        });
        self.merge_aux[k] = self.cascade.then(|| AuxBuilder::new(1 << (k + 1)));
        self.stats.merges += 1;
    }

    /// Advances level `k`'s merge by at most `budget` moves; returns moves
    /// spent. Sources stay intact (readable) until commit.
    fn step_merge(&mut self, k: usize, budget: u64) -> u64 {
        let mut ms = match self.merges[k] {
            Some(ms) => ms,
            None => return 0,
        };
        let len = 1usize << k;
        // Tie-break: the newer source wins equal keys.
        let seq_of = |st: ArrState| match st {
            ArrState::Full { seq } => seq,
            _ => unreachable!("merging a non-full array"),
        };
        let newer_a = seq_of(self.state[k][0]) > seq_of(self.state[k][1]);
        let (a_base, b_base) = (arr_off(k, 0), arr_off(k, 1));
        let dst_base = arr_off(k + 1, ms.dst_side);
        let mut spent = 0u64;
        while spent < budget && (ms.ia < len || ms.ib < len) {
            let take_a = if ms.ia == len {
                false
            } else if ms.ib == len {
                true
            } else {
                let ka = self.mem.get(a_base + ms.ia).key;
                let kb = self.mem.get(b_base + ms.ib).key;
                ka < kb || (ka == kb && newer_a)
            };
            let v = if take_a {
                let v = self.mem.get(a_base + ms.ia);
                ms.ia += 1;
                v
            } else {
                let v = self.mem.get(b_base + ms.ib);
                ms.ib += 1;
                v
            };
            self.mem.set(dst_base + ms.w, v);
            // Feed the destination's incremental aux builder (O(1) per
            // move, so the deamortized budget is respected).
            if let Some(builder) = self.merge_aux[k].as_mut() {
                builder.push(&v);
            }
            ms.w += 1;
            spent += 1;
            self.stats.cells_written += 1;
        }
        if ms.ia == len && ms.ib == len {
            // Commit: destination becomes full, sources empty, level safe.
            let seq = seq_of(self.state[k][0]).max(seq_of(self.state[k][1]));
            self.state[k + 1][ms.dst_side] = ArrState::Full { seq };
            self.state[k][0] = ArrState::Empty;
            self.state[k][1] = ArrState::Empty;
            self.aux[k][0] = None;
            self.aux[k][1] = None;
            self.merges[k] = None;
            // Publish the destination's aux. A merge that started while
            // the cascade was off has no builder; rebuild by scan so the
            // toggle can't leave a committed array unaccelerated.
            self.aux[k + 1][ms.dst_side] = match self.merge_aux[k].take() {
                Some(builder) => Some(builder.finish().with_veb(self.veb)),
                None if self.cascade => {
                    self.rebuild_aux(k + 1, ms.dst_side);
                    self.aux[k + 1][ms.dst_side].take()
                }
                None => None,
            };
            // The commit may have made level k+1 unsafe.
            self.maybe_mark_unsafe(k + 1);
        } else {
            self.merges[k] = Some(ms);
        }
        spent
    }

    fn maybe_mark_unsafe(&mut self, k: usize) {
        let both_full = self.state[k]
            .iter()
            .all(|s| matches!(s, ArrState::Full { .. }));
        if both_full && self.merges[k].is_none() {
            self.begin_merge(k);
        }
    }

    fn insert_cell(&mut self, cell: Cell) {
        self.n += 1;
        self.seq += 1;
        self.stats.inserts += 1;

        // Place the new item as a length-1 run in level 0.
        let side = (0..2)
            .find(|&s| self.state[0][s] == ArrState::Empty)
            .expect("level 0 has no free array: mover fell behind");
        self.mem.set(arr_off(0, side), cell);
        self.state[0][side] = ArrState::Full { seq: self.seq };
        let veb = self.veb;
        self.aux[0][side] = self.cascade.then(|| {
            let mut b = AuxBuilder::new(1);
            b.push(&cell);
            b.finish().with_veb(veb)
        });
        self.stats.cells_written += 1;
        self.maybe_mark_unsafe(0);

        // Mover: scan levels left to right, spending at most m moves.
        let k = self.state.len() as u64;
        let m = 2 * k + 2;
        let mut budget = m;
        let mut level = 0usize;
        while budget > 0 && level < self.state.len() {
            if self.merges[level].is_some() {
                budget -= self.step_merge(level, budget);
            }
            level += 1;
        }
        let moved = m - budget;
        self.max_moves = self.max_moves.max(moved);
        self.stats.max_cells_per_insert = self.stats.max_cells_per_insert.max(moved + 1);
    }

    /// Leftmost cell with `key` in the given full array, if any.
    fn search_array(&mut self, k: usize, side: Side, key: u64) -> Option<Cell> {
        let base = arr_off(k, side);
        let len = 1usize << k;
        // Cascade fast path: fences and the filter skip the array
        // outright (0 cell reads); otherwise the ghost sample brackets
        // the probe. An array without aux (merge committed while the
        // cascade was off) falls back to the full binary search.
        let (mut lo, mut hi) = match &self.aux[k][side] {
            Some(aux) if self.cascade => {
                if !aux.may_contain(key) {
                    self.stats.filter_skips += 1;
                    return None;
                }
                aux.window(key)
            }
            _ => (0, len),
        };
        while lo < hi {
            let mid = (lo + hi) / 2;
            self.stats.cells_scanned += 1;
            if self.mem.get(base + mid).key < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < len {
            let c = self.mem.get(base + lo);
            if c.key == key {
                return Some(c);
            }
        }
        None
    }

    /// Full arrays of level `k`, newest first.
    fn full_sides(&self, k: usize) -> Vec<Side> {
        let mut sides: Vec<(u64, Side)> = (0..2)
            .filter_map(|s| match self.state[k][s] {
                ArrState::Full { seq } => Some((seq, s)),
                _ => None,
            })
            .collect();
        sides.sort_unstable_by_key(|s| std::cmp::Reverse(s.0));
        sides.into_iter().map(|(_, s)| s).collect()
    }

    /// Completes every in-flight merge (a merge commit can make the next
    /// level unsafe, so iterate to a fixpoint). Logical contents are
    /// unchanged; afterwards every array is `Empty` or `Full`, which is
    /// the only state [`Persist::save_meta`] serializes. The per-insert
    /// worst-case bound applies between quiesce points, not across one —
    /// a checkpoint is an O(data) event by nature.
    pub fn quiesce(&mut self) {
        while self.merges.iter().any(Option::is_some) {
            for k in 0..self.merges.len() {
                if self.merges[k].is_some() {
                    self.step_merge(k, u64::MAX);
                }
            }
        }
    }

    /// Reconstructs a deamortized basic COLA over an already-populated
    /// `mem` from persisted (quiesced) control state.
    pub fn from_parts(mem: M, meta: &[u8]) -> Result<Self, MetaError> {
        let mut r = MetaReader::new(meta, TAG_DEAMORT_BASIC, META_VERSION)?;
        let n = r.u64()?;
        let seq = r.u64()?;
        let count = r.usize()?;
        // Bound before allocating: corrupt counts yield MetaError, not
        // an allocator abort (and keep every later shift in range).
        if count == 0 || count > 60 {
            return Err(MetaError::Invalid(format!("level count {count}")));
        }
        let mut state = Vec::with_capacity(count);
        for _ in 0..count {
            let mut sides = [ArrState::Empty; 2];
            for side in &mut sides {
                *side = match r.u8()? {
                    0 => ArrState::Empty,
                    1 => ArrState::Full { seq: r.u64()? },
                    b => {
                        return Err(MetaError::Invalid(format!(
                            "array state byte {b} (a quiesced store has no filling arrays)"
                        )))
                    }
                };
            }
            state.push(sides);
        }
        let mut fences = Vec::with_capacity(count);
        for sides in &state {
            let mut pair = [None, None];
            for (side, st) in sides.iter().enumerate() {
                if matches!(st, ArrState::Full { .. }) {
                    pair[side] = Some((r.u64()?, r.u64()?));
                }
            }
            fences.push(pair);
        }
        r.finish()?;
        if mem.len() < arr_off(count, 0) {
            return Err(MetaError::Invalid(format!(
                "store holds {} cells, {count} levels need {}",
                mem.len(),
                arr_off(count, 0)
            )));
        }
        let mut cola = DeamortBasicCola {
            mem,
            merges: vec![None; count],
            state,
            n,
            seq,
            stats: ColaStats::default(),
            max_moves: 0,
            aux: vec![[None, None]; count],
            merge_aux: (0..count).map(|_| None).collect(),
            cascade: true,
            veb: false,
        };
        // v2: rebuild each full array's cascade accelerators from the
        // reopened cells and cross-check the persisted fence keys —
        // corrupt cascade metadata is a typed `MetaError`, never a
        // wrong answer.
        for (k, pair) in fences.iter().enumerate() {
            for (side, fence) in pair.iter().enumerate() {
                let Some((min, max)) = *fence else {
                    continue;
                };
                cola.rebuild_aux(k, side);
                let rebuilt = cola.aux[k][side].as_ref().expect("just rebuilt");
                rebuilt.check().map_err(|e| {
                    MetaError::Invalid(format!("level {k} side {side} cascade state: {e}"))
                })?;
                if (min, max) != (rebuilt.fence_min, rebuilt.fence_max) {
                    return Err(MetaError::Invalid(format!(
                        "level {k} side {side} fence keys ({min}, {max}) disagree \
                         with stored cells ({}, {})",
                        rebuilt.fence_min, rebuilt.fence_max
                    )));
                }
            }
        }
        Ok(cola)
    }

    /// Verifies Lemma 21's guarantee and state consistency (for tests).
    pub fn check_invariants(&self) {
        for k in 0..self.state.len().saturating_sub(1) {
            assert!(
                !(self.is_unsafe(k) && self.is_unsafe(k + 1)),
                "levels {k} and {} simultaneously unsafe",
                k + 1
            );
        }
        for k in 0..self.state.len() {
            if let Some(ms) = self.merges[k] {
                assert!(
                    self.state[k + 1][ms.dst_side] == ArrState::Filling,
                    "merge destination not marked filling"
                );
                assert!(
                    self.state[k]
                        .iter()
                        .all(|s| matches!(s, ArrState::Full { .. })),
                    "unsafe level {k} must have both arrays full"
                );
            }
            // Full arrays must be sorted.
            for side in 0..2 {
                if matches!(self.state[k][side], ArrState::Full { .. }) {
                    let base = arr_off(k, side);
                    for i in 1..(1usize << k) {
                        assert!(
                            self.mem.get(base + i - 1).key <= self.mem.get(base + i).key,
                            "level {k} side {side} not sorted"
                        );
                    }
                }
            }
        }
        // Cascade state: aux only on full arrays and only while the
        // toggle is on, internally consistent, and agreeing with the
        // stored cells' fence keys. (A full array may lack aux if its
        // merge committed while the cascade was off — searches fall
        // back to the full binary search there.)
        assert_eq!(self.aux.len(), self.state.len(), "aux out of lockstep");
        for k in 0..self.state.len() {
            for side in 0..2 {
                if let Some(aux) = &self.aux[k][side] {
                    assert!(
                        matches!(self.state[k][side], ArrState::Full { .. }),
                        "level {k} side {side} not full but has cascade aux"
                    );
                    assert!(
                        self.cascade,
                        "cascade off but level {k} side {side} has aux"
                    );
                    aux.check()
                        .unwrap_or_else(|e| panic!("level {k} side {side} aux: {e}"));
                    assert_eq!(aux.len, 1usize << k, "level {k} side {side} aux length");
                    let base = arr_off(k, side);
                    assert_eq!(
                        (aux.fence_min, aux.fence_max),
                        (
                            self.mem.get(base).key,
                            self.mem.get(base + (1 << k) - 1).key
                        ),
                        "level {k} side {side} fences disagree with stored cells"
                    );
                }
            }
        }
    }
}

impl<M: Mem<Cell>> Persist for DeamortBasicCola<M> {
    fn save_meta(&mut self) -> Vec<u8> {
        self.quiesce();
        let mut w = MetaWriter::new(TAG_DEAMORT_BASIC, META_VERSION);
        w.u64(self.n).u64(self.seq).usize(self.state.len());
        for level in &self.state {
            for side in level {
                match side {
                    ArrState::Empty => {
                        w.u8(0);
                    }
                    ArrState::Full { seq } => {
                        w.u8(1).u64(*seq);
                    }
                    ArrState::Filling => unreachable!("quiesce left a filling array"),
                }
            }
        }
        // v2: each full array's fence keys (its first and last cell —
        // every cell in a committed array is non-redundant), read O(1)
        // from the store so the record is valid regardless of the
        // runtime cascade toggle.
        for k in 0..self.state.len() {
            for side in 0..2 {
                if matches!(self.state[k][side], ArrState::Full { .. }) {
                    let base = arr_off(k, side);
                    w.u64(self.mem.get(base).key);
                    w.u64(self.mem.get(base + (1 << k) - 1).key);
                }
            }
        }
        w.finish()
    }
}

impl<M: Mem<Cell>> Dictionary for DeamortBasicCola<M> {
    fn insert(&mut self, key: u64, val: u64) {
        self.insert_cell(Cell::item(key, val));
    }

    fn delete(&mut self, key: u64) {
        self.insert_cell(Cell::tombstone(key));
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        self.stats.searches += 1;
        for k in 0..self.state.len() {
            for side in self.full_sides(k) {
                if let Some(c) = self.search_array(k, side, key) {
                    return c.as_lookup();
                }
            }
        }
        None
    }

    fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
        // Completed (full) arrays only, smaller levels and newer sides
        // first — the same visibility and recency order point lookups use.
        // In-flight merge destinations are invisible until commit, so the
        // cursor never observes a half-written array.
        let mut runs = Vec::new();
        for k in 0..self.state.len() {
            for side in self.full_sides(k) {
                runs.push(Run {
                    base: arr_off(k, side),
                    len: 1usize << k,
                });
            }
        }
        Cursor::new(RunMergeCursor::new(&self.mem, runs, lo, hi))
    }

    fn physical_len(&self) -> usize {
        self.n as usize
    }

    fn name(&self) -> &'static str {
        "deamortized-basic-cola"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_offsets_pack_levels() {
        assert_eq!(arr_off(0, 0), 0);
        assert_eq!(arr_off(0, 1), 1);
        assert_eq!(arr_off(1, 0), 2);
        assert_eq!(arr_off(1, 1), 4);
        assert_eq!(arr_off(2, 0), 6);
        for k in 0..20 {
            assert_eq!(arr_off(k, 1) + (1 << k), arr_off(k + 1, 0));
        }
    }

    #[test]
    fn inserts_and_gets_match_model() {
        let mut c = DeamortBasicCola::new_plain();
        let mut model = std::collections::BTreeMap::new();
        let mut x: u64 = 3;
        for i in 0..5000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = x % 2000;
            c.insert(k, i);
            model.insert(k, i);
            if i % 617 == 0 {
                c.check_invariants();
                // Spot-check a few keys mid-stream.
                for probe in [0u64, 500, 1000, 1999, k] {
                    assert_eq!(c.get(probe), model.get(&probe).copied(), "probe {probe}");
                }
            }
        }
        for probe in 0..2000u64 {
            assert_eq!(c.get(probe), model.get(&probe).copied());
        }
    }

    #[test]
    fn worst_case_moves_bounded_by_m() {
        let mut c = DeamortBasicCola::new_plain();
        for i in 0..(1u64 << 14) {
            c.insert(i, i);
        }
        let k = c.num_levels() as u64;
        assert!(
            c.max_moves_per_insert() <= 2 * k + 2,
            "worst case {} exceeds m = {}",
            c.max_moves_per_insert(),
            2 * k + 2
        );
        // Contrast: the amortized COLA's worst case is Θ(N).
        assert!(c.max_moves_per_insert() < 1 << 10);
    }

    #[test]
    fn no_adjacent_unsafe_levels_ever() {
        let mut c = DeamortBasicCola::new_plain();
        for i in 0..20_000u64 {
            c.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
            if i % 256 == 255 {
                c.check_invariants();
            }
        }
        c.check_invariants();
    }

    #[test]
    fn deletes_and_upserts() {
        let mut c = DeamortBasicCola::new_plain();
        for k in 0..500u64 {
            c.insert(k, k);
        }
        for k in (0..500u64).step_by(3) {
            c.delete(k);
        }
        for k in (0..500u64).step_by(5) {
            c.insert(k, k + 9000);
        }
        for k in 0..500u64 {
            let want = if k % 5 == 0 {
                Some(k + 9000)
            } else if k % 3 == 0 {
                None
            } else {
                Some(k)
            };
            assert_eq!(c.get(k), want, "key {k}");
        }
    }

    #[test]
    fn range_sees_committed_state_only_but_completely() {
        let mut c = DeamortBasicCola::new_plain();
        let mut model = std::collections::BTreeMap::new();
        for i in 0..777u64 {
            let k = (i * 37) % 1000;
            c.insert(k, i);
            model.insert(k, i);
        }
        let want: Vec<(u64, u64)> = model.range(100..=400).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(c.range(100, 400), want);
    }

    #[test]
    fn amortized_cost_unchanged() {
        let mut c = DeamortBasicCola::new_plain();
        let n = 1u64 << 13;
        for i in 0..n {
            c.insert(i, i);
        }
        let per = c.stats().cells_written as f64 / n as f64;
        assert!(
            per < 2.0 * 13.0,
            "amortized writes {per} should stay O(log N)"
        );
    }
}
