//! Epoch/snapshot manager: pinned committed versions with grace-period
//! reclamation.
//!
//! This is the MVCC core of the concurrency subsystem. The mutable
//! write-optimized structures stay single-writer (their caches mutate on
//! reads), and *readers never touch them*: every committed version of
//! the database is represented as an [`EpochVersion`] — an immutable,
//! newest-first stack of sorted [`Run`]s, exactly a COLA level structure
//! lifted onto the heap and shared via `Arc`. The writer publishes the
//! next version atomically ([`EpochManager::publish_with`]); readers
//! [`pin`](EpochManager::pin) a version and query it lock-free (binary
//! searches over immutable slices, no mutex on the read path).
//!
//! Reclamation is grace-period based, in the style of Twigg et al.'s
//! persistent streaming indexes: when a publish supersedes runs, they
//! are parked on a retire list tagged with the last epoch that
//! referenced them, and freed only once every pinned reader has moved
//! past that epoch. The same horizon, projected per shard onto the
//! backing stores' committed *store* epochs, gates physical page
//! recycling in the shadow-paged file layer (see
//! [`EpochManager::shard_gate`]).

use cosbt_testkit::sync::{Arc, Mutex, MutexGuard};
use std::collections::BTreeMap;

use crate::dict::BatchOp;

/// An immutable sorted run of update operations: strictly increasing
/// keys, each mapped to `Some(value)` (upsert) or `None` (tombstone).
/// Cheap to clone (`Arc`-backed); the shared unit of an
/// [`EpochVersion`].
#[derive(Clone)]
pub struct Run {
    entries: Arc<[BatchOp]>,
}

impl std::fmt::Debug for Run {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Run").field("len", &self.len()).finish()
    }
}

impl Run {
    /// Wraps entries already sorted by strictly increasing key.
    pub fn from_sorted(entries: Vec<BatchOp>) -> Run {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        Run {
            entries: entries.into(),
        }
    }

    /// Builds a run from arrival-ordered operations: stable-sorts by
    /// key and keeps the last operation per key (tombstones included).
    pub fn from_ops(mut ops: Vec<BatchOp>) -> Run {
        ops.sort_by_key(|&(k, _)| k);
        let mut out: Vec<BatchOp> = Vec::with_capacity(ops.len());
        for op in ops {
            match out.last_mut() {
                Some(last) if last.0 == op.0 => *last = op,
                _ => out.push(op),
            }
        }
        Run::from_sorted(out)
    }

    /// The operation recorded for `key`, if any: `Some(Some(v))` =
    /// upsert, `Some(None)` = tombstone, `None` = key not in this run.
    pub fn get(&self, key: u64) -> Option<Option<u64>> {
        self.entries
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[BatchOp] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Identity comparison: do two handles share the same backing
    /// allocation? Used by compaction to verify a merged suffix is
    /// still current at publish time.
    pub fn ptr_eq(&self, other: &Run) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }
}

/// Merges a newest-first stack of runs into one run, newer entries
/// shadowing older ones. With `drop_tombstones`, deletions are removed
/// from the result — only valid when the stack's oldest run is the
/// logical base (nothing older exists for a tombstone to shadow).
pub fn merge_runs(newest_first: &[Run], drop_tombstones: bool) -> Run {
    let mut acc: Vec<BatchOp> = match newest_first.last() {
        Some(oldest) => oldest.entries().to_vec(),
        None => Vec::new(),
    };
    for newer in newest_first.iter().rev().skip(1) {
        acc = merge_two(&acc, newer.entries());
    }
    if drop_tombstones {
        acc.retain(|&(_, v)| v.is_some());
    }
    Run::from_sorted(acc)
}

/// Two-way sorted merge; on equal keys `newer` wins.
fn merge_two(older: &[BatchOp], newer: &[BatchOp]) -> Vec<BatchOp> {
    let mut out = Vec::with_capacity(older.len() + newer.len());
    let (mut i, mut j) = (0, 0);
    while i < older.len() && j < newer.len() {
        match older[i].0.cmp(&newer[j].0) {
            std::cmp::Ordering::Less => {
                out.push(older[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(newer[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(newer[j]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&older[i..]);
    out.extend_from_slice(&newer[j..]);
    out
}

/// One committed, immutable version of the database: a monotone
/// sequence number, the newest-first run stack, and the per-shard
/// committed *store* epochs it corresponds to (the PR 4 cross-shard
/// epoch vector; empty for in-memory backends).
#[derive(Clone, Debug)]
pub struct EpochVersion {
    seq: u64,
    runs: Vec<Run>,
    store_epochs: Arc<[u64]>,
}

impl EpochVersion {
    /// The version's sequence number (0 = the empty initial version).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The newest-first run stack.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// Per-shard committed store epochs at publish time.
    pub fn store_epochs(&self) -> &[u64] {
        &self.store_epochs
    }

    /// Shared handle to the store-epoch vector.
    pub fn store_epochs_arc(&self) -> Arc<[u64]> {
        self.store_epochs.clone()
    }

    /// Point lookup: newest run containing the key wins; a tombstone
    /// reads as absent.
    pub fn get(&self, key: u64) -> Option<u64> {
        for run in &self.runs {
            if let Some(op) = run.get(key) {
                return op;
            }
        }
        None
    }

    /// Total physical entries across runs (≥ live keys; superseded
    /// entries and tombstones count until compaction).
    pub fn physical_entries(&self) -> usize {
        self.runs.iter().map(Run::len).sum()
    }
}

/// Per-pinned-epoch bookkeeping.
struct PinSlot {
    count: usize,
    store_epochs: Arc<[u64]>,
}

/// Runs superseded by a publish, tagged with the last version sequence
/// that referenced them.
struct RetiredRuns {
    seq: u64,
    runs: Vec<Run>,
}

struct State {
    current: Arc<EpochVersion>,
    pins: BTreeMap<u64, PinSlot>,
    retired: Vec<RetiredRuns>,
    published: u64,
    retired_total: u64,
    reclaimed_total: u64,
}

/// A point-in-time reading of the manager's counters, for tests and
/// diagnostics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochStats {
    /// Versions published so far (including compactions).
    pub published: u64,
    /// Runs ever retired by a publish.
    pub retired_runs: u64,
    /// Retired runs whose grace period elapsed and were freed.
    pub reclaimed_runs: u64,
    /// Distinct epochs currently pinned by at least one reader.
    pub pinned_epochs: usize,
    /// Retired runs still parked awaiting the pin horizon.
    pub retired_pending: usize,
}

/// The epoch/snapshot manager (used through `Arc<EpochManager>`).
///
/// One short critical section guards version publication, pinning and
/// retirement; reads against a pinned version never take it.
pub struct EpochManager {
    state: Mutex<State>,
}

impl std::fmt::Debug for EpochManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("EpochManager")
            .field("published", &s.published)
            .field("pinned_epochs", &s.pinned_epochs)
            .field("retired_pending", &s.retired_pending)
            .finish()
    }
}

impl EpochManager {
    /// A manager holding the empty initial version (seq 0, no runs).
    pub fn new() -> Arc<EpochManager> {
        Arc::new(EpochManager {
            state: Mutex::new(State {
                current: Arc::new(EpochVersion {
                    seq: 0,
                    runs: Vec::new(),
                    store_epochs: Arc::from([]),
                }),
                pins: BTreeMap::new(),
                retired: Vec::new(),
                published: 0,
                retired_total: 0,
                reclaimed_total: 0,
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("epoch manager mutex poisoned")
    }

    /// The current (newest committed) version.
    pub fn current(&self) -> Arc<EpochVersion> {
        self.lock().current.clone()
    }

    /// Pins the current version and returns a guard; the version's runs
    /// (and, via the shard gates, its store pages) outlive every pin.
    pub fn pin(self: &Arc<Self>) -> PinnedEpoch {
        let mut st = self.lock();
        let version = st.current.clone();
        let slot = st.pins.entry(version.seq).or_insert_with(|| PinSlot {
            count: 0,
            store_epochs: version.store_epochs_arc(),
        });
        slot.count += 1;
        drop(st);
        PinnedEpoch {
            mgr: self.clone(),
            version,
        }
    }

    /// Publishes the next version. The closure runs under the manager's
    /// lock with the current version and returns the new run stack plus
    /// its store-epoch vector — or `None` to abort (e.g. a compactor
    /// discovering its input is stale). On publish, runs present in the
    /// old version but absent from the new one are retired under the
    /// old sequence number and freed once no pin is at or below it.
    pub fn publish_with<F>(&self, f: F) -> Option<Arc<EpochVersion>>
    where
        F: FnOnce(&EpochVersion) -> Option<(Vec<Run>, Arc<[u64]>)>,
    {
        let mut st = self.lock();
        let cur = st.current.clone();
        let (runs, store_epochs) = f(&cur)?;
        let new = Arc::new(EpochVersion {
            seq: cur.seq + 1,
            runs,
            store_epochs,
        });
        let dropped: Vec<Run> = cur
            .runs
            .iter()
            .filter(|r| !new.runs.iter().any(|n| n.ptr_eq(r)))
            .cloned()
            .collect();
        if !dropped.is_empty() {
            st.retired_total += dropped.len() as u64;
            st.retired.push(RetiredRuns {
                seq: cur.seq,
                runs: dropped,
            });
        }
        st.current = new.clone();
        st.published += 1;
        Self::collect_locked(&mut st);
        Some(new)
    }

    /// Frees retired runs whose grace period has elapsed: everything
    /// tagged strictly below the lowest pinned sequence.
    fn collect_locked(st: &mut State) {
        let horizon = st.pins.keys().next().copied().unwrap_or(u64::MAX);
        let mut reclaimed = 0u64;
        st.retired.retain(|r| {
            if r.seq < horizon {
                reclaimed += r.runs.len() as u64;
                false
            } else {
                true
            }
        });
        st.reclaimed_total += reclaimed;
    }

    fn unpin(&self, seq: u64) {
        let mut st = self.lock();
        let remove = {
            let slot = st.pins.get_mut(&seq).expect("unpin of unpinned epoch");
            slot.count -= 1;
            slot.count == 0
        };
        if remove {
            st.pins.remove(&seq);
            Self::collect_locked(&mut st);
        }
    }

    fn repin(&self, seq: u64) {
        let mut st = self.lock();
        st.pins
            .get_mut(&seq)
            .expect("repin of unpinned epoch")
            .count += 1;
    }

    /// The lowest committed *store* epoch of shard `shard` referenced
    /// by any pin, or `u64::MAX` when nothing constrains reclamation —
    /// the horizon behind [`EpochManager::shard_gate`].
    pub fn min_pinned_store_epoch(&self, shard: usize) -> u64 {
        let st = self.lock();
        st.pins
            .values()
            .filter_map(|p| p.store_epochs.get(shard).copied())
            .min()
            .unwrap_or(u64::MAX)
    }

    /// A [`ReclaimGate`](cosbt_dam::ReclaimGate) projecting the pin set
    /// onto shard `shard`'s store epochs, for installation on that
    /// shard's backing store: pages superseded at a store epoch some
    /// pin still references are not recycled.
    pub fn shard_gate(self: &Arc<Self>, shard: usize) -> Arc<dyn cosbt_dam::ReclaimGate> {
        Arc::new(ShardGate {
            mgr: self.clone(),
            shard,
        })
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EpochStats {
        let st = self.lock();
        EpochStats {
            published: st.published,
            retired_runs: st.retired_total,
            reclaimed_runs: st.reclaimed_total,
            pinned_epochs: st.pins.len(),
            retired_pending: st.retired.iter().map(|r| r.runs.len()).sum(),
        }
    }
}

/// Projects an [`EpochManager`]'s pin set onto one shard's committed
/// store epochs (see [`EpochManager::shard_gate`]).
struct ShardGate {
    mgr: Arc<EpochManager>,
    shard: usize,
}

impl cosbt_dam::ReclaimGate for ShardGate {
    fn reclaim_horizon(&self) -> u64 {
        self.mgr.min_pinned_store_epoch(self.shard)
    }
}

/// A pinned committed version: dereferences to the [`EpochVersion`] it
/// holds. While any clone is alive, the version's runs are retained and
/// the backing stores will not recycle pages its store epochs
/// reference. Dropping the last clone lifts the pin and lets the
/// manager reclaim.
pub struct PinnedEpoch {
    mgr: Arc<EpochManager>,
    version: Arc<EpochVersion>,
}

impl std::fmt::Debug for PinnedEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedEpoch")
            .field("seq", &self.version.seq)
            .finish()
    }
}

impl Clone for PinnedEpoch {
    fn clone(&self) -> Self {
        self.mgr.repin(self.version.seq);
        PinnedEpoch {
            mgr: self.mgr.clone(),
            version: self.version.clone(),
        }
    }
}

impl Drop for PinnedEpoch {
    fn drop(&mut self) {
        self.mgr.unpin(self.version.seq);
    }
}

impl std::ops::Deref for PinnedEpoch {
    type Target = EpochVersion;

    fn deref(&self) -> &EpochVersion {
        &self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn publish_run(mgr: &Arc<EpochManager>, ops: Vec<BatchOp>) {
        let run = Run::from_ops(ops);
        mgr.publish_with(|cur| {
            let mut runs = Vec::with_capacity(cur.runs().len() + 1);
            runs.push(run.clone());
            runs.extend_from_slice(cur.runs());
            Some((runs, cur.store_epochs_arc()))
        })
        .expect("unconditional publish");
    }

    #[test]
    fn runs_normalize_and_shadow() {
        let r = Run::from_ops(vec![(3, Some(30)), (1, Some(10)), (3, None)]);
        assert_eq!(r.entries(), &[(1, Some(10)), (3, None)]);
        assert_eq!(r.get(1), Some(Some(10)));
        assert_eq!(r.get(3), Some(None));
        assert_eq!(r.get(2), None);
        assert!(!r.is_empty());
    }

    #[test]
    fn merge_newer_wins_and_tombstones_drop_at_base() {
        let old = Run::from_sorted(vec![(1, Some(1)), (2, Some(2)), (3, Some(3))]);
        let new = Run::from_sorted(vec![(2, None), (4, Some(4))]);
        let kept = merge_runs(&[new.clone(), old.clone()], false);
        assert_eq!(
            kept.entries(),
            &[(1, Some(1)), (2, None), (3, Some(3)), (4, Some(4))]
        );
        let base = merge_runs(&[new, old], true);
        assert_eq!(base.entries(), &[(1, Some(1)), (3, Some(3)), (4, Some(4))]);
    }

    #[test]
    fn pinned_version_is_immutable_under_later_publishes() {
        let mgr = EpochManager::new();
        publish_run(&mgr, vec![(1, Some(10)), (2, Some(20))]);
        let pin = mgr.pin();
        assert_eq!(pin.seq(), 1);
        publish_run(&mgr, vec![(2, None), (3, Some(30))]);
        // The pin still reads the old version; current reads the new.
        assert_eq!(pin.get(2), Some(20));
        assert_eq!(pin.get(3), None);
        let cur = mgr.current();
        assert_eq!(cur.get(2), None);
        assert_eq!(cur.get(3), Some(30));
    }

    #[test]
    fn retirement_waits_for_pins() {
        let mgr = EpochManager::new();
        publish_run(&mgr, vec![(1, Some(1))]);
        let pin = mgr.pin();
        // Compact: replace the whole stack with one merged run.
        publish_run(&mgr, vec![(2, Some(2))]);
        let merged = merge_runs(mgr.current().runs(), true);
        mgr.publish_with(|cur| Some((vec![merged], cur.store_epochs_arc())));
        let s = mgr.stats();
        assert!(s.retired_pending > 0, "pin holds retired runs");
        drop(pin);
        // Reclamation happens at the next state change.
        publish_run(&mgr, vec![(3, Some(3))]);
        let s = mgr.stats();
        assert_eq!(s.retired_pending, 0);
        assert_eq!(s.reclaimed_runs, s.retired_runs);
    }

    #[test]
    fn clone_repins_and_drop_unpins() {
        let mgr = EpochManager::new();
        publish_run(&mgr, vec![(1, Some(1))]);
        let a = mgr.pin();
        let b = a.clone();
        assert_eq!(mgr.stats().pinned_epochs, 1);
        drop(a);
        assert_eq!(mgr.stats().pinned_epochs, 1);
        drop(b);
        assert_eq!(mgr.stats().pinned_epochs, 0);
    }

    #[test]
    fn shard_gate_tracks_min_pinned_store_epoch() {
        let mgr = EpochManager::new();
        mgr.publish_with(|_| Some((Vec::new(), Arc::from([5u64, 7u64]))));
        let pin = mgr.pin();
        mgr.publish_with(|_| Some((Vec::new(), Arc::from([9u64, 9u64]))));
        let _pin2 = mgr.pin();
        let g0 = mgr.shard_gate(0);
        let g1 = mgr.shard_gate(1);
        assert_eq!(g0.reclaim_horizon(), 5);
        assert_eq!(g1.reclaim_horizon(), 7);
        drop(pin);
        assert_eq!(g0.reclaim_horizon(), 9);
        // A shard index no pin has an epoch for → unconstrained.
        assert_eq!(mgr.min_pinned_store_epoch(7), u64::MAX);
    }

    #[test]
    fn stale_compaction_aborts() {
        let mgr = EpochManager::new();
        publish_run(&mgr, vec![(1, Some(1))]);
        let before = mgr.current();
        publish_run(&mgr, vec![(2, Some(2))]);
        // A compactor that captured `before` must notice the world moved.
        let out = mgr.publish_with(|cur| {
            if cur.seq() != before.seq() {
                return None;
            }
            Some((Vec::new(), cur.store_epochs_arc()))
        });
        assert!(out.is_none());
        assert_eq!(mgr.current().seq(), 2);
    }
}
