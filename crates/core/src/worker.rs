//! Background worker pool: deamortized merge work off the caller's
//! thread.
//!
//! The deamortized COLA spreads merge work across operations so no
//! single insert pays a full merge; this pool moves that budgeted work
//! off the writer's thread entirely — the "background write thread"
//! design. Jobs are plain closures (the snapshot layer submits run
//! compactions; they touch only `Arc`-shared heap runs, never the
//! backing stores), executed FIFO by a fixed set of threads.
//!
//! Shutdown is cooperative and *bounded*: [`WorkerPool::shutdown`]
//! (and the drop path) waits up to a timeout for workers to finish,
//! then detaches and reports stragglers instead of hanging the caller.
//! A panicking job is caught, counted, and reported; it never takes a
//! worker thread down.

use cosbt_testkit::sync::time::Instant;
use cosbt_testkit::sync::{thread, Arc, Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    /// Jobs currently executing.
    active: usize,
    /// Worker threads that have not yet exited their loop.
    alive: usize,
    /// Jobs that panicked (caught and discarded).
    panics: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers: work available or shutdown requested.
    work: Condvar,
    /// Signals waiters: pool went idle or a worker exited.
    idle: Condvar,
}

/// A fixed-size pool of background worker threads executing queued
/// closures FIFO.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.handles.len())
            .field("pending", &self.pending())
            .finish()
    }
}

/// How long the drop path waits for in-flight jobs before detaching
/// them (see [`WorkerPool::shutdown`]).
pub const DROP_SHUTDOWN_TIMEOUT: Duration = Duration::from_secs(10);

impl WorkerPool {
    /// Spawns a pool of `workers.max(1)` threads.
    pub fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                active: 0,
                alive: 0,
                panics: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let n = workers.max(1);
        let mut handles = Vec::with_capacity(n);
        for i in 0..n {
            let shared = shared.clone();
            shared.state.lock().expect("pool mutex poisoned").alive += 1;
            handles.push(
                thread::Builder::new()
                    .name(format!("cosbt-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread failed"),
            );
        }
        WorkerPool { shared, handles }
    }

    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.shared.state.lock().expect("pool mutex poisoned")
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Enqueues a job. Panics if the pool is already shutting down
    /// (callers own the pool; submitting after shutdown is a bug).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut st = self.lock();
        assert!(!st.shutdown, "submit after shutdown");
        st.queue.push_back(Box::new(job));
        drop(st);
        self.shared.work.notify_one();
    }

    /// Queued-but-unstarted plus currently-executing jobs.
    pub fn pending(&self) -> usize {
        let st = self.lock();
        st.queue.len() + st.active
    }

    /// Jobs that panicked so far (each is caught and reported to
    /// stderr; the worker survives).
    pub fn panics(&self) -> u64 {
        self.lock().panics
    }

    /// Blocks until every queued and in-flight job has finished.
    pub fn drain(&self) {
        let mut st = self.lock();
        while !st.queue.is_empty() || st.active > 0 {
            st = self
                .shared
                .idle
                .wait(st)
                .expect("pool mutex poisoned while draining");
        }
    }

    /// Requests shutdown and waits up to `timeout` for workers to
    /// finish their current jobs and exit (queued-but-unstarted jobs
    /// still run first while the deadline holds). On timeout the
    /// remaining workers are detached and their count returned as
    /// `Err`: the queue is cleared so no *new* job can start after the
    /// caller has moved on, and the detached threads exit as soon as
    /// their current job finishes.
    pub fn shutdown(mut self, timeout: Duration) -> Result<(), usize> {
        self.shutdown_inner(timeout)
    }

    fn shutdown_inner(&mut self, timeout: Duration) -> Result<(), usize> {
        if self.handles.is_empty() {
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        st.shutdown = true;
        self.shared.work.notify_all();
        let stragglers = loop {
            if st.alive == 0 {
                break 0;
            }
            let now = Instant::now();
            if now >= deadline {
                // Timed out: some workers are still mid-job. Clear the
                // queue so a detached worker finishing its current job
                // cannot pick up *another* one arbitrarily later —
                // after this method returns the caller tears down
                // state (epoch manager, stores) that queued jobs may
                // reference. In-flight jobs are unaffected: they hold
                // `Arc` references to everything they touch.
                let dropped = st.queue.len();
                st.queue.clear();
                if dropped > 0 {
                    eprintln!(
                        "cosbt: shutdown timeout dropped {dropped} queued \
                         background job(s) before they started"
                    );
                }
                break st.alive;
            }
            let (guard, _) = self
                .shared
                .idle
                .wait_timeout(st, deadline - now)
                .expect("pool mutex poisoned during shutdown");
            st = guard;
        };
        drop(st);
        let handles = std::mem::take(&mut self.handles);
        if stragglers == 0 {
            for h in handles {
                let _ = h.join();
            }
            Ok(())
        } else {
            // Detach: dropping the handles releases them; the threads
            // exit on their own once their jobs finish.
            drop(handles);
            Err(stragglers)
        }
    }
}

impl Drop for WorkerPool {
    /// Bounded-timeout shutdown: reports stragglers to stderr instead
    /// of hanging or silently detaching.
    fn drop(&mut self) {
        if let Err(n) = self.shutdown_inner(DROP_SHUTDOWN_TIMEOUT) {
            eprintln!(
                "cosbt: {n} background worker(s) still busy after \
                 {DROP_SHUTDOWN_TIMEOUT:?}; detaching them"
            );
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool mutex poisoned");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.active += 1;
                    break Some(job);
                }
                if st.shutdown {
                    break None;
                }
                st = shared.work.wait(st).expect("pool mutex poisoned");
            }
        };
        let Some(job) = job else { break };
        let result = catch_unwind(AssertUnwindSafe(job));
        let mut st = shared.state.lock().expect("pool mutex poisoned");
        st.active -= 1;
        if result.is_err() {
            st.panics += 1;
            eprintln!("cosbt: a background job panicked (caught; worker continues)");
        }
        if st.queue.is_empty() && st.active == 0 {
            shared.idle.notify_all();
        }
    }
    let mut st = shared.state.lock().expect("pool mutex poisoned");
    st.alive -= 1;
    shared.idle.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    // ordering: every counter below is a pure test statistic read
    // after `drain()` (which synchronizes via the pool mutex), so
    // Relaxed is sufficient throughout this module.
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_drain_waits() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let c = counter.clone();
            pool.submit(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.drain();
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(pool.pending(), 0);
        pool.shutdown(Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn zero_workers_rounds_up_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = done.clone();
        pool.submit(move || {
            d.fetch_add(1, Ordering::Relaxed);
        });
        pool.drain();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panicking_job_is_caught_and_counted() {
        let pool = WorkerPool::new(1);
        pool.submit(|| panic!("boom"));
        let ok = Arc::new(AtomicUsize::new(0));
        let o = ok.clone();
        pool.submit(move || {
            o.fetch_add(1, Ordering::Relaxed);
        });
        pool.drain();
        assert_eq!(pool.panics(), 1);
        assert_eq!(ok.load(Ordering::Relaxed), 1, "worker survived the panic");
        pool.shutdown(Duration::from_secs(5)).unwrap();
    }

    #[test]
    fn shutdown_times_out_on_stuck_job_and_detaches() {
        let pool = WorkerPool::new(1);
        let release = Arc::new((Mutex::new(false), Condvar::new()));
        let r = release.clone();
        pool.submit(move || {
            let (m, cv) = &*r;
            let mut go = m.lock().unwrap();
            while !*go {
                go = cv.wait(go).unwrap();
            }
        });
        // Give the worker a moment to pick the job up, then time out.
        while pool.pending() > 1 {
            std::thread::yield_now();
        }
        let res = pool.shutdown(Duration::from_millis(50));
        assert_eq!(res, Err(1), "the stuck worker is reported, not joined");
        // Unstick the detached thread so the test process exits cleanly.
        let (m, cv) = &*release;
        *m.lock().unwrap() = true;
        cv.notify_all();
    }
}
