//! Operation counters common to the COLA variants.

/// Logical work counters for a COLA. These count *elements*, not block
/// transfers — pair them with a [`cosbt_dam::IoSim`] backend to get
/// transfer counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct ColaStats {
    /// Insert operations (including deletes, which insert tombstones).
    pub inserts: u64,
    /// Merge events (an insert that triggered a carry).
    pub merges: u64,
    /// Cells written during merges (the paper's "moves").
    pub cells_written: u64,
    /// Point-lookup operations.
    pub searches: u64,
    /// Cells examined during searches.
    pub cells_scanned: u64,
    /// Largest number of cells written by any single insert (worst case).
    pub max_cells_per_insert: u64,
    /// Levels (or deamortized arrays) skipped by a fence or filter
    /// during searches without touching any of their cells.
    pub filter_skips: u64,
}

impl ColaStats {
    /// Average cells written per insert (the amortized merge cost).
    pub fn amortized_writes(&self) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.cells_written as f64 / self.inserts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortized_writes_safe_on_empty() {
        assert_eq!(ColaStats::default().amortized_writes(), 0.0);
        let s = ColaStats {
            inserts: 4,
            cells_written: 10,
            ..Default::default()
        };
        assert!((s.amortized_writes() - 2.5).abs() < 1e-12);
    }
}
