//! The COLA cell: the paper's 32-byte padded element.
//!
//! Section 4: "Elements comprise key/value pairs, where keys and values
//! each are of size 64 bits. We pad the elements to a total size of 32
//! bytes. … each real element uses 64 of its padding bits to hold a copy of
//! the closest real lookahead pointer to its left. Redundant elements use
//! 64 of their padding bits to hold the real lookahead pointer."
//!
//! [`Cell`] reproduces that layout: `key`, `val`, `ptr` (the lookahead
//! target for redundant cells; the copy of the nearest left real lookahead
//! for real cells) and `meta` (flags). It is exactly 32 bytes.

use cosbt_dam::Pod;

/// Flag: the cell is a *redundant element* (a real lookahead pointer into
/// the next level) rather than a real key/value item.
pub const META_REDUNDANT: u64 = 1;
/// Flag: the cell is a delete message (tombstone). Extension to the paper;
/// see DESIGN.md.
pub const META_TOMBSTONE: u64 = 2;
/// `ptr` value meaning "no lookahead pointer to my left".
pub const NO_PTR: u64 = u64::MAX;

/// A 32-byte COLA cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
pub struct Cell {
    /// The 64-bit key.
    pub key: u64,
    /// The 64-bit value (meaningless for redundant cells).
    pub val: u64,
    /// For redundant cells: index of the pointed-to cell in the next
    /// level's occupied region. For real cells: copy of the `ptr` of the
    /// nearest redundant cell to the left in this level ([`NO_PTR`] if
    /// none).
    pub ptr: u64,
    /// Flag bits ([`META_REDUNDANT`], [`META_TOMBSTONE`]).
    pub meta: u64,
}

impl Cell {
    /// A real item cell.
    #[inline]
    pub fn item(key: u64, val: u64) -> Cell {
        Cell {
            key,
            val,
            ptr: NO_PTR,
            meta: 0,
        }
    }

    /// A tombstone (delete message) for `key`.
    #[inline]
    pub fn tombstone(key: u64) -> Cell {
        Cell {
            key,
            val: 0,
            ptr: NO_PTR,
            meta: META_TOMBSTONE,
        }
    }

    /// A redundant cell: a real lookahead pointer with `key`, pointing at
    /// occupied-position `target` of the next level.
    #[inline]
    pub fn lookahead(key: u64, target: u64) -> Cell {
        Cell {
            key,
            val: 0,
            ptr: target,
            meta: META_REDUNDANT,
        }
    }

    /// Whether this is a redundant (lookahead) cell.
    #[inline]
    pub fn is_redundant(&self) -> bool {
        self.meta & META_REDUNDANT != 0
    }

    /// Whether this is a tombstone.
    #[inline]
    pub fn is_tombstone(&self) -> bool {
        self.meta & META_TOMBSTONE != 0
    }

    /// Whether this is a real (non-redundant) cell: an item or tombstone.
    #[inline]
    pub fn is_real(&self) -> bool {
        !self.is_redundant()
    }

    /// The lookup outcome this real cell represents.
    #[inline]
    pub fn as_lookup(&self) -> Option<u64> {
        debug_assert!(self.is_real());
        if self.is_tombstone() {
            None
        } else {
            Some(self.val)
        }
    }
}

impl Pod for Cell {
    const BYTES: usize = 32;

    #[inline]
    fn write_to(&self, out: &mut [u8]) {
        out[0..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..16].copy_from_slice(&self.val.to_le_bytes());
        out[16..24].copy_from_slice(&self.ptr.to_le_bytes());
        out[24..32].copy_from_slice(&self.meta.to_le_bytes());
    }

    #[inline]
    fn read_from(buf: &[u8]) -> Self {
        Cell {
            key: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            val: u64::from_le_bytes(buf[8..16].try_into().unwrap()),
            ptr: u64::from_le_bytes(buf[16..24].try_into().unwrap()),
            meta: u64::from_le_bytes(buf[24..32].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_is_32_bytes() {
        assert_eq!(std::mem::size_of::<Cell>(), 32);
        assert_eq!(<Cell as Pod>::BYTES, 32);
    }

    #[test]
    fn constructors_set_flags() {
        let i = Cell::item(1, 2);
        assert!(i.is_real() && !i.is_tombstone());
        assert_eq!(i.as_lookup(), Some(2));

        let t = Cell::tombstone(1);
        assert!(t.is_real() && t.is_tombstone());
        assert_eq!(t.as_lookup(), None);

        let l = Cell::lookahead(1, 99);
        assert!(l.is_redundant());
        assert_eq!(l.ptr, 99);
    }

    #[test]
    fn pod_roundtrip() {
        let c = Cell {
            key: u64::MAX,
            val: 12345,
            ptr: 777,
            meta: META_REDUNDANT | META_TOMBSTONE,
        };
        let mut buf = [0u8; 32];
        c.write_to(&mut buf);
        assert_eq!(Cell::read_from(&buf), c);
    }
}
