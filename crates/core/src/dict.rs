//! The common dictionary interface implemented by every structure in the
//! workspace (COLA variants, B-tree, BRT, shuttle tree), so workloads and
//! benchmarks are written once.

/// An ordered map from `u64` keys to `u64` values supporting the streaming
/// B-tree operations: insert (upsert), delete, point query, range query.
///
/// Methods take `&mut self` uniformly because instrumented and file-backed
/// storage mutate cache state even on reads.
pub trait Dictionary {
    /// Inserts or overwrites `key`.
    fn insert(&mut self, key: u64, val: u64);

    /// Deletes `key` (no-op if absent).
    fn delete(&mut self, key: u64);

    /// Looks up `key`.
    fn get(&mut self, key: u64) -> Option<u64>;

    /// All live `(key, value)` pairs with `lo <= key <= hi`, in key order.
    fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)>;

    /// Number of physically stored entries (including shadowed versions and
    /// tombstones for log-structured implementations).
    fn physical_len(&self) -> usize;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial reference implementation to exercise the trait's contract
    /// wording; the real structures are tested against `BTreeMap` models in
    /// their own modules.
    struct Model(std::collections::BTreeMap<u64, u64>);

    impl Dictionary for Model {
        fn insert(&mut self, key: u64, val: u64) {
            self.0.insert(key, val);
        }
        fn delete(&mut self, key: u64) {
            self.0.remove(&key);
        }
        fn get(&mut self, key: u64) -> Option<u64> {
            self.0.get(&key).copied()
        }
        fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
            self.0.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
        }
        fn physical_len(&self) -> usize {
            self.0.len()
        }
        fn name(&self) -> &'static str {
            "model"
        }
    }

    #[test]
    fn model_satisfies_contract() {
        let mut m = Model(Default::default());
        m.insert(5, 50);
        m.insert(5, 51);
        assert_eq!(m.get(5), Some(51), "insert is upsert");
        m.delete(5);
        assert_eq!(m.get(5), None);
        m.insert(1, 10);
        m.insert(3, 30);
        assert_eq!(m.range(0, 2), vec![(1, 10)]);
        assert_eq!(m.range(1, 3), vec![(1, 10), (3, 30)]);
    }
}
