//! The common dictionary interface implemented by every structure in the
//! workspace (COLA variants, B-tree, BRT, shuttle tree), so workloads and
//! benchmarks are written once.
//!
//! The interface exposes the operations streaming B-trees are actually
//! built for:
//!
//! * **batched updates** — [`Dictionary::apply`] replays an
//!   [`UpdateBatch`] and [`Dictionary::insert_batch`] ingests a pre-sorted
//!   run. Log-structured implementations override these with real merge
//!   paths (one carry cascade per batch instead of one per key); the
//!   defaults fall back to per-key loops, so every structure accepts
//!   batches with identical semantics.
//! * **streaming range scans** — [`Dictionary::cursor`] returns a
//!   [`Cursor`] over a key interval. [`Dictionary::range`] is a default
//!   method that drains the cursor into a `Vec`, so materializing is the
//!   convenience and streaming is the primitive, not the other way round.

/// One buffered update: an upsert (`Some(val)`) or a delete (`None`).
pub type BatchOp = (u64, Option<u64>);

/// A reusable buffer of updates applied in arrival order.
///
/// Equivalent to replaying `put`/`delete` calls one at a time — within a
/// batch the *last* operation on a key wins. [`Dictionary::apply`] drains
/// the batch so the allocation can be reused for the next round.
///
/// ```
/// use cosbt_core::{BasicCola, Dictionary, UpdateBatch};
///
/// let mut dict = BasicCola::new_plain();
/// let mut batch = UpdateBatch::new();
/// batch.put(1, 10).put(2, 20).delete(1).put(2, 21);
/// dict.apply(&mut batch);
/// assert!(batch.is_empty(), "apply drains the batch for reuse");
/// assert_eq!(dict.get(1), None, "delete after put wins");
/// assert_eq!(dict.get(2), Some(21), "last put wins");
/// ```
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    ops: Vec<BatchOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> UpdateBatch {
        UpdateBatch::default()
    }

    /// An empty batch with room for `n` operations.
    pub fn with_capacity(n: usize) -> UpdateBatch {
        UpdateBatch {
            ops: Vec::with_capacity(n),
        }
    }

    /// Buffers an upsert.
    pub fn put(&mut self, key: u64, val: u64) -> &mut Self {
        self.ops.push((key, Some(val)));
        self
    }

    /// Buffers a delete.
    pub fn delete(&mut self, key: u64) -> &mut Self {
        self.ops.push((key, None));
        self
    }

    /// Buffered operations in arrival order.
    pub fn ops(&self) -> &[BatchOp] {
        &self.ops
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Empties the batch, keeping its allocation.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// The batch collapsed to one operation per key, sorted by key — the
    /// form merge-path implementations ingest. Later operations win, so
    /// applying the normalized run yields the same dictionary state as
    /// replaying the batch in arrival order.
    pub fn normalized(&self) -> Vec<BatchOp> {
        let mut sorted = self.ops.clone();
        // Stable sort keeps arrival order within equal keys.
        sorted.sort_by_key(|&(k, _)| k);
        let mut out: Vec<BatchOp> = Vec::with_capacity(sorted.len());
        for op in sorted {
            match out.last_mut() {
                Some(last) if last.0 == op.0 => *last = op, // later arrival wins
                _ => out.push(op),
            }
        }
        out
    }
}

/// The engine behind a [`Cursor`]; implemented per structure.
///
/// A cursor models a *gap* between entries of the bounded key interval it
/// was created over. [`CursorOps::next`] returns the live entry just after
/// the gap and moves the gap past it; [`CursorOps::prev`] returns the
/// entry just before the gap and moves the gap before it. Consequently
/// `next()` followed by `prev()` returns the same entry twice, and a
/// drained cursor walks backward over exactly the entries it yielded.
pub trait CursorOps {
    /// Places the gap just before the first live entry with key ≥ `key`
    /// (clamped into the cursor's bounds).
    fn seek(&mut self, key: u64);

    /// The next live entry in ascending key order, if any.
    fn next(&mut self) -> Option<(u64, u64)>;

    /// The previous live entry in descending key order, if any.
    fn prev(&mut self) -> Option<(u64, u64)>;
}

/// A streaming cursor over a dictionary's live entries in `[lo, hi]`.
///
/// Obtained from [`Dictionary::cursor`]. Entries materialize one at a
/// time, so a scan touches only the blocks it actually visits — the point
/// of the streaming structures this workspace implements.
///
/// ```
/// use cosbt_core::{Dictionary, GCola};
///
/// let mut dict = GCola::new_plain(4);
/// for k in [10u64, 20, 30] {
///     dict.insert(k, k * 2);
/// }
/// let mut cur = dict.cursor(15, u64::MAX);
/// assert_eq!(cur.next(), Some((20, 40)));
/// assert_eq!(cur.prev(), Some((20, 40)), "next then prev revisits");
/// cur.seek(25);
/// assert_eq!(cur.next(), Some((30, 60)));
/// ```
pub struct Cursor<'a> {
    inner: Box<dyn CursorOps + 'a>,
}

impl<'a> Cursor<'a> {
    /// Wraps a structure-specific cursor engine.
    pub fn new(inner: impl CursorOps + 'a) -> Cursor<'a> {
        Cursor {
            inner: Box::new(inner),
        }
    }

    /// Places the gap just before the first live entry with key ≥ `key`.
    pub fn seek(&mut self, key: u64) {
        self.inner.seek(key)
    }

    /// The next live entry in ascending key order.
    #[allow(clippy::should_implement_trait)] // mirrors Iterator::next by design
    pub fn next(&mut self) -> Option<(u64, u64)> {
        self.inner.next()
    }

    /// The previous live entry in descending key order.
    pub fn prev(&mut self) -> Option<(u64, u64)> {
        self.inner.prev()
    }

    /// Drains the rest of the cursor into a `Vec` (ascending).
    pub fn collect(mut self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(kv) = self.next() {
            out.push(kv);
        }
        out
    }
}

impl std::fmt::Debug for Cursor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cursor").finish_non_exhaustive()
    }
}

/// A [`Cursor`] is itself a cursor engine, so cursors compose: the k-way
/// [`crate::cursor::MergeCursor`] merges any mix of already-boxed cursors
/// (e.g. one per shard of a range-partitioned database) into one stream.
impl CursorOps for Cursor<'_> {
    fn seek(&mut self, key: u64) {
        self.inner.seek(key)
    }

    fn next(&mut self) -> Option<(u64, u64)> {
        self.inner.next()
    }

    fn prev(&mut self) -> Option<(u64, u64)> {
        self.inner.prev()
    }
}

/// A cursor over a materialized, sorted snapshot.
///
/// The fallback engine for structures whose pending-update placement makes
/// true streaming scans impractical (messages buffered at arbitrary tree
/// depths must be merged globally anyway); also handy for reference
/// models in tests.
#[derive(Debug)]
pub struct VecCursor {
    items: Vec<(u64, u64)>,
    /// Gap position: index of the first entry after the gap.
    pos: usize,
}

impl VecCursor {
    /// A cursor over `items`, which must be sorted by key and already
    /// restricted to the requested bounds. The gap starts before the
    /// first entry.
    pub fn new(items: Vec<(u64, u64)>) -> VecCursor {
        debug_assert!(items.windows(2).all(|w| w[0].0 < w[1].0));
        VecCursor { items, pos: 0 }
    }
}

impl CursorOps for VecCursor {
    fn seek(&mut self, key: u64) {
        self.pos = self.items.partition_point(|&(k, _)| k < key);
    }

    fn next(&mut self) -> Option<(u64, u64)> {
        let kv = *self.items.get(self.pos)?;
        self.pos += 1;
        Some(kv)
    }

    fn prev(&mut self) -> Option<(u64, u64)> {
        if self.pos == 0 {
            return None;
        }
        self.pos -= 1;
        Some(self.items[self.pos])
    }
}

/// An ordered map from `u64` keys to `u64` values supporting the streaming
/// B-tree operations: upsert, delete, point query, batched updates, and
/// streaming range scans.
///
/// Methods take `&mut self` uniformly because instrumented and file-backed
/// storage mutate cache state even on reads.
///
/// Every structure in the workspace implements this trait, so workloads
/// are written once:
///
/// ```
/// use cosbt_core::{BasicCola, Dictionary, GCola};
///
/// fn ingest(dict: &mut dyn Dictionary) {
///     dict.insert_batch(&[(1, 10), (2, 20), (3, 30)]);
///     dict.delete(2);
/// }
///
/// for dict in [
///     &mut BasicCola::new_plain() as &mut dyn Dictionary,
///     &mut GCola::new_plain(4),
/// ] {
///     ingest(dict);
///     assert_eq!(dict.range(0, u64::MAX), vec![(1, 10), (3, 30)]);
/// }
/// ```
pub trait Dictionary {
    /// Inserts or overwrites `key`.
    fn insert(&mut self, key: u64, val: u64);

    /// Deletes `key` (no-op if absent).
    fn delete(&mut self, key: u64);

    /// Looks up `key`.
    fn get(&mut self, key: u64) -> Option<u64>;

    /// A streaming cursor over live entries with `lo <= key <= hi`.
    fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_>;

    /// Applies and drains `batch`, equivalent to replaying its operations
    /// in arrival order. Implementations with a merge path override this
    /// to ingest the whole batch in one restructuring pass.
    fn apply(&mut self, batch: &mut UpdateBatch) {
        for &(key, op) in batch.ops() {
            match op {
                Some(val) => self.insert(key, val),
                None => self.delete(key),
            }
        }
        batch.clear();
    }

    /// Inserts `sorted` pairs, which must be sorted by key (duplicates
    /// allowed; the last of an equal-key run wins). Merge-path
    /// implementations override this to absorb the run in one carry
    /// cascade.
    fn insert_batch(&mut self, sorted: &[(u64, u64)]) {
        debug_assert!(
            sorted.windows(2).all(|w| w[0].0 <= w[1].0),
            "insert_batch input must be sorted by key"
        );
        for &(k, v) in sorted {
            self.insert(k, v);
        }
    }

    /// All live `(key, value)` pairs with `lo <= key <= hi`, in key order.
    /// A convenience built on [`Dictionary::cursor`].
    fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        if lo > hi {
            return Vec::new();
        }
        self.cursor(lo, hi).collect()
    }

    /// Number of physically stored entries (including shadowed versions and
    /// tombstones for log-structured implementations).
    fn physical_len(&self) -> usize;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Converts a batch into the sorted one-cell-per-key run merge paths
/// ingest: puts become items, deletes become tombstones.
pub fn batch_to_cells(batch: &UpdateBatch) -> Vec<crate::entry::Cell> {
    batch
        .normalized()
        .into_iter()
        .map(|(k, op)| match op {
            Some(v) => crate::entry::Cell::item(k, v),
            None => crate::entry::Cell::tombstone(k),
        })
        .collect()
}

/// Converts a key-sorted pair slice into the one-cell-per-key run merge
/// paths ingest (the last of an equal-key group wins).
pub fn sorted_pairs_to_cells(sorted: &[(u64, u64)]) -> Vec<crate::entry::Cell> {
    debug_assert!(
        sorted.windows(2).all(|w| w[0].0 <= w[1].0),
        "insert_batch input must be sorted by key"
    );
    dedup_sorted_last_wins(sorted)
        .into_iter()
        .map(|(k, v)| crate::entry::Cell::item(k, v))
        .collect()
}

/// Normalizes a sorted `(key, value)` slice for merge-path ingestion: one
/// entry per key, keeping the last of each equal-key run.
pub fn dedup_sorted_last_wins(sorted: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for &(k, v) in sorted {
        match out.last_mut() {
            Some(last) if last.0 == k => last.1 = v,
            _ => out.push((k, v)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial reference implementation to exercise the trait's contract
    /// wording; the real structures are tested against `BTreeMap` models in
    /// their own modules and in the workspace conformance battery.
    struct Model(std::collections::BTreeMap<u64, u64>);

    impl Dictionary for Model {
        fn insert(&mut self, key: u64, val: u64) {
            self.0.insert(key, val);
        }
        fn delete(&mut self, key: u64) {
            self.0.remove(&key);
        }
        fn get(&mut self, key: u64) -> Option<u64> {
            self.0.get(&key).copied()
        }
        fn cursor(&mut self, lo: u64, hi: u64) -> Cursor<'_> {
            Cursor::new(VecCursor::new(
                self.0.range(lo..=hi).map(|(&k, &v)| (k, v)).collect(),
            ))
        }
        fn physical_len(&self) -> usize {
            self.0.len()
        }
        fn name(&self) -> &'static str {
            "model"
        }
    }

    #[test]
    fn model_satisfies_contract() {
        let mut m = Model(Default::default());
        m.insert(5, 50);
        m.insert(5, 51);
        assert_eq!(m.get(5), Some(51), "insert is upsert");
        m.delete(5);
        assert_eq!(m.get(5), None);
        m.insert(1, 10);
        m.insert(3, 30);
        assert_eq!(m.range(0, 2), vec![(1, 10)]);
        assert_eq!(m.range(1, 3), vec![(1, 10), (3, 30)]);
        assert_eq!(m.range(3, 1), vec![], "inverted bounds are empty");
    }

    #[test]
    fn batch_replay_semantics() {
        let mut m = Model(Default::default());
        let mut b = UpdateBatch::new();
        b.put(1, 10).put(2, 20).delete(1).put(2, 21).put(3, 30);
        assert_eq!(b.len(), 5);
        m.apply(&mut b);
        assert!(b.is_empty(), "apply drains the batch");
        assert_eq!(m.get(1), None, "delete after put wins");
        assert_eq!(m.get(2), Some(21), "last put wins");
        assert_eq!(m.get(3), Some(30));
    }

    #[test]
    fn batch_normalization_last_wins() {
        let mut b = UpdateBatch::new();
        b.put(5, 1).put(3, 2).delete(5).put(4, 3).put(3, 9);
        assert_eq!(b.normalized(), vec![(3, Some(9)), (4, Some(3)), (5, None)]);
        // Normalization does not consume the batch.
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn insert_batch_default_loops() {
        let mut m = Model(Default::default());
        m.insert_batch(&[(1, 10), (2, 20), (2, 21), (7, 70)]);
        assert_eq!(m.get(2), Some(21), "last duplicate wins");
        assert_eq!(m.range(0, 10), vec![(1, 10), (2, 21), (7, 70)]);
    }

    #[test]
    fn cursor_gap_semantics() {
        let mut m = Model(Default::default());
        for k in [10u64, 20, 30, 40] {
            m.insert(k, k * 2);
        }
        let mut c = m.cursor(15, 40);
        assert_eq!(c.next(), Some((20, 40)));
        assert_eq!(c.prev(), Some((20, 40)), "next then prev revisits");
        assert_eq!(c.next(), Some((20, 40)));
        assert_eq!(c.next(), Some((30, 60)));
        c.seek(40);
        assert_eq!(c.prev(), Some((30, 60)), "seek gap sits before target");
        assert_eq!(c.next(), Some((30, 60)));
        assert_eq!(c.next(), Some((40, 80)));
        assert_eq!(c.next(), None);
        assert_eq!(c.prev(), Some((40, 80)), "exhausted cursor walks back");
    }

    #[test]
    fn dedup_keeps_last() {
        assert_eq!(
            dedup_sorted_last_wins(&[(1, 1), (1, 2), (2, 5), (3, 1), (3, 3)]),
            vec![(1, 2), (2, 5), (3, 3)]
        );
    }
}
